//! Distributed deployment over real TCP, served by the daemon library.
//!
//! Runs the CoCa protocol across actual sockets: `coca::daemon`'s
//! serving loop (acceptor + per-connection readers + a worker pool)
//! owns the global cache table and ACA; client threads run simulated
//! inference locally and exchange `CacheRequest` / `CacheAllocation` /
//! `UpdateUpload` messages through the daemon's framed protocol — the
//! same serve path `cocad` ships. Virtual time still prices inference;
//! the sockets are real.
//!
//! The server runs with durability attached (single-lock mode): every
//! request/upload is WAL-logged to `target/coca-durability/` before it
//! mutates state, and after the run a standalone [`CocaServer::recover`]
//! from those files must rebuild the served state byte-for-byte — the
//! same crash-recovery contract the `proptest_recovery` suite pins
//! in-memory, here over a real on-disk store behind a real listener.
//!
//! ```sh
//! cargo run --release --example distributed_tcp
//! ```

use std::net::TcpListener;
use std::thread;

use coca::core::persist::DirStorage;
use coca::core::proto::CacheAllocation;
use coca::core::{CocaClient, CocaServer};
use coca::daemon::{serve, ClientMsg, DaemonClient, ServerCore, ServerMsg};
use coca::prelude::*;

const CLIENTS: usize = 3;
const ROUNDS: usize = 3;
const FRAMES: usize = 200;
const WORKERS: usize = 2;

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(30));
    sc.num_clients = CLIENTS;
    sc.seed = 99;
    // The default budget (0) means "auto" and is resolved by the engine;
    // when driving client/server directly, set Π explicitly — 1/8 of the
    // task's full cache, the Fig. 1(a) sweet spot.
    let budget = {
        let probe = Scenario::build(sc.clone());
        probe.rt.arch().full_cache_bytes(probe.rt.num_classes()) / 8
    };
    let coca_cfg = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(FRAMES)
        .with_budget(budget);

    // --- Server: a durability-attached CocaServer behind the daemon's
    // serving loop (single-lock mode keeps the WAL hooks live).
    let server_scenario = Scenario::build(sc.clone());
    let mut server = CocaServer::new(&server_scenario.rt, coca_cfg, server_scenario.seeds());
    // All clients connect up front, so the live fleet is CLIENTS for
    // the whole run; under a round-aligned flush policy this is the
    // watermark that drains one fleet-sized batch per round (a no-op
    // under the default per-boundary policy).
    server.set_flush_watermark(CLIENTS);
    // Snapshot + WAL on real files; a fresh directory per run so the
    // genesis snapshot matches this run's seeds. The WAL segment
    // length comes from the config (COCA_WAL_ROTATE, default 256).
    let wal_dir = std::path::Path::new("target").join("coca-durability");
    let _ = std::fs::remove_dir_all(&wal_dir);
    let store = DirStorage::open(&wal_dir).expect("open durability dir");
    server.attach_storage(Box::new(store));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(ServerCore::single(server), listener, WORKERS).expect("serve");
    let addr = handle.addr();
    println!("daemon listening on {addr} ({WORKERS} workers)");

    // --- Client threads, each over its own TCP connection.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let sc = sc.clone();
            thread::spawn(move || {
                let scenario = Scenario::build(sc);
                let rt = &scenario.rt;
                let mut conn = DaemonClient::connect(addr).expect("connect");
                // In a real deployment the server ships the initial hit
                // profile with the model; here the Hello handshake
                // fetches it over the wire.
                let profile = conn.hello().expect("hello");
                let mut client = CocaClient::new(
                    k as u64,
                    coca_cfg,
                    rt,
                    scenario.profiles[k].clone(),
                    profile,
                );
                let mut stream = scenario.stream(k);
                let mut scratch = coca::core::LookupScratch::new();
                let mut total_ms = 0.0;
                let mut frames = 0u64;
                for _ in 0..ROUNDS {
                    let alloc: CacheAllocation = match conn
                        .call(&ClientMsg::Request(client.cache_request()))
                        .expect("request round trip")
                    {
                        ServerMsg::Alloc(a) => a,
                        other => panic!("expected Alloc, got {other:?}"),
                    };
                    client.install_cache(alloc.cache);
                    for _ in 0..FRAMES {
                        let frame = stream.next_frame();
                        let r = client.process_frame(rt, &frame, &mut scratch);
                        total_ms += r.latency.as_millis_f64();
                        frames += 1;
                    }
                    let upload = client.end_round();
                    match conn
                        .call(&ClientMsg::Upload(upload))
                        .expect("upload round trip")
                    {
                        ServerMsg::UploadAck(_) => {}
                        other => panic!("expected UploadAck, got {other:?}"),
                    }
                }
                // Dropping the connection is the goodbye; the daemon's
                // reader sees clean EOF.
                (
                    k,
                    total_ms / frames as f64,
                    client.summary().accuracy.accuracy_pct(),
                )
            })
        })
        .collect();

    let full = Scenario::build(sc).rt.full_compute().as_millis_f64();
    for h in handles {
        let (k, mean, acc) = h.join().expect("client thread");
        println!("client {k}: mean latency {mean:.2} ms (edge-only {full:.2}), accuracy {acc:.2}%");
    }

    handle.shutdown();
    let report = handle.join();
    println!(
        "daemon: {} allocations served, {} uploads merged, table digest {:016x}",
        report.requests, report.uploads, report.digest
    );

    // Crash-recovery check: rebuild a server from nothing but the
    // on-disk snapshot + WAL and compare it to the one the daemon
    // actually served.
    let mut served = report.server.expect("single-lock mode returns the server");
    let live_bytes = served.snapshot().to_bytes();
    let d = served.detach_durability().expect("durability attached");
    let events = d.events_logged();
    let (recovered, info) =
        CocaServer::recover(&server_scenario.rt, coca_cfg, server_scenario.seeds(), d)
            .expect("recovery from on-disk WAL");
    assert_eq!(
        recovered.snapshot().to_bytes(),
        live_bytes,
        "recovered server diverged from the served one"
    );
    println!(
        "daemon: recovered byte-identical state from {} ({events} WAL events, \
         {} replayed on top of the {:?} snapshot)",
        wal_dir.display(),
        info.replayed,
        info.source
    );
    println!("distributed CoCa run complete — protocol served by the cocad daemon core");
}
