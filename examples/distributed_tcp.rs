//! Distributed deployment over real TCP.
//!
//! Runs the CoCa protocol across actual sockets: a server thread owns the
//! global cache table and ACA; client threads run simulated inference
//! locally and exchange `CacheRequest` / `CacheAllocation` /
//! `UpdateUpload` messages through `coca::net::TcpTransport` (the same
//! serde messages the virtual-time engine models). Virtual time still
//! prices inference; the sockets are real.
//!
//! The server runs with durability attached: every request/upload is
//! WAL-logged to `target/coca-durability/` before it mutates state, and
//! after the run a standalone [`CocaServer::recover`] from those files
//! must rebuild the live server byte-for-byte — the same crash-recovery
//! contract the `proptest_recovery` suite pins in-memory, here over a
//! real on-disk store.
//!
//! ```sh
//! cargo run --release --example distributed_tcp
//! ```

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use coca::core::persist::DirStorage;
use coca::core::proto::{CacheAllocation, CacheRequest, UpdateUpload};
use coca::core::{CocaClient, CocaServer};
use coca::net::{TcpTransport, Transport};
use coca::prelude::*;

const CLIENTS: usize = 3;
const ROUNDS: usize = 3;
const FRAMES: usize = 200;
const TIMEOUT: Duration = Duration::from_secs(20);

/// Client → server messages.
#[derive(serde::Serialize, serde::Deserialize)]
enum ToServer {
    Request(CacheRequest),
    Update(UpdateUpload),
    Done,
}

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(30));
    sc.num_clients = CLIENTS;
    sc.seed = 99;
    // The default budget (0) means "auto" and is resolved by the engine;
    // when driving client/server directly, set Π explicitly — 1/8 of the
    // task's full cache, the Fig. 1(a) sweet spot.
    let budget = {
        let probe = Scenario::build(sc.clone());
        probe.rt.arch().full_cache_bytes(probe.rt.num_classes()) / 8
    };
    let coca_cfg = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(FRAMES)
        .with_budget(budget);

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    println!("server listening on {addr}");

    // --- Server thread: accepts one connection per client.
    let server_scenario = Scenario::build(sc.clone());
    let server_thread = thread::spawn(move || {
        let mut server = CocaServer::new(&server_scenario.rt, coca_cfg, server_scenario.seeds());
        // All clients connect up front, so the live fleet is CLIENTS for
        // the whole run; under a round-aligned flush policy this is the
        // watermark that drains one fleet-sized batch per round (a no-op
        // under the default per-boundary policy).
        server.set_flush_watermark(CLIENTS);
        // Snapshot + WAL on real files; a fresh directory per run so the
        // genesis snapshot matches this run's seeds. The WAL segment
        // length comes from the config (COCA_WAL_ROTATE, default 256).
        let wal_dir = std::path::Path::new("target").join("coca-durability");
        let _ = std::fs::remove_dir_all(&wal_dir);
        let store = DirStorage::open(&wal_dir).expect("open durability dir");
        server.attach_storage(Box::new(store));
        let transports: Vec<TcpTransport> = (0..CLIENTS)
            .map(|_| TcpTransport::accept(&listener).expect("accept"))
            .collect();
        let mut transports = transports;
        let mut finished = [false; CLIENTS];
        let mut served = 0usize;
        while finished.iter().any(|f| !f) {
            for (i, t) in transports.iter_mut().enumerate() {
                if finished[i] {
                    continue;
                }
                match t.recv::<ToServer>(Duration::from_millis(20)) {
                    Ok(Some(ToServer::Request(req))) => {
                        let (alloc, _) = server.handle_request(&req);
                        t.send(&alloc).expect("send allocation");
                        served += 1;
                    }
                    Ok(Some(ToServer::Update(up))) => {
                        // Route through the merge-mode dispatcher (not the
                        // immediate-merge primitive) so queue-and-flush
                        // configs — including round-aligned draining via
                        // the watermark above — behave as deployed.
                        server.handle_upload(up);
                    }
                    Ok(Some(ToServer::Done)) => finished[i] = true,
                    Ok(None) => {}
                    // The client may close its socket right after Done.
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        finished[i] = true;
                    }
                    Err(e) => panic!("server transport error: {e}"),
                }
            }
        }
        println!(
            "server: {served} allocations served, global fill {:.2}",
            server.global().fill_ratio()
        );
        // Crash-recovery check: rebuild a server from nothing but the
        // on-disk snapshot + WAL and compare it to the live one.
        let live_bytes = server.snapshot().to_bytes();
        let d = server.detach_durability().expect("durability attached");
        let events = d.events_logged();
        let (recovered, info) =
            CocaServer::recover(&server_scenario.rt, coca_cfg, server_scenario.seeds(), d)
                .expect("recovery from on-disk WAL");
        assert_eq!(
            recovered.snapshot().to_bytes(),
            live_bytes,
            "recovered server diverged from the live one"
        );
        println!(
            "server: recovered byte-identical state from {} ({events} WAL events, \
             {} replayed on top of the {:?} snapshot)",
            wal_dir.display(),
            info.replayed,
            info.source
        );
    });

    // --- Client threads.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|k| {
            let sc = sc.clone();
            thread::spawn(move || {
                let scenario = Scenario::build(sc);
                let rt = &scenario.rt;
                // Initial hit profile comes from a local server replica in
                // a real deployment the server ships it with the model.
                let profile_src = CocaServer::new(rt, coca_cfg, scenario.seeds());
                let mut client = CocaClient::new(
                    k as u64,
                    coca_cfg,
                    rt,
                    scenario.profiles[k].clone(),
                    profile_src.base_hit_profile().to_vec(),
                );
                let mut stream = scenario.stream(k);
                let mut scratch = coca::core::LookupScratch::new();
                let mut t = TcpTransport::connect(addr).expect("connect");
                let mut total_ms = 0.0;
                let mut frames = 0u64;
                for _ in 0..ROUNDS {
                    t.send(&ToServer::Request(client.cache_request()))
                        .expect("send request");
                    let alloc: CacheAllocation =
                        t.recv(TIMEOUT).expect("recv").expect("allocation");
                    client.install_cache(alloc.cache);
                    for _ in 0..FRAMES {
                        let frame = stream.next_frame();
                        let r = client.process_frame(rt, &frame, &mut scratch);
                        total_ms += r.latency.as_millis_f64();
                        frames += 1;
                    }
                    let upload = client.end_round();
                    t.send(&ToServer::Update(upload)).expect("send update");
                }
                t.send(&ToServer::Done).expect("send done");
                (
                    k,
                    total_ms / frames as f64,
                    client.summary().accuracy.accuracy_pct(),
                )
            })
        })
        .collect();

    let full = Scenario::build(sc).rt.full_compute().as_millis_f64();
    for h in handles {
        let (k, mean, acc) = h.join().expect("client thread");
        println!("client {k}: mean latency {mean:.2} ms (edge-only {full:.2}), accuracy {acc:.2}%");
    }
    server_thread.join().expect("server thread");
    println!("distributed CoCa run complete — protocol exchanged over real TCP sockets");
}
