//! Environmental audio sensing: AST on ESC-50.
//!
//! The paper's third modality — an Audio Spectrogram Transformer
//! classifying environmental sounds on distributed sensors. Sweeps the
//! non-IID level to show caching gains growing with heterogeneity
//! (stronger per-sensor locality), mirroring Fig. 7(b).
//!
//! ```sh
//! cargo run --release --example audio_sensing
//! ```

use coca::prelude::*;

fn main() {
    let mut table = Table::new(
        "Audio sensing — AST-Base / ESC-50, 6 sensors",
        &[
            "non-IID p",
            "Edge-Only (ms)",
            "CoCa (ms)",
            "Reduction (%)",
            "CoCa acc. (%)",
        ],
    );

    for p in [0.0f64, 1.0, 2.0, 10.0] {
        let mut sc = ScenarioConfig::new(ModelId::AstBase, DatasetSpec::esc50());
        sc.num_clients = 6;
        sc.seed = 55;
        sc.non_iid = NonIidLevel(p);

        let scenario = Scenario::build(sc.clone());
        let edge = coca::baselines::run_edge_only(&scenario, 5, 300);

        let mut engine_cfg = EngineConfig::new(CocaConfig::for_model(ModelId::AstBase));
        engine_cfg.rounds = 5;
        let report = Engine::new(Scenario::build(sc), engine_cfg).run();

        table.row(&[
            format!("{p:.0}"),
            format!("{:.2}", edge.mean_latency_ms),
            format!("{:.2}", report.mean_latency_ms),
            format!(
                "{:.1}",
                (1.0 - report.mean_latency_ms / edge.mean_latency_ms) * 100.0
            ),
            format!("{:.2}", report.accuracy_pct),
        ]);
    }
    print!("{}", table.render());
    println!("\nHigher heterogeneity concentrates each sensor's classes — caching gains grow.");
}
