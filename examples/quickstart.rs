//! Quickstart: run CoCa on a small multi-camera deployment and compare it
//! against plain Edge-Only inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coca::baselines::run_edge_only;
use coca::prelude::*;

fn main() {
    // Scenario: 6 cameras running ResNet101 on a 50-class video task with
    // moderate non-IID drift between camera contexts.
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 7;

    // Reference: every frame pays full model compute.
    let scenario = Scenario::build(sc.clone());
    let edge = run_edge_only(&scenario, 6, 300);

    // CoCa: the paper's configuration with Θ tuned for this deployment's
    // accuracy SLO (see the exp_fig5 sweep — stricter Θ trades a little
    // latency for hit accuracy).
    let coca = CocaConfig::for_model(ModelId::ResNet101).with_theta(0.016);
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = 6;
    let mut engine = Engine::new(Scenario::build(sc), engine_cfg);
    let report = engine.run();

    let mut table = Table::new(
        "CoCa quickstart — ResNet101 / UCF101-50, 6 clients",
        &[
            "Method",
            "Mean lat. (ms)",
            "p95 lat. (ms)",
            "Accuracy (%)",
            "Hit ratio",
        ],
    );
    table.row(&[
        "Edge-Only".into(),
        format!("{:.2}", edge.mean_latency_ms),
        format!("{:.2}", edge.latency.p95_ms().unwrap_or(0.0)),
        format!("{:.2}", edge.accuracy_pct),
        "-".into(),
    ]);
    table.row(&[
        "CoCa".into(),
        format!("{:.2}", report.mean_latency_ms),
        format!("{:.2}", report.latency.p95_ms().unwrap_or(0.0)),
        format!("{:.2}", report.accuracy_pct),
        format!("{:.3}", report.hit_ratio),
    ]);
    print!("{}", table.render());
    println!(
        "\nCoCa reduced mean inference latency by {:.1}% with {:.2} accuracy points of loss.",
        (1.0 - report.mean_latency_ms / edge.mean_latency_ms) * 100.0,
        edge.accuracy_pct - report.accuracy_pct,
    );
    println!(
        "Cache-request response latency: mean {:.1} ms over {} requests.",
        report.response_latency.mean_ms(),
        report.response_latency.count()
    );
}
