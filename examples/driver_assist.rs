//! Driver assistance: a long-tail workload under a latency SLO.
//!
//! The paper's motivating application: driving scenes are heavily
//! long-tailed (normal traffic dominates; rare events form the tail), and
//! the SLO demands a 30 % latency reduction at < 3 % accuracy loss. The
//! example builds a ρ = 90 long-tail over 100 classes, runs Edge-Only,
//! SMTM and CoCa, and checks the SLO.
//!
//! ```sh
//! cargo run --release --example driver_assist
//! ```

use coca::baselines::smtm::run_smtm;
use coca::baselines::{run_edge_only, SmtmConfig};
use coca::prelude::*;

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet152, DatasetSpec::ucf101().subset(100));
    sc.num_clients = 8;
    sc.seed = 31;
    sc.global_popularity = long_tail_weights(100, 90.0);

    let rounds = 6usize;
    let frames = 300usize;
    let coca_cfg = CocaConfig::for_model(ModelId::ResNet152);

    let scenario = Scenario::build(sc.clone());
    let edge = run_edge_only(&scenario, rounds, frames);

    let scenario = Scenario::build(sc.clone());
    let smtm = run_smtm(&scenario, &SmtmConfig::from_coca(&coca_cfg), rounds, frames);

    let mut engine_cfg = EngineConfig::new(coca_cfg);
    engine_cfg.rounds = rounds;
    let coca = Engine::new(Scenario::build(sc), engine_cfg).run();

    let mut table = Table::new(
        "Driver assistance — ResNet152, long-tail (rho = 90) UCF101-100, 8 vehicles",
        &[
            "Method",
            "Mean lat. (ms)",
            "Reduction (%)",
            "Accuracy (%)",
            "Acc. loss (pts)",
        ],
    );
    let base_lat = edge.mean_latency_ms;
    let base_acc = edge.accuracy_pct;
    let mut push = |name: &str, lat: f64, acc: f64| {
        table.row(&[
            name.into(),
            format!("{lat:.2}"),
            format!("{:.1}", (1.0 - lat / base_lat) * 100.0),
            format!("{acc:.2}"),
            format!("{:.2}", base_acc - acc),
        ]);
    };
    push("Edge-Only", edge.mean_latency_ms, edge.accuracy_pct);
    push("SMTM", smtm.mean_latency_ms, smtm.accuracy_pct);
    push("CoCa", coca.mean_latency_ms, coca.accuracy_pct);
    print!("{}", table.render());

    let reduction = (1.0 - coca.mean_latency_ms / base_lat) * 100.0;
    let loss = base_acc - coca.accuracy_pct;
    println!(
        "\nSLO check (≥30% latency reduction, <3 pts accuracy loss): {}",
        if reduction >= 30.0 && loss < 3.0 {
            "PASS"
        } else {
            "MISS — tune theta / budget for this deployment"
        }
    );
}
