//! Smart-city surveillance: strongly non-IID cameras that benefit from
//! collaboration.
//!
//! Ten intersection cameras watch overlapping traffic, but each sees its
//! own mix of classes (non-IID, p = 10) through its own optics (context
//! drift, largely shared across the deployment). The example contrasts
//! CoCa with and without global cache updates — the collaboration is what
//! absorbs the shared drift.
//!
//! ```sh
//! cargo run --release --example smart_city
//! ```

use coca::prelude::*;

fn run(gcu: bool, sc: &ScenarioConfig) -> EngineReport {
    let mut coca = CocaConfig::for_model(ModelId::ResNet101);
    coca.enable_gcu = gcu;
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = 8;
    Engine::new(Scenario::build(sc.clone()), engine_cfg).run()
}

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(100));
    sc.num_clients = 10;
    sc.seed = 2026;
    sc.non_iid = NonIidLevel(10.0); // highly heterogeneous per-camera content
    sc.drift_mag = 0.45; // pronounced context shift vs the pretrained model
    sc.drift_shared_frac = 0.8; // same city, similar conditions

    let solo = run(false, &sc);
    let collab = run(true, &sc);

    let mut table = Table::new(
        "Smart city — 10 non-IID cameras (p = 10), ResNet101 / UCF101-100",
        &[
            "Setting",
            "Mean lat. (ms)",
            "Accuracy (%)",
            "Hit ratio",
            "Hit acc. (%)",
        ],
    );
    for (name, r) in [
        ("No global updates", &solo),
        ("Collaborative (CoCa)", &collab),
    ] {
        let mut hits = coca::metrics::HitRecorder::new(0);
        for s in &r.per_client {
            hits.merge(&s.hits);
        }
        table.row(&[
            name.into(),
            format!("{:.2}", r.mean_latency_ms),
            format!("{:.2}", r.accuracy_pct),
            format!("{:.3}", r.hit_ratio),
            format!(
                "{:.1}",
                hits.hit_accuracy().map(|a| a * 100.0).unwrap_or(0.0)
            ),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nGlobal updates change accuracy by {:+.2} points and hit accuracy by {:+.1} points \
         (direction depends on drift strength and round count — see exp_fig9/EXPERIMENTS.md).",
        collab.accuracy_pct - solo.accuracy_pct,
        {
            let acc = |r: &EngineReport| {
                let mut h = coca::metrics::HitRecorder::new(0);
                for s in &r.per_client {
                    h.merge(&s.hits);
                }
                h.hit_accuracy().map(|a| a * 100.0).unwrap_or(0.0)
            };
            acc(&collab) - acc(&solo)
        }
    );
}
