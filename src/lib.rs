//! # CoCa — multi-client collaborative caching for accelerated edge inference
//!
//! A comprehensive Rust reproduction of *"Many Hands Make Light Work:
//! Accelerating Edge Inference via Multi-Client Collaborative Caching"*
//! (ICDE 2025, arXiv:2412.10382).
//!
//! CoCa inserts semantic cache layers between DNN blocks; a cache hit on a
//! class's pooled-feature center terminates inference early. An edge
//! server maintains a two-dimensional global cache table (classes ×
//! layers), merges per-client updates by frequency-weighted averaging (to
//! handle non-IID data), and allocates each client a personalized
//! sub-table via the Adaptive Cache Allocation algorithm (to handle
//! long-tail distributions).
//!
//! This façade crate re-exports the workspace:
//!
//! * [`core`](coca_core) — the CoCa framework itself: semantic cache,
//!   global table, ACA, client/server runtimes, and the **generic
//!   virtual-time engine**: every method (CoCa and all baselines)
//!   implements [`MethodDriver`](coca_core::driver::MethodDriver) and runs
//!   through the same staggered-boot, link-delay, server-FIFO event loop,
//!   so cross-method comparisons share one contention model.
//! * [`model`](coca_model) — the DNN inference simulator substrate.
//! * [`data`](coca_data) — datasets, non-IID partitioning, long-tail
//!   construction, temporally local streams.
//! * [`net`](coca_net) — link/queueing models and real TCP transports.
//! * [`daemon`](coca_daemon) — `cocad`, the server as a networked daemon
//!   (sharded-lock ingest over a worker pool), plus `coca-loadgen`, its
//!   closed-/open-loop load generator.
//! * [`baselines`](coca_baselines) — Edge-Only, LearnedCache, FoggyCache,
//!   SMTM, LRU/FIFO/RAND.
//! * [`sim`](coca_sim), [`math`](coca_math), [`metrics`](coca_metrics) —
//!   virtual time, numeric kernels, measurement plumbing.
//!
//! ## Quickstart
//!
//! ```
//! use coca::prelude::*;
//!
//! // A small deployment: 4 cameras running ResNet101 on a 20-class task.
//! let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
//! sc.num_clients = 4;
//! let coca = CocaConfig::for_model(ModelId::ResNet101);
//! let mut engine_cfg = EngineConfig::new(coca.with_round_frames(120));
//! engine_cfg.rounds = 2;
//! let mut engine = Engine::new(Scenario::build(sc), engine_cfg);
//! let report = engine.run();
//! assert!(report.mean_latency_ms < engine.scenario().rt.full_compute().as_millis_f64());
//! ```

pub use coca_baselines as baselines;
pub use coca_core as core;
pub use coca_daemon as daemon;
pub use coca_data as data;
pub use coca_math as math;
pub use coca_metrics as metrics;
pub use coca_model as model;
pub use coca_net as net;
pub use coca_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use coca_core::engine::{Engine, EngineConfig, EngineReport, Scenario, ScenarioConfig};
    pub use coca_core::spec::{PopularityShift, ScenarioEvent, ScenarioSpec};
    pub use coca_core::{CocaConfig, CocaServer, FlushPolicy, LocalCache, MergeMode};
    pub use coca_data::distribution::{long_tail_weights, uniform_weights};
    pub use coca_data::partition::NonIidLevel;
    pub use coca_data::DatasetSpec;
    pub use coca_metrics::Table;
    pub use coca_model::{ModelId, ModelRuntime};
    pub use coca_sim::{SeedTree, SimDuration, SimTime};
}
