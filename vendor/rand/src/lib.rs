//! Offline shim for the [`rand`](https://docs.rs/rand) 0.8 API surface this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool, sample_iter}` and `distributions::Standard`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `SmallRng`, which is fine here: the workspace pins
//! determinism to its own `SeedTree`, not to upstream rand's streams.

pub mod distributions;
pub mod rngs;

pub use distributions::{DistIter, Distribution, Standard};

/// A random number generator: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; bias is ≪ 2⁻⁶⁴ and the
                // workspace only needs statistical uniformity.
                let x = rng.next_u64() as u128;
                self.start + ((x * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let x = rng.next_u64() as u128;
                start + ((x * span) >> 64) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// A uniform draw in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling helpers (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }

    /// Consumes the generator into an infinite sampling iterator.
    fn sample_iter<T, D: Distribution<T>>(self, distr: D) -> DistIter<D, Self, T>
    where
        Self: Sized,
    {
        DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: usize = rng.gen_range(64usize..2048);
            assert!((64..2048).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_spread() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut lo = 0usize;
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((4_000..6_000).contains(&lo), "half-mass count {lo}");
    }

    #[test]
    fn standard_samples_all_used_types() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let _: f64 = rng.gen();
        let _: f32 = rng.gen();
        let _: bool = rng.gen();
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn sample_iter_yields_standard_draws() {
        let xs: Vec<u64> = SmallRng::seed_from_u64(4)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let ys: Vec<u64> = SmallRng::seed_from_u64(4)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.len(), 4);
    }
}
