//! Distributions: only [`Standard`] is provided.

use crate::RngCore;
use std::marker::PhantomData;

/// Maps raw generator output to values of `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution of a primitive type: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Infinite iterator of samples (the result of `Rng::sample_iter`).
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        Self {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}
