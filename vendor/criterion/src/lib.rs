//! Offline shim for the [`criterion`](https://docs.rs/criterion) surface
//! this workspace uses: `criterion_group!`/`criterion_main!`,
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::iter` and
//! `BenchmarkId::new`.
//!
//! Each benchmark runs a short warmup, then a fixed measurement burst, and
//! prints the mean time per iteration. No statistics, plots or baselines —
//! enough to keep `cargo bench` meaningful offline.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Drives one benchmark's iterations.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Measures `f`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration: estimate the per-call cost.
        let start = Instant::now();
        let mut calls = 0u64;
        while start.elapsed() < TARGET / 10 || calls < 10 {
            black_box(f());
            calls += 1;
        }
        let per_call = start.elapsed().as_secs_f64() / calls as f64;
        let n = ((TARGET.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(10, 1_000_000);
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_secs_f64() * 1e9 / n as f64;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0 };
    f(&mut b);
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "µs")
    } else {
        (b.mean_ns, "ns")
    };
    println!("bench {label:<40} {value:>10.3} {unit}/iter");
}

/// The benchmark registry/driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `"layers/12"`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
