//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The workspace builds in environments without a crates.io mirror, so the
//! handful of third-party APIs it relies on are vendored as minimal,
//! source-compatible implementations. Only the surface `coca-net`'s framing
//! layer uses is provided: [`Bytes`], [`BytesMut`], [`Buf::get_u32`] and
//! [`BufMut::{put_u32, put_slice}`].

use std::ops::Deref;

/// An immutable byte buffer (here: a plain owned vector).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer.
pub trait BufMut {
    /// Appends one big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read access that advances a cursor.
pub trait Buf {
    /// Reads one big-endian `u32`, advancing past it.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes(head.try_into().expect("4-byte split"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor, &[1, 2, 3]);
        assert_eq!(frozen.to_vec().len(), 7);
    }
}
