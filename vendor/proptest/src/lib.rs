//! Offline shim for the [`proptest`](https://docs.rs/proptest) surface this
//! workspace uses.
//!
//! `proptest! { #[test] fn name(x in strategy, ...) { body } }` expands to a
//! plain `#[test]` that samples each strategy [`CASES`] times from a
//! deterministic per-test RNG. Failing cases panic with the case's inputs
//! via `Debug`; there is **no shrinking** — failures reproduce exactly
//! because the RNG seed is fixed by the test name.
//!
//! Strategies: numeric ranges (`lo..hi`), `any::<T>()`, and
//! `prop::collection::vec(elem, size)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Cases sampled per property.
pub const CASES: u32 = 64;

/// Rejections tolerated (via `prop_assume!`) before the property fails.
pub const MAX_REJECTS: u32 = 65_536;

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another sample.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// True iff this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// Shorthand used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A deterministic RNG for one property, derived from its name.
pub fn test_rng(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.gen_range(lo..=hi) }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (`prop::collection::vec` etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// A length specification: an exact `usize` or a `Range<usize>`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { min: n, max: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = if self.size.min + 1 >= self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests (see the crate docs for supported syntax).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                while __passed < $crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __dbg = format!(
                        concat!("inputs:", $(" ", stringify!($arg), " = {:?};",)*),
                        $(&$arg),*
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let __result: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => __passed += 1,
                        Err(e) if e.is_reject() => {
                            __rejected += 1;
                            assert!(
                                __rejected < $crate::MAX_REJECTS,
                                "prop_assume! rejected {} cases in {}",
                                __rejected,
                                stringify!($name),
                            );
                        }
                        Err(e) => panic!(
                            "property {} failed: {}\n{}",
                            stringify!($name), e, __dbg,
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Filters out uninteresting cases inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3u32..10,
            v in prop::collection::vec(-1.0f32..1.0, 2..8),
            exact in prop::collection::vec(0u8..=255, 4),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|&f| (-1.0..1.0).contains(&f)));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn assume_filters_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
            prop_assert_ne!(n, 1);
        }

        #[test]
        fn any_covers_the_domain(a in any::<u32>(), b in any::<i64>()) {
            // Smoke: values exist and the macro plumbs them through.
            let _ = (a, b);
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::RngCore;
        assert_eq!(
            crate::test_rng("x").next_u64(),
            crate::test_rng("x").next_u64()
        );
        assert_ne!(
            crate::test_rng("x").next_u64(),
            crate::test_rng("y").next_u64()
        );
    }
}
