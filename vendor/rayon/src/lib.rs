//! Offline shim for the [`rayon`](https://docs.rs/rayon) API surface this
//! workspace uses: `vec.into_par_iter().map(f).collect::<Vec<_>>()` plus
//! the [`ThreadPoolBuilder`] → [`ThreadPool::install`] width control.
//!
//! Work is distributed over `std::thread::scope` workers pulling indices
//! from an atomic counter; results land at their input index, so `collect`
//! is **order-preserving** and therefore bit-identical to a serial map —
//! the property the bench harness' sweep runner and the server's
//! layer-sharded merge rely on.
//!
//! Worker-count resolution mirrors upstream rayon: an explicit
//! [`ThreadPool::install`] scope wins, then the `RAYON_NUM_THREADS`
//! environment variable, then the machine's available parallelism. A
//! width of 1 runs inline on the calling thread (no spawn).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// dynamic extent of the installed closure (calling thread only —
    /// the shim's pools are scoped, not global).
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads used for a batch of `n` items: the installed
/// pool width if inside [`ThreadPool::install`], else `RAYON_NUM_THREADS`
/// (upstream rayon's knob), else the available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error building a [`ThreadPool`] (the shim's build cannot actually
/// fail; the type exists to mirror the upstream signature).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`: only the `num_threads`
/// knob is honored.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-derived) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the pool width; 0 means "use the default" (upstream
    /// semantics).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool (infallible in the shim).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        })
    }
}

/// A width-limited scope for parallel iterators. The shim spawns scoped
/// workers per batch rather than keeping threads alive, so a "pool" is
/// just the width that [`ThreadPool::install`] applies to batches started
/// inside it.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with this pool's width governing every parallel batch
    /// started (from the calling thread) inside it. Nested installs
    /// shadow like dynamic scoping; the prior width is restored on exit,
    /// panic included.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let _restore = Restore(prev);
        f()
    }
}

/// Applies `f` to every item on a pool of scoped threads, preserving input
/// order in the output.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        // Single-width pools (and trivial batches) run inline: no spawn
        // overhead, and trivially identical to the multi-thread result
        // because collect is order-preserving either way.
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("item taken once");
                let out = f(item);
                *results[i].lock().expect("result lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every slot")
        })
        .collect()
}

/// A pending parallel iteration over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A pending parallel map.
pub struct MapPar<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> IntoParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapPar<T, F> {
        MapPar {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapPar<T, F> {
    /// Runs the map and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Starts a parallel iteration.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * x + 1).collect();
        let parallel: Vec<u64> = xs.into_par_iter().map(|x| x * x + 1).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn installed_pool_width_governs_and_restores() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let outside = super::current_num_threads();
        let (inside, nested) = pool.install(|| {
            let inside = super::current_num_threads();
            let one = super::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap();
            let nested = one.install(super::current_num_threads);
            assert_eq!(super::current_num_threads(), 2, "nested install restores");
            (inside, nested)
        });
        assert_eq!(inside, 2);
        assert_eq!(nested, 1);
        assert_eq!(super::current_num_threads(), outside, "install restores");
    }

    #[test]
    fn pool_widths_are_result_identical() {
        let xs: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * 3 + 7).collect();
        for width in [1usize, 2, 8] {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .unwrap();
            let par: Vec<u64> =
                pool.install(|| xs.clone().into_par_iter().map(|x| x * 3 + 7).collect());
            assert_eq!(par, serial, "width {width}");
        }
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(0)
            .build()
            .unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Give other workers a chance to grab indices.
                std::thread::yield_now();
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(threads >= 1, "thread set unexpectedly empty");
        }
    }
}
