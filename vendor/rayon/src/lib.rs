//! Offline shim for the [`rayon`](https://docs.rs/rayon) API surface this
//! workspace uses: `vec.into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is distributed over `std::thread::scope` workers pulling indices
//! from an atomic counter; results land at their input index, so `collect`
//! is **order-preserving** and therefore bit-identical to a serial map —
//! the property the bench harness' sweep runner relies on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for a batch of `n` items.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of scoped threads, preserving input
/// order in the output.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: F) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("item taken once");
                let out = f(item);
                *results[i].lock().expect("result lock") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every slot")
        })
        .collect()
}

/// A pending parallel iteration over owned items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

/// A pending parallel map.
pub struct MapPar<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> IntoParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> MapPar<T, F> {
        MapPar {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> MapPar<T, F> {
    /// Runs the map and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Starts a parallel iteration.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * x + 1).collect();
        let parallel: Vec<u64> = xs.into_par_iter().map(|x| x * x + 1).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .collect::<Vec<i32>>()
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                // Give other workers a chance to grab indices.
                std::thread::yield_now();
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(threads >= 1, "thread set unexpectedly empty");
        }
    }
}
