//! Offline shim for serde's derive macros.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` in an offline
//! build) and emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` traits. Supported shapes — the only ones this
//! workspace derives on:
//!
//! * structs with named fields (serialized as a JSON object),
//! * tuple structs (newtypes serialize as the inner value, wider tuples as
//!   an array),
//! * enums with unit variants (serialized as the variant name) and newtype
//!   variants (externally tagged: `{"Variant": value}`).
//!
//! `#[serde(...)]` attributes are rejected; types needing a custom wire
//! shape implement the traits by hand.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant: its name and whether it carries a single payload.
struct Variant {
    name: String,
    newtype: bool,
}

/// Strips leading `#[...]` attribute pairs from `tokens[i..]`, panicking on
/// `#[serde(...)]` which this shim does not interpret.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner = g.stream().to_string();
                assert!(
                    !inner.starts_with("serde"),
                    "serde shim derive: #[serde(...)] attributes are unsupported; \
                     implement Serialize/Deserialize manually (found `{inner}`)"
                );
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(...)`) at `tokens[i..]`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Splits a field/variant list on top-level commas (angle-bracket aware).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are unsupported ({name})");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_top_level(&body)
                    .into_iter()
                    .filter(|f| !f.is_empty())
                    .map(|f| {
                        let j = skip_vis(&f, skip_attrs(&f, 0));
                        match &f[j] {
                            TokenTree::Ident(id) => id.to_string(),
                            other => panic!(
                                "serde shim derive: expected field name in {name}, found {other}"
                            ),
                        }
                    })
                    .collect();
                Item::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level(&body)
                    .into_iter()
                    .filter(|f| !f.is_empty())
                    .count();
                Item::TupleStruct { name, arity }
            }
            other => panic!("serde shim derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_level(&body)
                    .into_iter()
                    .filter(|v| !v.is_empty())
                    .map(|v| {
                        let j = skip_attrs(&v, 0);
                        let vname = match &v[j] {
                            TokenTree::Ident(id) => id.to_string(),
                            other => panic!(
                                "serde shim derive: expected variant name in {name}, found {other}"
                            ),
                        };
                        let newtype = match v.get(j + 1) {
                            None => false,
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis && v.len() == j + 2 =>
                            {
                                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                                let arity = split_top_level(&inner)
                                    .into_iter()
                                    .filter(|f| !f.is_empty())
                                    .count();
                                assert!(
                                    arity == 1,
                                    "serde shim derive: variant {name}::{vname} has {arity} \
                                     fields; only unit and single-payload variants are supported"
                                );
                                true
                            }
                            other => panic!(
                                "serde shim derive: unsupported variant shape for \
                                 {name}::{vname}: {other:?}"
                            ),
                        };
                        Variant {
                            name: vname,
                            newtype,
                        }
                    })
                    .collect();
                Item::Enum { name, variants }
            }
            other => panic!("serde shim derive: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.insert(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.newtype {
                        format!(
                            "{name}::{vn}(__x) => {{\n\
                                 let mut __m = ::serde::Map::new();\n\
                                 __m.insert(::std::string::String::from({vn:?}), \
                                     ::serde::Serialize::to_value(__x));\n\
                                 ::serde::Value::Object(__m)\n\
                             }}\n"
                        )
                    } else {
                        format!(
                            "{name}::{vn} => \
                             ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__m, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Object(__m) => Ok({name} {{ {reads} }}),\n\
                             __other => Err(::serde::Error::custom(format!(\n\
                                 \"expected object for {name}, got {{}}\", __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let reads: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v.as_array() {{\n\
                             Some(__a) if __a.len() == {arity} => Ok({name}({reads})),\n\
                             _ => Err(::serde::Error::custom(\n\
                                 \"expected {arity}-element array for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => Ok({name}::{vn}),\n")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!(
                        "if let Some(__x) = __m.get({vn:?}) {{\n\
                             return Ok({name}::{vn}(::serde::Deserialize::from_value(__x)?));\n\
                         }}\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant `{{}}`\", __other))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) => {{\n\
                                 {tagged_arms}\n\
                                 Err(::serde::Error::custom(\n\
                                     \"unknown tagged variant for enum {name}\"))\n\
                             }}\n\
                             __other => Err(::serde::Error::custom(format!(\n\
                                 \"expected string or object for enum {name}, got {{}}\",\n\
                                 __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
