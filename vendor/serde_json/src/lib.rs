//! Offline shim for the [`serde_json`](https://docs.rs/serde_json) API
//! surface this workspace uses: `Value`/`Map`, `json!`, `to_vec`,
//! `to_string[_pretty]`, `from_slice`, `from_str`.
//!
//! The value model and the JSON text codec live in the vendored `serde`
//! crate; this facade adds the typed entry points.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Converts any serializable value into a [`Value`] tree.
///
/// Infallible in this shim, but returns `Result` for signature parity with
/// the real crate (callers `.unwrap()`/`?` it).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Infallible conversion backing the [`json!`] macro.
#[doc(hidden)]
pub fn __value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string(&value.to_value()))
}

/// Serializes to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::json::to_string_pretty(&value.to_value()))
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::from_str(s)?)
}

/// Deserializes from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from any serializable expression.
///
/// Only the expression form is supported (`json!(expr)`), which is the only
/// form the workspace uses; object/array literal syntax is not implemented.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::__value_of(&$e)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f32, -2.0, 3.25];
        let text = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
        let bytes = to_vec(&xs).unwrap();
        let back2: Vec<f32> = from_slice(&bytes).unwrap();
        assert_eq!(back2, xs);
    }

    #[test]
    fn json_macro_wraps_expressions() {
        assert_eq!(json!(50), Value::Number(Number::U(50)));
        assert_eq!(json!("hi"), Value::String("hi".into()));
        assert_eq!(json!(1.25), Value::Number(Number::F(1.25)));
        assert_eq!(json!(null), Value::Null);
        let name = String::from("x");
        // By-reference expansion: `name` stays usable.
        let v = json!(name);
        assert_eq!(v, Value::String("x".into()));
        assert_eq!(name, "x");
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m = Map::new();
        m.insert("a".into(), json!(1));
        let text = to_string_pretty(&Value::Object(m)).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}");
    }
}
