//! JSON text encoding/decoding of the [`Value`](crate::Value) tree.
//!
//! Lives in the `serde` shim (rather than `serde_json`) so the value model
//! and its canonical text form evolve together; `serde_json` re-exports it.

use crate::value::{Map, Number, Value};
use crate::Error;

// ---------------------------------------------------------------- writer --

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // `{:?}` is the shortest representation that round-trips the f64
        // exactly (and always keeps a `.0` on integral values).
        Number::F(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        // JSON has no non-finite numbers; serde_json emits null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, '[', ']', |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Object(m) => {
            let entries: Vec<(&String, &Value)> = m.iter().collect();
            write_seq(out, entries.len(), indent, '{', '}', |out, i, ind| {
                let (k, v) = entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// Compact JSON text.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None);
    out
}

/// Two-space-indented JSON text.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(0));
    out
}

// ---------------------------------------------------------------- parser --

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error::custom(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expect: u8) -> Result<(), Error> {
        if self.peek() == Some(expect) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", expect as char))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(&format!("unexpected `{}`", c as char)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return self.err("lone high surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let n = if is_float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::custom("invalid number"))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            match stripped.parse::<i64>() {
                Ok(i) => Number::I(-i),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom("invalid number"))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::U(u),
                Err(_) => Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom("invalid number"))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        assert_eq!(&from_str(&to_string(v)).unwrap(), v);
        assert_eq!(&from_str(&to_string_pretty(v)).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Number(Number::U(u64::MAX)));
        round_trip(&Value::Number(Number::I(-42)));
        round_trip(&Value::Number(Number::F(0.1)));
        round_trip(&Value::String("he said \"hi\"\n\tπ \u{1F600}".into()));
    }

    #[test]
    fn float_text_keeps_floatness() {
        assert_eq!(to_string(&Value::Number(Number::F(1.0))), "1.0");
        let back = from_str("1.0").unwrap();
        assert_eq!(back, Value::Number(Number::F(1.0)));
        // Cross-variant equality still matches the integer form.
        assert_eq!(back, Value::Number(Number::U(1)));
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut obj = Map::new();
        obj.insert(
            "xs".into(),
            Value::Array(vec![
                Value::Number(Number::F(-3.25)),
                Value::Null,
                Value::Bool(false),
            ]),
        );
        obj.insert("name".into(), Value::String("demo".into()));
        round_trip(&Value::Object(obj));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str(r#""A😀""#).unwrap(), Value::String("A😀".into()));
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str("zzz").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
