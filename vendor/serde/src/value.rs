//! The self-describing value model every shim `Serialize` impl targets.
//!
//! The real serde is format-agnostic; this offline shim only ever needs
//! JSON (the repo uses serde exclusively through `serde_json`), so
//! serialization goes straight to a JSON-shaped [`Value`] tree.

use std::fmt;
use std::ops::Index;

/// A JSON number. Integers keep full 64-bit precision (the protocol
/// carries `u64` seeds and ids that `f64` would corrupt).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2⁵³).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    /// Mathematical equality across representations, so `json!(50)` equals
    /// a re-parsed `50` whatever variant each landed in.
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, Some(_)) | (Some(_), None) => {}
            (None, None) => {}
        }
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, Some(_)) | (Some(_), None) => {}
            (None, None) => {}
        }
        self.as_f64() == other.as_f64()
    }
}

/// An order-preserving string-keyed map (the shape of a JSON object).
///
/// Generic parameters exist only for signature compatibility with
/// `serde_json::Map<String, Value>`; all functionality is provided for that
/// instantiation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True iff `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Index<&str> for Map<String, Value> {
    type Output = Value;

    /// # Panics
    /// Panics if the key is absent (mirrors `serde_json::Map`).
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in map"))
    }
}

/// A JSON-shaped self-describing value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let i = v as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

macro_rules! value_from_float {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::F(v as f64))
            }
        }
    )*};
}
value_from_float!(f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Object field access; panics on non-objects or missing keys.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => &m[key],
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Array element access; panics on non-arrays or out of range.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => &a[i],
            other => panic!("cannot index {} with a usize", other.kind()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}
