//! Offline shim for the [`serde`](https://docs.rs/serde) API surface this
//! workspace uses.
//!
//! The real serde is a format-agnostic framework; here every type
//! serializes into the JSON-shaped [`Value`] tree (the workspace only ever
//! consumes serde through `serde_json`). `#[derive(Serialize,
//! Deserialize)]` is provided by the sibling `serde_derive` shim and
//! generates impls of the two traits below.

pub mod json;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::HashMap;
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts to the self-describing value model.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds from the self-describing value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization (every shim [`super::Deserialize`] qualifies).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

/// Fetches and deserializes a struct field; absent keys read as `Null` so
/// `Option` fields tolerate omission.
pub fn __field<T: Deserialize>(m: &Map, key: &str) -> Result<T, Error> {
    T::from_value(m.get(key).unwrap_or(&Value::Null))
        .map_err(|e| Error::custom(format!("field `{key}`: {e}")))
}

// ------------------------------------------------------------ primitives --

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_u64() {
                    Some(u) => <$t>::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range"))),
                    None => type_err("unsigned integer", v),
                }
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::U(i as u64))
                } else {
                    Value::Number(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => match n.as_i64() {
                        Some(i) => <$t>::try_from(i)
                            .map_err(|_| Error::custom(format!("{i} out of range"))),
                        None => type_err("integer", v),
                    },
                    _ => type_err("integer", v),
                }
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => type_err("number", v),
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------ containers --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N}, got {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => type_err("2-element array", v),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => type_err("3-element array", v),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the wire format is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

// ------------------------------------------------------- the value model --

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map<String, Value> {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Deserialize for Map<String, Value> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => Ok(m.clone()),
            _ => type_err("object", v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        let seed = u64::MAX - 3;
        assert_eq!(u64::from_value(&seed.to_value()).unwrap(), seed);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(<[f64; 5]>::from_value(&arr.to_value()).unwrap(), arr);
        let t = (3u32, 4u32, vec![0.5f32]);
        assert_eq!(
            <(u32, u32, Vec<f32>)>::from_value(&t.to_value()).unwrap(),
            t
        );
    }

    #[test]
    fn missing_fields_read_as_null() {
        let m = Map::new();
        let none: Option<u32> = __field(&m, "absent").unwrap();
        assert_eq!(none, None);
        assert!(__field::<u32>(&m, "absent").is_err());
    }

    #[test]
    fn number_equality_is_cross_variant() {
        assert_eq!(Number::U(50), Number::F(50.0));
        assert_eq!(Number::I(-2), Number::F(-2.0));
        assert_ne!(Number::U(50), Number::U(51));
    }
}
