//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam) crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}` — the only surface `coca-net`'s in-memory transport
//! uses — implemented over a mutex-guarded deque plus a condvar.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only when no receiver remains.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.inner
                .queue
                .lock()
                .expect("channel lock")
                .push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel lock");
                queue = guard;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn dropped_sender_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn dropped_receiver_fails_send() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
            h.join().unwrap();
        }
    }
}
