//! Property tests pinning the **multi-edge topology refactor** to the
//! single-server baseline:
//!
//! * a **one-cell topology** run through [`MultiCellEngine`] regenerates
//!   **byte-identical** records (frame digest, every latency/windowed/
//!   per-client series, the post-run global table) vs the legacy
//!   single-server [`Engine`] on the same spec — across randomized
//!   churn/drift/link timelines, the committed dynamics records' shape;
//! * a **peer-synced multi-cell** run (gossip or hub-and-spoke, with a
//!   mid-run migration and layer-sharded parallel merges on) is
//!   bit-identical at 1, 2 and N rayon workers: same frame digest, same
//!   per-cell global tables.
//!
//! The one-cell path exercises the exact legacy float sequence (the
//! per-cell link table is `None`, so transfers fall back to the
//! per-client legacy links), so any drift here is a real compatibility
//! bug in the topology refactor, not tolerance noise.

use coca::core::multicell::MultiCellEngine;
use coca::core::spec::PopularityShift;
use coca::core::{SyncMode, TopologySpec};
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;

const BASE_CLIENTS: usize = 4;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;

/// Randomized churn + drift + link dynamics, the same event mix as the
/// committed churn/drift records.
fn random_spec(seed: u64, join_at: f64, leave_after: usize, shift_at: u64) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = BASE_CLIENTS;
    sc.seed = seed;
    ScenarioSpec::new(sc, ROUNDS, FRAMES)
        .join(join_at, 1)
        .leave(1, leave_after)
        .popularity_shift(None, shift_at, PopularityShift::Rotate(3))
        .link_change(
            Some(0),
            join_at / 2.0,
            LinkModel {
                one_way_delay: SimDuration::from_millis(9),
                bandwidth_bps: 20.0e6,
            },
        )
}

fn engine_cfg(spec: &ScenarioSpec, parallel: bool) -> EngineConfig {
    let coca = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_parallel_merge(parallel);
    EngineConfig::new(coca)
}

/// Canonical probe of a run: the report scalars plus a serialized
/// rendering of every record series and each cell's global table.
fn probe(report: &EngineReport, globals: &[String]) -> (u64, u64, u64, u64, u64, String) {
    (
        report.frame_digest,
        report.frames,
        report.mean_latency_ms.to_bits(),
        report.accuracy_pct.to_bits(),
        report.hit_ratio.to_bits(),
        format!(
            "{}|{}|{}|{}|{}",
            serde_json::to_string(&report.latency).unwrap(),
            serde_json::to_string(&report.response_latency).unwrap(),
            serde_json::to_string(&report.windowed).unwrap(),
            serde_json::to_string(&report.per_client).unwrap(),
            globals.join("|"),
        ),
    )
}

fn run_legacy(spec: &ScenarioSpec) -> (u64, u64, u64, u64, u64, String) {
    let (scenario, plan) = spec.materialize();
    let mut engine = Engine::new(scenario, engine_cfg(spec, false));
    let report = engine.run_plan(&plan);
    let globals = vec![serde_json::to_string(engine.server().global()).unwrap()];
    probe(&report, &globals)
}

fn run_cells(
    spec: &ScenarioSpec,
    cells: usize,
    parallel: bool,
) -> (u64, u64, u64, u64, u64, String) {
    let (scenario, plan) = spec.materialize();
    let mut engine = MultiCellEngine::new(scenario, engine_cfg(spec, parallel), cells);
    let report = engine.run_plan(&plan);
    let globals: Vec<String> = engine
        .servers()
        .iter()
        .map(|s| serde_json::to_string(s.global()).unwrap())
        .collect();
    probe(&report, &globals)
}

proptest! {
    /// One-cell topology ≡ legacy single server, byte for byte, under
    /// randomized churn/drift/link dynamics.
    #[test]
    fn one_cell_topology_is_byte_identical_to_legacy(
        seed in 0u64..250,
        join_at in 1_000.0f64..30_000.0,
        leave_after in 1usize..ROUNDS,
        shift_at in 10u64..60,
    ) {
        let spec = random_spec(seed, join_at, leave_after, shift_at);
        let legacy = run_legacy(&spec);
        let one_cell = run_cells(
            &spec.clone().topology(TopologySpec::uniform(1, BASE_CLIENTS)),
            1,
            false,
        );
        prop_assert_eq!(legacy, one_cell);
    }

    /// Peer-synced multi-cell runs (both modes, with a mid-run migration
    /// and sharded merges on) are bit-identical at any rayon width.
    #[test]
    fn peer_sync_is_deterministic_at_any_rayon_width(
        seed in 250u64..400,
        join_at in 1_000.0f64..30_000.0,
        period in 200.0f64..3_000.0,
        hub in any::<bool>(),
    ) {
        let mode = if hub { SyncMode::HubAndSpoke } else { SyncMode::Gossip };
        let spec = random_spec(seed, join_at, 1, 25)
            .topology(TopologySpec::uniform(2, BASE_CLIENTS).with_sync(period, mode))
            .migrate(0, 1, 1);
        let baseline = run_cells(&spec, 2, true);
        for width in [1usize, 2, rayon::current_num_threads().max(3)] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("shim pool build is infallible");
            let run = pool.install(|| run_cells(&spec, 2, true));
            prop_assert_eq!(&baseline, &run);
        }
    }
}
