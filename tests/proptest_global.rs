//! Property tests pinning the **columnar** `GlobalCacheTable` (per-layer
//! `VectorStore` + occupancy bitmap, fused batch kernels) to the seed
//! `Vec<Option<Vec<f32>>>` boxed-row semantics:
//!
//! * merge / extract / seeding agree with a faithful reimplementation of
//!   the seed table within `1e-6` (they are in fact bit-identical today —
//!   the fused merge kernel mirrors the seed `scale` → `axpy` →
//!   `l2_normalize` rounding sequence — but `1e-6` is the documented
//!   contract);
//! * unpopulated-cell skipping is preserved exactly (occupancy parity);
//! * the **batched** whole-round merge (`merge_batch`, layer-outer in
//!   client order) is **bit-identical** to merging the same uploads
//!   sequentially — the determinism contract that makes per-layer server
//!   sharding safe.
//!
//! The vendored proptest shim has no tuple/`prop_map` strategies, so the
//! structured inputs (cell sets, uploads, φ vectors) derive from seeded
//! RNGs — every case is replayable from its scalar parameters.

use coca::core::collect::UpdateTable;
use coca::core::global::{GlobalCacheTable, MergeScratch};
use coca::math::vector::{axpy, l2_normalize, scale};
use coca::prelude::SeedTree;
use proptest::prelude::*;
use rand::Rng;

/// A faithful reimplementation of the seed (pre-columnar) global table:
/// boxed `Option<Vec<f32>>` cells, per-cell scale/axpy/normalize merge.
struct SeedTable {
    classes: usize,
    layers: usize,
    entries: Vec<Option<Vec<f32>>>,
    frequency: Vec<u64>,
}

impl SeedTable {
    fn new(classes: usize, layers: usize) -> Self {
        Self {
            classes,
            layers,
            entries: vec![None; classes * layers],
            frequency: vec![0; classes],
        }
    }

    fn idx(&self, class: usize, layer: usize) -> usize {
        class * self.layers + layer
    }

    fn set(&mut self, class: usize, layer: usize, mut vector: Vec<f32>) {
        l2_normalize(&mut vector);
        let i = self.idx(class, layer);
        self.entries[i] = Some(vector);
    }

    fn get(&self, class: usize, layer: usize) -> Option<&[f32]> {
        self.entries[self.idx(class, layer)].as_deref()
    }

    fn merge_update(&mut self, u: &UpdateTable, phi: &[u64], gamma: f32) {
        for (class, layer, vector) in u.iter() {
            if class >= self.classes || layer >= self.layers {
                continue;
            }
            let phi_i = phi[class] as f32;
            if phi_i <= 0.0 {
                continue;
            }
            let cap_phi = self.frequency[class] as f32;
            let i = self.idx(class, layer);
            match &mut self.entries[i] {
                Some(e) => {
                    let w_old = gamma * cap_phi / (cap_phi + phi_i);
                    let w_new = phi_i / (cap_phi + phi_i);
                    scale(w_old, e);
                    axpy(w_new, vector, e);
                    l2_normalize(e);
                }
                None => {
                    let mut v = vector.to_vec();
                    l2_normalize(&mut v);
                    self.entries[i] = Some(v);
                }
            }
        }
        for (f, &p) in self.frequency.iter_mut().zip(phi) {
            *f += p;
        }
    }
}

const CLASSES: usize = 6;
const LAYERS: usize = 4;
const DIM: usize = 13; // odd on purpose: exercises the kernel tails

/// Draws a deduplicated random cell set (possibly empty).
fn random_cells(rng: &mut impl Rng, max: usize) -> Vec<(usize, usize)> {
    let n = rng.gen_range(0..=max);
    let mut cells: Vec<(usize, usize)> = (0..n)
        .map(|_| (rng.gen_range(0..CLASSES), rng.gen_range(0..LAYERS)))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// Builds a matching (columnar, seed) table pair with random cells
/// pre-populated and a random frequency prior.
fn seeded_pair(seed: u64) -> (GlobalCacheTable, SeedTable) {
    let mut rng = SeedTree::new(seed).rng_for("fill");
    let fill = random_cells(&mut rng, 12);
    let mut col = GlobalCacheTable::new(CLASSES, LAYERS);
    let mut old = SeedTable::new(CLASSES, LAYERS);
    for &(c, l) in &fill {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        col.set(c, l, v.clone());
        old.set(c, l, v);
    }
    let prior: Vec<u64> = (0..CLASSES).map(|_| rng.gen_range(0..40)).collect();
    col.seed_frequency(&prior);
    old.frequency.copy_from_slice(&prior);
    (col, old)
}

/// Draws one upload: a random cell set absorbed with Eq. 3 decay, plus a
/// random (possibly partly zero) φ vector.
fn random_upload(rng: &mut impl Rng) -> (UpdateTable, Vec<u64>) {
    let cells = random_cells(rng, 10);
    let mut u = UpdateTable::new();
    for &(c, l) in &cells {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        u.absorb(c, l, &v, 0.95);
    }
    let phi: Vec<u64> = (0..CLASSES)
        .map(|_| {
            if rng.gen_range(0u32..4) == 0 {
                0
            } else {
                rng.gen_range(1..500)
            }
        })
        .collect();
    (u, phi)
}

proptest! {
    /// Seeding, merging and reads agree with the boxed-row seed table
    /// within 1e-6, and occupancy (which cells exist) agrees exactly.
    #[test]
    fn columnar_matches_seed_semantics(
        seed in 0u64..2000,
        uploads in 1usize..5,
    ) {
        let (mut col, mut old) = seeded_pair(seed);
        let mut rng = SeedTree::new(seed).rng_for("uploads");
        let mut scratch = MergeScratch::new();
        for _ in 0..uploads {
            let (u, phi) = random_upload(&mut rng);
            col.merge_update(&u, &phi, 0.99, &mut scratch);
            old.merge_update(&u, &phi, 0.99);
        }
        prop_assert_eq!(col.frequency(), old.frequency.as_slice());
        let mut populated = 0usize;
        for c in 0..CLASSES {
            for l in 0..LAYERS {
                match (col.get(c, l), old.get(c, l)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        populated += 1;
                        for (x, y) in a.iter().zip(b.iter()) {
                            prop_assert!((x - y).abs() < 1e-6, "cell ({c},{l}): {x} vs {y}");
                        }
                    }
                    _ => prop_assert!(false, "occupancy differs at ({c},{l})"),
                }
            }
        }
        prop_assert!(
            (col.fill_ratio() - populated as f64 / (CLASSES * LAYERS) as f64).abs() < 1e-12
        );
    }

    /// Extraction skips exactly the never-populated cells, preserves the
    /// requested class order, and returns the stored rows verbatim.
    #[test]
    fn extract_skips_unpopulated_and_matches_seed(seed in 0u64..2000) {
        let (col, old) = seeded_pair(seed);
        let mut rng = SeedTree::new(seed).rng_for("extract");
        let mut layers: Vec<usize> =
            (0..rng.gen_range(1..=LAYERS)).map(|_| rng.gen_range(0..LAYERS)).collect();
        layers.sort_unstable();
        layers.dedup();
        let mut classes: Vec<usize> =
            (0..rng.gen_range(1..=CLASSES)).map(|_| rng.gen_range(0..CLASSES)).collect();
        classes.sort_unstable();
        classes.dedup();
        let cache = col.extract(&layers, &classes);
        // Reference extraction over the seed table.
        for &layer in &layers {
            let expected: Vec<(usize, Vec<f32>)> = classes
                .iter()
                .filter_map(|&c| old.get(c, layer).map(|v| (c, v.to_vec())))
                .collect();
            let got = cache.layers().iter().find(|cl| cl.point == layer);
            match got {
                None => prop_assert!(expected.is_empty(), "layer {layer} missing"),
                Some(cl) => {
                    prop_assert_eq!(
                        cl.classes.clone(),
                        expected.iter().map(|(c, _)| *c).collect::<Vec<_>>()
                    );
                    for ((_, want), gotv) in expected.iter().zip(cl.vectors.iter_rows()) {
                        for (x, y) in want.iter().zip(gotv) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                }
            }
        }
    }

    /// The batched whole-round merge is bit-identical to the sequential
    /// per-upload merge in the same (client) order.
    #[test]
    fn batched_merge_is_bit_identical_to_sequential(
        seed in 0u64..2000,
        clients in 1usize..6,
    ) {
        let (mut seq, _) = seeded_pair(seed);
        let mut bat = seq.clone();
        let mut rng = SeedTree::new(seed).rng_for("uploads");
        let uploads: Vec<(UpdateTable, Vec<u64>)> =
            (0..clients).map(|_| random_upload(&mut rng)).collect();

        let mut scratch = MergeScratch::new();
        for (u, phi) in &uploads {
            seq.merge_update(u, phi, 0.99, &mut scratch);
        }
        let batch: Vec<(&UpdateTable, &[u64])> = uploads
            .iter()
            .map(|(u, phi)| (u, phi.as_slice()))
            .collect();
        bat.merge_batch(&batch, 0.99, &mut scratch);

        prop_assert_eq!(seq.frequency(), bat.frequency());
        for c in 0..CLASSES {
            for l in 0..LAYERS {
                match (seq.get(c, l), bat.get(c, l)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        for (x, y) in a.iter().zip(b.iter()) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                    _ => prop_assert!(false, "occupancy differs at ({c},{l})"),
                }
            }
        }
    }
}
