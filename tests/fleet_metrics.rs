//! Integration tests for the fleet-scale member-state features (PR 6):
//! per-member frame budgets (`DeviceSpeed` → `MemberPlan::frames_per_round`),
//! the compact fleet-aggregate metrics mode, the streaming latency
//! histogram, and the opt-in per-client windowed series.

use coca::core::driver::MetricsConfig;
use coca::core::spec::ScenarioSpec;
use coca::prelude::*;

const FRAMES: usize = 40;

fn spec(seed: u64) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = 3;
    sc.seed = seed;
    ScenarioSpec::new(sc, 2, FRAMES)
}

fn run(spec: &ScenarioSpec, metrics: Option<MetricsConfig>) -> EngineReport {
    let (scenario, mut plan) = spec.materialize();
    if let Some(m) = metrics {
        plan.metrics = m;
    }
    let coca = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(spec.frames_per_round);
    let mut engine = Engine::new(scenario, EngineConfig::new(coca));
    engine.run_plan(&plan)
}

/// A slow device processes exactly its reduced per-round budget while the
/// rest of the fleet runs the plan-wide one.
#[test]
fn per_member_frame_budget_drives_the_engine() {
    let hetero = spec(700).device_speed(Some(1), 10);
    assert!(hetero.validate().is_ok());
    let (_, plan) = hetero.materialize();
    let report = run(&hetero, None);
    assert_eq!(report.frames, plan.total_frames());
    assert_eq!(report.frames, (2 * FRAMES + 2 * 10 + 2 * FRAMES) as u64);
    for (k, member) in plan.members.iter().enumerate() {
        assert_eq!(
            report.per_client[k].accuracy.total(),
            (member.rounds * plan.member_frames(k)) as u64,
            "client {k} frame count"
        );
    }
    // The slow device really ran fewer frames than its peers.
    assert!(report.per_client[1].accuracy.total() < report.per_client[0].accuracy.total());
}

/// The fleet-aggregate metrics mode folds every client into one summary
/// with identical totals, without perturbing the run itself.
#[test]
fn fleet_aggregate_metrics_preserve_totals_and_digest() {
    let s = spec(701);
    let detailed = run(&s, None);
    let fleet = run(
        &s,
        Some(MetricsConfig {
            per_client: false,
            per_client_windowed: false,
            latency_histogram: true,
        }),
    );

    // Metrics bookkeeping must not change what executed.
    assert_eq!(detailed.frame_digest, fleet.frame_digest);
    assert_eq!(detailed.frames, fleet.frames);
    assert_eq!(
        detailed.mean_latency_ms.to_bits(),
        fleet.mean_latency_ms.to_bits()
    );
    assert_eq!(detailed.end_time, fleet.end_time);

    // One aggregate summary holding the whole fleet's observations.
    assert_eq!(fleet.per_client.len(), 1);
    let agg = &fleet.per_client[0];
    let sum_frames: u64 = detailed.per_client.iter().map(|c| c.accuracy.total()).sum();
    let sum_correct: u64 = detailed
        .per_client
        .iter()
        .map(|c| c.accuracy.correct())
        .sum();
    let sum_uploads: u64 = detailed.per_client.iter().map(|c| c.upload.count()).sum();
    assert_eq!(agg.accuracy.total(), sum_frames);
    assert_eq!(agg.accuracy.correct(), sum_correct);
    assert_eq!(agg.upload.count(), sum_uploads);
    assert_eq!(agg.latency.count(), detailed.latency.count());

    // The streaming histogram saw every frame; its sum-based mean and
    // exact max agree with the reference recorder, and its lower-bound
    // quantiles are monotone and bounded by the true max.
    let hist = fleet.latency_hist.as_ref().expect("histogram opted in");
    assert_eq!(hist.count(), fleet.frames);
    let mean_rel = (hist.mean_ms() - fleet.mean_latency_ms).abs() / fleet.mean_latency_ms;
    assert!(mean_rel < 1e-6, "histogram mean drifted: rel {mean_rel}");
    let exact_max = detailed.latency.max_ms().unwrap();
    assert!((hist.max_ms().unwrap() - exact_max).abs() < 1e-9);
    let (p50, p95, p99) = (
        hist.quantile_ms(0.50).unwrap(),
        hist.quantile_ms(0.95).unwrap(),
        hist.quantile_ms(0.99).unwrap(),
    );
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99 && p99 <= exact_max);
    // The lower-bound rule: the bucket floor never exceeds the exact
    // quantile's bucket, so p99 sits within one sub-bucket (≤ 1/64
    // relative) below the true value — and hence at or below the max.
    assert!(hist.quantile_ms(1.0).unwrap() <= exact_max);
    // The default mode leaves the histogram off.
    assert!(detailed.latency_hist.is_none());
}

/// The opt-in per-client windowed series is populated per member and its
/// per-window frame counts sum to the client's total frames.
#[test]
fn per_client_windowed_series_is_opt_in() {
    let s = spec(702);
    let without = run(&s, None);
    assert!(without.per_client_windowed.is_empty(), "default is off");

    let with = run(
        &s,
        Some(MetricsConfig {
            per_client: true,
            per_client_windowed: true,
            latency_histogram: false,
        }),
    );
    assert_eq!(with.frame_digest, without.frame_digest);
    assert_eq!(with.per_client_windowed.len(), 3);
    for (k, series) in with.per_client_windowed.iter().enumerate() {
        let frames: u64 = series.windows().iter().map(|w| w.frames).sum();
        assert_eq!(
            frames,
            with.per_client[k].accuracy.total(),
            "client {k} windowed frame total"
        );
        assert!(!series.is_empty());
    }
    // The per-client series tile the global one: summed window frames
    // equal the run's frame count.
    let global_frames: u64 = with.windowed.windows().iter().map(|w| w.frames).sum();
    let client_frames: u64 = with
        .per_client_windowed
        .iter()
        .flat_map(|s| s.windows())
        .map(|w| w.frames)
        .sum();
    assert_eq!(client_frames, global_frames);
    assert_eq!(global_frames, with.frames);
}
