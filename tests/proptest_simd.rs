//! Property tests pinning the dispatched kernels (AVX2 when built with
//! `--features simd` on an AVX2 host, scalar otherwise) **bit-identical**
//! to the always-compiled scalar 8-lane path, and pinning the i8/f16
//! quantize→dequantize round-trip error bounds.
//!
//! Bit-identity — not tolerance — is the contract: the committed
//! churn/drift/scenario records must regenerate byte-identical with SIMD
//! enabled. Run under both `cargo test` and `cargo test --features simd`;
//! with the feature off the comparison is trivially true, with it on it
//! exercises the AVX2 twins (odd dims, tail-only inputs, unaligned
//! sub-slices, empty layers).

use coca::math::matrix::{self, scalar};
use coca::math::quant::{f16_bits_to_f32, f32_to_f16_bits, i8_row_scale};
use coca::math::{l2_normalize, Precision, QuantizedStore, ScoreScratch, VectorStore};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `count` random unit vectors of dimension `dim` from one seed.
fn unit_rows(seed: u64, count: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            if l2_normalize(&mut v) <= f32::MIN_POSITIVE {
                v[0] = 1.0;
            }
            v
        })
        .collect()
}

proptest! {
    /// Dispatched `dot_unit` is bit-identical to the scalar kernel on
    /// every dimension (8-lane main loop, tail-only, empty) and on
    /// unaligned sub-slices of an aligned buffer.
    #[test]
    fn dot_unit_bit_identical(seed in 0u64..4_000, dim in 0usize..140, offset in 0usize..4) {
        let n = dim + offset;
        let rows = unit_rows(seed, 2, n.max(1));
        let (a, b) = (&rows[0], &rows[1]);
        // Offset sub-slices shift the pointers off 32-byte alignment.
        let (a, b) = (&a[offset.min(a.len())..], &b[offset.min(b.len())..]);
        prop_assert_eq!(
            matrix::dot_unit(a, b).to_bits(),
            scalar::dot_unit(a, b).to_bits()
        );
    }

    /// Dispatched `score_top2` matches the scalar kernel exactly:
    /// identical Top2 (classes and bit-exact values) and identical
    /// accumulator state, including over empty layers.
    #[test]
    fn score_top2_bit_identical(
        seed in 0u64..4_000,
        dim in 1usize..90,
        entries in 0usize..24,
        alpha in 0.0f32..1.0,
    ) {
        let rows = unit_rows(seed, entries + 1, dim);
        let (query, rows) = rows.split_last().expect("rows");
        let store = VectorStore::from_rows(rows);
        let classes: Vec<usize> = (0..entries).collect();
        let mut s_dispatch = ScoreScratch::new();
        let mut s_scalar = ScoreScratch::new();
        s_dispatch.begin(entries.max(1));
        s_scalar.begin(entries.max(1));
        for _ in 0..2 {
            let d = matrix::score_top2(store.as_flat(), dim, query, &classes, alpha, &mut s_dispatch);
            let s = scalar::score_top2(store.as_flat(), dim, query, &classes, alpha, &mut s_scalar);
            prop_assert_eq!(
                d.best.map(|(c, v)| (c, v.to_bits())),
                s.best.map(|(c, v)| (c, v.to_bits()))
            );
            prop_assert_eq!(
                d.second.map(|(c, v)| (c, v.to_bits())),
                s.second.map(|(c, v)| (c, v.to_bits()))
            );
            for &c in &classes {
                prop_assert_eq!(
                    s_dispatch.accumulated(c).to_bits(),
                    s_scalar.accumulated(c).to_bits()
                );
            }
        }
    }

    /// Dispatched `knn_k` and `assign_nearest` are bit-identical to the
    /// scalar kernels.
    #[test]
    fn knn_and_assign_bit_identical(
        seed in 4_000u64..8_000,
        dim in 1usize..90,
        entries in 1usize..30,
        k in 1usize..8,
    ) {
        let rows = unit_rows(seed, entries + 1, dim);
        let (query, rows) = rows.split_last().expect("rows");
        let store = VectorStore::from_rows(rows);
        let cands: Vec<(u32, u32)> = (0..entries).map(|r| (r as u32, r as u32 * 3)).collect();
        let d = matrix::knn_k(store.as_flat(), dim, query, &cands, k);
        let s = scalar::knn_k(store.as_flat(), dim, query, &cands, k);
        prop_assert_eq!(d.len(), s.len());
        for ((dv, dt), (sv, st)) in d.iter().zip(&s) {
            prop_assert_eq!((dv.to_bits(), dt), (sv.to_bits(), st));
        }
        let da = matrix::assign_nearest(store.as_flat(), dim, query);
        let sa = scalar::assign_nearest(store.as_flat(), dim, query);
        prop_assert_eq!(
            da.map(|(i, v)| (i, v.to_bits())),
            sa.map(|(i, v)| (i, v.to_bits()))
        );
        prop_assert_eq!(matrix::assign_nearest(&[], dim, query), None);
    }

    /// Dispatched `merge_weighted_row(s)` is bit-identical to the scalar
    /// kernel: merged values, returned norms, and batched jobs over
    /// unaligned row offsets (odd dims make every row unaligned).
    #[test]
    fn merge_weighted_bit_identical(
        seed in 8_000u64..12_000,
        dim in 1usize..100,
        jobs in 1usize..8,
        w_old in 0.0f32..1.5,
        w_new in 0.0f32..1.5,
    ) {
        let rows = unit_rows(seed, jobs * 2, dim);
        let mut dst_d = VectorStore::from_rows(&rows[..jobs]);
        let mut dst_s = dst_d.clone();
        let src = VectorStore::from_rows(&rows[jobs..]);
        let idx: Vec<usize> = (0..jobs).collect();
        let wo = vec![w_old; jobs];
        let wn = vec![w_new; jobs];
        matrix::merge_weighted_rows(dst_d.as_flat_mut(), dim, &idx, src.as_flat(), &idx, &wo, &wn);
        scalar::merge_weighted_rows(dst_s.as_flat_mut(), dim, &idx, src.as_flat(), &idx, &wo, &wn);
        for (a, b) in dst_d.as_flat().iter().zip(dst_s.as_flat()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Adjacent jobs writing the SAME destination row: the AVX2 batch
        // kernel's pairwise row-interleave must fall back to strict job
        // order (a merge-over-merge is order-dependent).
        let dup_dst: Vec<usize> = (0..jobs).map(|i| i / 2).collect();
        let mut dup_d = VectorStore::from_rows(&rows[..jobs]);
        let mut dup_s = dup_d.clone();
        matrix::merge_weighted_rows(
            dup_d.as_flat_mut(),
            dim,
            &dup_dst,
            src.as_flat(),
            &idx,
            &wo,
            &wn,
        );
        scalar::merge_weighted_rows(
            dup_s.as_flat_mut(),
            dim,
            &dup_dst,
            src.as_flat(),
            &idx,
            &wo,
            &wn,
        );
        for (a, b) in dup_d.as_flat().iter().zip(dup_s.as_flat()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // Single-row form, including the zero-merge norm path.
        let mut e_d = rows[0].clone();
        let mut e_s = rows[0].clone();
        let nd = matrix::merge_weighted_row(&mut e_d, &rows[jobs], 0.0, 0.0);
        let ns = scalar::merge_weighted_row(&mut e_s, &rows[jobs], 0.0, 0.0);
        prop_assert_eq!(nd.to_bits(), ns.to_bits());
        for (a, b) in e_d.iter().zip(&e_s) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// i8 round trip: every element moves by at most half a quantization
    /// step (`scale / 2`), and re-quantizing a snapped row is exact.
    #[test]
    fn i8_round_trip_error_bound(seed in 0u64..4_000, dim in 1usize..130) {
        let rows = unit_rows(seed, 1, dim);
        let row = &rows[0];
        let scale = i8_row_scale(row);
        let mut q = QuantizedStore::new(dim, Precision::I8);
        q.push_row(row);
        let back = q.dequantize_row(0);
        for (a, b) in row.iter().zip(&back) {
            prop_assert!((a - b).abs() <= scale * 0.5 + 1e-7, "{} vs {}", a, b);
        }
        let mut q2 = QuantizedStore::new(dim, Precision::I8);
        q2.push_row(&back);
        for (a, b) in q2.dequantize_row(0).iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// f16 round trip: relative error ≤ 2⁻¹¹ for normal values (plus an
    /// absolute floor for the subnormal range), and snapping is
    /// idempotent.
    #[test]
    fn f16_round_trip_error_bound(x in -70_000.0f32..70_000.0) {
        let bits = f32_to_f16_bits(x);
        let back = f16_bits_to_f32(bits);
        if x.abs() <= 65_504.0 {
            prop_assert!(
                (back - x).abs() <= x.abs() / 2_048.0 + 6e-8,
                "{} -> {}", x, back
            );
        }
        // Snapping must be idempotent.
        prop_assert_eq!(f32_to_f16_bits(back), bits);
    }
}

/// The dispatch layer reports which path runs; with `--features simd` on
/// an AVX2 host the SIMD path must actually be active, otherwise the
/// parity tests above would silently compare scalar to scalar.
#[test]
fn simd_dispatch_reports_expected_path() {
    let active = coca::math::simd_active();
    if cfg!(feature = "simd") && std::arch::is_x86_feature_detected!("avx2") {
        assert!(
            active,
            "simd feature built on an AVX2 host must dispatch AVX2"
        );
    } else {
        assert!(!active);
    }
}
