//! Property-based tests over the core invariants (proptest).

use coca::core::aca::{allocate, AcaInputs};
use coca::core::collect::UpdateTable;
use coca::core::global::GlobalCacheTable;
use coca::core::CocaConfig;
use coca::data::distribution::{dirichlet, long_tail_weights};
use coca::data::partition::{client_distributions, NonIidLevel};
use coca::math::{l2_norm, l2_normalized};
use coca::model::ModelId;
use coca::net::{decode_frame, encode_frame};
use coca::prelude::SeedTree;
use proptest::prelude::*;

proptest! {
    /// ACA never exceeds the memory budget, whatever the inputs.
    #[test]
    fn aca_respects_budget(
        freq in prop::collection::vec(0u64..10_000, 2..40),
        budget in 0usize..2_000_000,
        seed in 0u64..1000,
    ) {
        let n = freq.len();
        let mut rng = SeedTree::new(seed).rng_for("aca");
        use rand::Rng;
        let tau: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5000)).collect();
        let l = rng.gen_range(2usize..30);
        let r: Vec<f64> = (0..l).map(|_| rng.gen_range(0.0..1.0)).collect();
        let saved: Vec<f64> = (0..l).map(|_| rng.gen_range(0.1..50.0)).collect();
        let bytes: Vec<usize> = (0..l).map(|_| rng.gen_range(64usize..2048)).collect();
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let out = allocate(&cfg, &AcaInputs {
            global_freq: &freq,
            timestamps: &tau,
            hit_ratio: &r,
            saved_ms: &saved,
            entry_bytes: &bytes,
            budget_bytes: budget,
        });
        prop_assert!(out.bytes(&bytes) <= budget);
        // Hot classes are unique and within range.
        let mut hot = out.hot_classes.clone();
        hot.sort_unstable();
        hot.dedup();
        prop_assert_eq!(hot.len(), out.hot_classes.len());
        prop_assert!(out.hot_classes.iter().all(|&c| c < n));
        prop_assert!(out.layers.iter().all(|&j| j < l));
    }

    /// Update-table absorption always yields unit-norm entries.
    #[test]
    fn update_table_stays_unit_norm(
        vectors in prop::collection::vec(
            prop::collection::vec(-10.0f32..10.0, 8),
            1..30,
        ),
        beta in 0.0f32..0.999,
    ) {
        let mut table = UpdateTable::new();
        let mut any = false;
        for v in &vectors {
            if l2_norm(v) > 1e-3 {
                table.absorb(0, 0, v, beta);
                any = true;
            }
        }
        if any {
            let u = table.get(0, 0).unwrap();
            prop_assert!((l2_norm(u) - 1.0).abs() < 1e-3);
        }
    }

    /// Global merges keep entries unit-norm and frequencies additive.
    #[test]
    fn global_merge_invariants(
        phi in prop::collection::vec(0u64..1000, 3),
        seed in 0u64..500,
    ) {
        let mut rng = SeedTree::new(seed).rng_for("merge");
        use rand::Rng;
        let mut table = GlobalCacheTable::new(3, 2);
        for c in 0..3 {
            for l in 0..2 {
                let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
                if l2_norm(&v) > 1e-3 {
                    table.set(c, l, v);
                }
            }
        }
        let before: Vec<u64> = table.frequency().to_vec();
        let mut upload = UpdateTable::new();
        for c in 0..3 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            if l2_norm(&v) > 1e-3 {
                upload.absorb(c, 0, &v, 0.5);
            }
        }
        table.merge_update(&upload, &phi, 0.99, &mut coca::core::global::MergeScratch::new());
        for (i, &p) in phi.iter().enumerate() {
            prop_assert_eq!(table.frequency()[i], before[i] + p);
        }
        for c in 0..3 {
            for l in 0..2 {
                if let Some(e) = table.get(c, l) {
                    prop_assert!((l2_norm(&e) - 1.0).abs() < 1e-3);
                }
            }
        }
    }

    /// Wire frames decode to exactly what was encoded.
    #[test]
    fn frame_codec_round_trip(
        id in any::<u32>(),
        xs in prop::collection::vec(-1e6f32..1e6, 0..200),
    ) {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Msg { id: u32, xs: Vec<f32> }
        let msg = Msg { id, xs };
        let bytes = encode_frame(&msg).unwrap();
        let (back, used): (Msg, usize) = decode_frame(&bytes).unwrap().unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(used, bytes.len());
    }

    /// Dirichlet draws are probability vectors.
    #[test]
    fn dirichlet_is_a_distribution(
        alpha in prop::collection::vec(0.01f64..5.0, 2..30),
        seed in 0u64..500,
    ) {
        let mut rng = SeedTree::new(seed).rng_for("dir");
        let d = dirichlet(&mut rng, &alpha);
        prop_assert_eq!(d.len(), alpha.len());
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
    }

    /// Client partitions are valid distributions at any non-IID level.
    #[test]
    fn partitions_are_distributions(
        classes in 2usize..50,
        clients in 1usize..12,
        p in 0.0f64..12.0,
        seed in 0u64..300,
    ) {
        let global = long_tail_weights(classes, 10.0);
        let parts = client_distributions(&global, clients, NonIidLevel(p), &SeedTree::new(seed));
        prop_assert_eq!(parts.len(), clients);
        for part in parts {
            prop_assert_eq!(part.len(), classes);
            prop_assert!((part.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
    }

    /// Normalization is idempotent.
    #[test]
    fn normalize_idempotent(v in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        prop_assume!(l2_norm(&v) > 1e-3);
        let once = l2_normalized(&v);
        let twice = l2_normalized(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
