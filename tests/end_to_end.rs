//! Cross-crate integration tests: the full CoCa stack end to end.

use coca::baselines::smtm::run_smtm;
use coca::baselines::{run_edge_only, SmtmConfig};
use coca::prelude::*;

fn small_scenario(seed: u64) -> ScenarioConfig {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
    sc.num_clients = 3;
    sc.seed = seed;
    sc
}

fn run_coca(sc: &ScenarioConfig, rounds: usize, frames: usize) -> EngineReport {
    let coca = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames);
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = rounds;
    Engine::new(Scenario::build(sc.clone()), engine_cfg).run()
}

#[test]
fn coca_beats_edge_only_with_small_accuracy_loss() {
    let sc = small_scenario(501);
    let scenario = Scenario::build(sc.clone());
    let edge = run_edge_only(&scenario, 5, 200);
    let coca = run_coca(&sc, 5, 200);

    assert_eq!(edge.frames, coca.frames);
    let reduction = 1.0 - coca.mean_latency_ms / edge.mean_latency_ms;
    assert!(
        reduction > 0.15,
        "CoCa reduction only {:.1}% ({} vs {})",
        reduction * 100.0,
        coca.mean_latency_ms,
        edge.mean_latency_ms
    );
    let loss = edge.accuracy_pct - coca.accuracy_pct;
    assert!(loss < 8.0, "accuracy loss {loss:.2} points");
}

#[test]
fn full_stack_is_deterministic_across_runs() {
    let sc = small_scenario(502);
    let a = run_coca(&sc, 3, 150);
    let b = run_coca(&sc, 3, 150);
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
    assert_eq!(a.accuracy_pct, b.accuracy_pct);
    assert_eq!(a.hit_ratio, b.hit_ratio);
    assert_eq!(a.response_latency.mean_ms(), b.response_latency.mean_ms());
    assert_eq!(a.end_time, b.end_time);
}

#[test]
fn methods_share_identical_streams() {
    let sc = small_scenario(503);
    let s1 = Scenario::build(sc.clone());
    let s2 = Scenario::build(sc.clone());
    for k in 0..sc.num_clients {
        let a = s1.stream(k).take(200);
        let b = s2.stream(k).take(200);
        assert_eq!(a, b, "client {k} stream differs across scenario builds");
    }
}

#[test]
fn coca_dominates_smtm_on_accuracy_at_comparable_latency() {
    // The paper's §VI.E comparison is made under an accuracy-loss
    // constraint. SMTM's unbudgeted all-layer cache can look fast in
    // isolation, but it pays for it in accuracy (erroneous hits); CoCa
    // must hold accuracy while staying in the same latency range.
    let mut sc = small_scenario(504);
    sc.dataset = DatasetSpec::ucf101().subset(50);
    sc.global_popularity = uniform_weights(50);
    let coca_cfg = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(200);
    let scenario = Scenario::build(sc.clone());
    let smtm = run_smtm(&scenario, &SmtmConfig::from_coca(&coca_cfg), 4, 200);
    let coca = run_coca(&sc, 4, 200);
    assert!(
        coca.accuracy_pct >= smtm.accuracy_pct - 0.5,
        "coca acc {} vs smtm acc {}",
        coca.accuracy_pct,
        smtm.accuracy_pct
    );
    assert!(
        coca.mean_latency_ms < smtm.mean_latency_ms * 2.0,
        "coca {} vs smtm {}",
        coca.mean_latency_ms,
        smtm.mean_latency_ms
    );
}

#[test]
fn long_tail_improves_coca_latency() {
    // Directional-but-noisy property: with 3 clients a single seed can
    // flip on feature-geometry luck, so compare means over a few seeds.
    let mean_over_seeds = |popularity: Vec<f64>| -> f64 {
        let mut total = 0.0;
        for seed in [505, 506, 507] {
            let mut sc = small_scenario(seed);
            sc.dataset = DatasetSpec::ucf101().subset(100);
            sc.global_popularity = popularity.clone();
            total += run_coca(&sc, 4, 250).mean_latency_ms;
        }
        total / 3.0
    };
    let u = mean_over_seeds(uniform_weights(100));
    let l = mean_over_seeds(long_tail_weights(100, 90.0));
    assert!(l < u, "long-tail {l} should beat uniform {u}");
}

#[test]
fn ablation_arms_order_sanely() {
    // On a task with many classes, the static all-class allocation
    // (Normal) wastes its budget; dynamic allocation must not lose to it
    // on latency, and neither arm may give up accuracy.
    let sc = {
        let mut sc = small_scenario(506);
        sc.dataset = DatasetSpec::ucf101().subset(100);
        sc.global_popularity = long_tail_weights(100, 90.0);
        sc.drift_mag = 0.35;
        sc
    };
    // DCA's advantage is a budget-pressure regime: when the budget cannot
    // hold every class at useful layers, hot-spot selection is what keeps
    // coverage (the paper's entries are 2048-d floats — always pressured).
    let budget = {
        let probe = Scenario::build(sc.clone());
        probe.rt.arch().full_cache_bytes(probe.rt.num_classes()) / 24
    };
    let arm = |dca: bool, gcu: bool| {
        let mut coca = CocaConfig::for_model(ModelId::ResNet101)
            .with_round_frames(200)
            .with_budget(budget);
        coca.enable_dca = dca;
        coca.enable_gcu = gcu;
        let mut engine_cfg = EngineConfig::new(coca);
        engine_cfg.rounds = 5;
        Engine::new(Scenario::build(sc.clone()), engine_cfg).run()
    };
    let normal = arm(false, false);
    let full = arm(true, true);
    // Known deviation (DESIGN.md §10): our exit-depth distribution is more
    // compact than the paper's, so a full-coverage static layer is highly
    // competitive on latency. The robust claims: both arms beat Edge-Only
    // comfortably, and the full system holds accuracy.
    let edge_ms = {
        let scenario = Scenario::build(sc.clone());
        scenario.rt.full_compute().as_millis_f64()
    };
    assert!(
        full.mean_latency_ms < edge_ms * 0.75,
        "DCA+GCU {} vs edge {}",
        full.mean_latency_ms,
        edge_ms
    );
    assert!(normal.mean_latency_ms < edge_ms * 0.75);
    assert!(
        full.accuracy_pct >= normal.accuracy_pct - 2.0,
        "DCA+GCU acc {} vs Normal acc {}",
        full.accuracy_pct,
        normal.accuracy_pct
    );
}

#[test]
fn static_spec_reproduces_the_classic_engine_bit_for_bit() {
    // The acceptance bar for the ScenarioSpec refactor: an empty timeline
    // with uniform (testbed) links must be indistinguishable from the
    // pre-dynamics engine — same digest, same latencies to the bit, same
    // virtual end time.
    let sc = small_scenario(508);
    let (rounds, frames) = (3, 150);

    let classic = run_coca(&sc, rounds, frames);

    let spec = ScenarioSpec::new(sc.clone(), rounds, frames);
    let (scenario, plan) = spec.materialize();
    let coca = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames);
    let mut engine = Engine::new(scenario, EngineConfig::new(coca));
    let via_spec = engine.run_plan(&plan);

    assert_eq!(classic.frame_digest, via_spec.frame_digest);
    assert_eq!(classic.frames, via_spec.frames);
    assert_eq!(
        classic.mean_latency_ms.to_bits(),
        via_spec.mean_latency_ms.to_bits()
    );
    assert_eq!(
        classic.accuracy_pct.to_bits(),
        via_spec.accuracy_pct.to_bits()
    );
    assert_eq!(classic.hit_ratio.to_bits(), via_spec.hit_ratio.to_bits());
    assert_eq!(classic.end_time, via_spec.end_time);
    assert_eq!(
        classic.response_latency.mean_ms().to_bits(),
        via_spec.response_latency.mean_ms().to_bits()
    );
}

#[test]
fn leave_phi_decay_ages_frequency_mass_under_churn() {
    // Regression for the churn Φ-decay satellite: under a churn spec
    // (two leavers), a sub-unit `leave_phi_decay` must strictly shrink
    // the global frequency mass relative to the default β = 1 (off), and
    // must not change the workload itself (same frame digest). Off by
    // default: the default-config run is the byte-identical baseline the
    // committed churn/drift records regenerate from.
    let mut sc = small_scenario(509);
    sc.num_clients = 4;
    let spec = ScenarioSpec::new(sc, 4, 120).leave(1, 2).leave(3, 3);

    let run = |decay: f64| {
        let (scenario, plan) = spec.materialize();
        let mut coca = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(120);
        coca.leave_phi_decay = decay;
        let mut engine = Engine::new(scenario, EngineConfig::new(coca));
        let report = engine.run_plan(&plan);
        let phi_mass: u64 = engine.server().global().frequency().iter().sum();
        (report, phi_mass)
    };

    let (base, base_mass) = run(1.0);
    let (decayed, decayed_mass) = run(0.5);
    assert_eq!(
        base.frame_digest, decayed.frame_digest,
        "Φ decay must not alter the consumed workload"
    );
    assert!(
        decayed_mass < base_mass,
        "decayed Φ mass {decayed_mass} must be below baseline {base_mass}"
    );
    // Deterministic: the decayed run replays bit-for-bit.
    let (again, again_mass) = run(0.5);
    assert_eq!(
        decayed.mean_latency_ms.to_bits(),
        again.mean_latency_ms.to_bits()
    );
    assert_eq!(decayed_mass, again_mass);
}

#[test]
fn response_latency_grows_with_client_count() {
    let lat = |n: usize| {
        let mut sc = small_scenario(507);
        sc.num_clients = n;
        let coca = CocaConfig::for_model(ModelId::ResNet101).with_round_frames(100);
        let mut engine_cfg = EngineConfig::new(coca);
        engine_cfg.rounds = 2;
        engine_cfg.boot_window_ms = 200.0;
        Engine::new(Scenario::build(sc), engine_cfg)
            .run()
            .response_latency
            .mean_ms()
    };
    let small = lat(2);
    let big = lat(16);
    assert!(big > small, "16 clients {big} vs 2 clients {small}");
}
