//! Wire-hardening property tests: **random byte mutations of valid
//! protocol frames never panic the decoder** — they decode, or they
//! error through `Result`, nothing else. Covers every frame the protocol
//! ships (request, allocation, upload) through both the stream-oriented
//! `decode_frame` and the message-oriented `decode_message` boundary,
//! plus truncations (every prefix of a valid frame) and length-prefix
//! corruption — the classic panic food: negative-looking lengths,
//! lengths past the buffer, payloads whose deserialized values violate
//! type invariants (non-unit rows, ragged stores, duplicate cells,
//! duplicate layer points).
//!
//! The vendored proptest shim has no byte-vector strategies, so
//! mutations derive from seeded RNGs — every case replays from its
//! scalar parameters.

use coca::core::collect::UpdateTable;
use coca::core::proto::{CacheAllocation, CacheRequest, UpdateUpload};
use coca::core::CocaServer;
use coca::net::{decode_frame, decode_message, encode_frame};
use coca::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A realistic allocation frame: an actual extracted sub-table from a
/// seeded server (unit-norm rows, sorted layers — everything the
/// decoder's validators check).
fn sample_allocation() -> CacheAllocation {
    let sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    let scenario = Scenario::build(sc);
    let server = CocaServer::new(
        &scenario.rt,
        CocaConfig::for_model(ModelId::ResNet101),
        scenario.seeds(),
    );
    CacheAllocation {
        round: 3,
        cache: server.cache_for(&[1, 5, 9], &[0, 2, 4, 7]),
        precision: coca::math::Precision::F32,
    }
}

fn sample_request() -> CacheRequest {
    CacheRequest {
        client_id: 11,
        round: 2,
        timestamps: vec![4; 10],
        hit_ratio: vec![0.25; 34],
        budget_bytes: 96 * 1024,
    }
}

fn sample_upload() -> UpdateUpload {
    let mut table = UpdateTable::new();
    table.absorb(2, 5, &[0.6, 0.8], 0.95);
    table.absorb(7, 5, &[1.0, 0.0], 0.95);
    table.absorb(1, 9, &[0.0, -1.0], 0.95);
    UpdateUpload {
        client_id: 4,
        round: 1,
        table,
        frequency: vec![3; 10],
        precision: coca::math::Precision::F32,
    }
}

/// Decodes `bytes` as every protocol frame type through both decode
/// boundaries. Success and error are both fine; a panic fails the test.
fn decode_all_ways(bytes: &[u8]) {
    let _ = decode_frame::<CacheRequest>(bytes);
    let _ = decode_frame::<CacheAllocation>(bytes);
    let _ = decode_frame::<UpdateUpload>(bytes);
    let _ = decode_message::<CacheRequest>(bytes);
    let _ = decode_message::<CacheAllocation>(bytes);
    let _ = decode_message::<UpdateUpload>(bytes);
}

/// Encoded once — building the allocation's server is expensive and the
/// frames are immutable inputs; every case copies before corrupting.
fn valid_frames() -> &'static [Vec<u8>] {
    use std::sync::OnceLock;
    static FRAMES: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    FRAMES.get_or_init(|| {
        vec![
            encode_frame(&sample_request()).unwrap().to_vec(),
            encode_frame(&sample_allocation()).unwrap().to_vec(),
            encode_frame(&sample_upload()).unwrap().to_vec(),
        ]
    })
}

proptest! {
    /// Random in-place byte corruption of valid frames never panics any
    /// decode path — including corruption of the 4-byte length prefix.
    #[test]
    fn mutated_frames_never_panic(seed in 0u64..3000, mutations in 1usize..24) {
        let mut rng = SeedTree::new(seed).rng_for("mutate");
        for frame in valid_frames() {
            let mut bytes = frame.clone();
            for _ in 0..mutations {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen();
            }
            decode_all_ways(&bytes);
        }
    }

    /// Every truncation of a valid frame decodes without panicking: the
    /// stream boundary reports "incomplete", the message boundary errors.
    #[test]
    fn truncated_frames_never_panic(seed in 0u64..500) {
        let mut rng = SeedTree::new(seed).rng_for("cut");
        for frame in valid_frames() {
            let cut = rng.gen_range(0..frame.len());
            let head = &frame[..cut];
            decode_all_ways(head);
            prop_assert!(decode_message::<CacheRequest>(head).is_err());
        }
    }

    /// Splicing random trailing bytes after a valid frame: the stream
    /// boundary still decodes the frame, the message boundary reports the
    /// length inconsistency — and neither panics.
    #[test]
    fn length_inconsistent_buffers_never_panic(seed in 0u64..500, extra in 1usize..64) {
        let mut rng = SeedTree::new(seed).rng_for("pad");
        for frame in valid_frames() {
            let mut bytes = frame.clone();
            for _ in 0..extra {
                bytes.push(rng.gen());
            }
            decode_all_ways(&bytes);
            prop_assert!(decode_message::<UpdateUpload>(&bytes).is_err());
        }
    }
}

/// The unmutated frames round-trip — the mutation tests above would be
/// vacuous against frames that never decoded in the first place.
#[test]
fn valid_frames_round_trip() {
    let req_bytes = encode_frame(&sample_request()).unwrap();
    let req: CacheRequest = decode_message(&req_bytes).unwrap();
    assert_eq!(req.client_id, 11);
    assert_eq!(req.hit_ratio.len(), 34);

    let alloc_bytes = encode_frame(&sample_allocation()).unwrap();
    let alloc: CacheAllocation = decode_message(&alloc_bytes).unwrap();
    assert_eq!(alloc.round, 3);
    assert!(!alloc.cache.is_empty());

    let up_bytes = encode_frame(&sample_upload()).unwrap();
    let up: UpdateUpload = decode_message(&up_bytes).unwrap();
    assert_eq!(up.table.len(), 3);
}
