//! Daemon digest-equivalence over real loopback TCP.
//!
//! The contract `cocad` ships under: driven with one operation in
//! flight at a time, the networked daemon finishes with the **same
//! global-table digest** as an in-process `CocaServer` fed the
//! identical sequence — for both lock modes (single mutex vs per-layer
//! sharded `RwLock`s), both merge modes, and the round-aligned flush
//! policy. The whole suite also runs under `--features simd` in CI, so
//! the digest must not move under the AVX2 kernels either.

use std::net::TcpListener;

use coca::core::MergeMode;
use coca::daemon::{
    run_load, run_verify, serve, serve_with_peers, shutdown_daemon, Arrival, ClientMsg,
    DaemonClient, LockMode, PeerSet, RunSpec, ServerCore, ServerMsg, Workload,
};
use coca::math::Precision;

fn small_workload(merge_mode: MergeMode, round_aligned: bool) -> Workload {
    Workload {
        spec: RunSpec {
            classes: 15,
            seed: 41,
            merge_mode,
            round_aligned,
            ..RunSpec::default()
        },
        clients: 3,
        rounds: 2,
    }
}

fn spawn_daemon(wl: &Workload, lock: LockMode, workers: usize) -> coca::daemon::DaemonHandle {
    let (rt, cfg, seeds) = wl.spec.build();
    let core = ServerCore::new(&rt, cfg, &seeds, lock);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    serve(core, listener, workers).expect("daemon starts")
}

#[test]
fn sequential_loopback_digest_matches_in_process_reference() {
    for merge_mode in [MergeMode::PerUpload, MergeMode::QueueAndFlush] {
        for lock in [LockMode::Single, LockMode::Sharded] {
            let wl = small_workload(merge_mode, false);
            let handle = spawn_daemon(&wl, lock, 2);
            let addr = handle.addr();
            let outcome = run_verify(addr, &wl).expect("verify run");
            assert!(
                outcome.matches(),
                "digest diverged over loopback ({merge_mode:?}, {}): \
                 daemon {:016x} vs reference {:016x}",
                lock.name(),
                outcome.daemon_digest,
                outcome.local_digest
            );
            assert_eq!(outcome.ops, wl.total_ops());
            assert!(shutdown_daemon(addr), "daemon should ack the shutdown");
            let report = handle.join();
            // The run drove every op plus a flush; the report digest is
            // post-flush, so it must still name the reference state.
            assert_eq!(
                report.digest,
                outcome.local_digest,
                "final report digest diverged ({merge_mode:?}, {})",
                lock.name()
            );
            assert_eq!(report.requests, wl.total_ops() / 2);
            assert_eq!(report.uploads, wl.total_ops() / 2);
            assert_eq!(report.server.is_some(), lock == LockMode::Single);
        }
    }
}

#[test]
fn round_aligned_watermark_survives_the_wire() {
    let wl = small_workload(MergeMode::QueueAndFlush, true);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 2);
    let addr = handle.addr();
    let outcome = run_verify(addr, &wl).expect("verify run");
    assert!(
        outcome.matches(),
        "round-aligned digest diverged: daemon {:016x} vs reference {:016x}",
        outcome.daemon_digest,
        outcome.local_digest
    );
    assert!(shutdown_daemon(addr));
    handle.join();
}

#[test]
fn quantized_loopback_digest_matches_per_precision() {
    // --precision f16/i8: senders snap uploads onto the precision grid
    // and the daemon stores/serves the quantized table — the digest must
    // still land exactly on the in-process reference under the same
    // spec, for both lock modes. (f32 is the existing tests' default.)
    for precision in [Precision::F32, Precision::F16, Precision::I8] {
        for lock in [LockMode::Single, LockMode::Sharded] {
            let mut wl = small_workload(MergeMode::QueueAndFlush, false);
            wl.spec.precision = precision;
            let handle = spawn_daemon(&wl, lock, 2);
            let addr = handle.addr();
            let outcome = run_verify(addr, &wl).expect("verify run");
            assert!(
                outcome.matches(),
                "digest diverged over loopback at {} ({}): daemon {:016x} vs reference {:016x}",
                precision.label(),
                lock.name(),
                outcome.daemon_digest,
                outcome.local_digest
            );
            assert!(shutdown_daemon(addr));
            handle.join();
        }
    }
}

#[test]
fn peer_sync_ships_the_table_delta_over_loopback() {
    // Two daemons as cells 0 and 1: cell 0 takes the whole workload,
    // then a SyncNow ships its delta to cell 1 over real TCP. Cell 1's
    // post-sync digest must land exactly on an in-process reference
    // replaying the same export/absorb — the socket leg of the
    // multi-edge sync path must be digest-invisible.
    let wl = small_workload(MergeMode::PerUpload, false);
    let (rt, cfg, seeds) = wl.spec.build();

    // Daemon B (cell 1): no peers, single lock (peer sync needs it).
    let core_b = ServerCore::new(&rt, cfg, &seeds, LockMode::Single);
    core_b.set_cell_id(1);
    let listener_b = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle_b =
        serve_with_peers(core_b, listener_b, 2, PeerSet::default()).expect("daemon B starts");

    // Daemon A (cell 0): peers at B, sync only on explicit SyncNow.
    let core_a = ServerCore::new(&rt, cfg, &seeds, LockMode::Single);
    let peers = PeerSet::parse(&format!("1={}", handle_b.addr())).expect("peer list parses");
    let listener_a = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle_a = serve_with_peers(core_a, listener_a, 2, peers).expect("daemon A starts");

    // Drive the workload into A sequentially; run_verify replays the
    // identical sequence on its own reference, pinning A's digest.
    let outcome = run_verify(handle_a.addr(), &wl).expect("verify run");
    assert!(outcome.matches(), "cell 0 diverged before the sync");

    // In-process replay of the sync leg: the same merge history at cell
    // 0, exported to cell 1, absorbed at a fresh cell-1 server.
    let mut ref_a = coca::core::CocaServer::new(&rt, cfg, &seeds);
    for round in 0..wl.rounds {
        for k in 0..wl.clients {
            let profile = ref_a.base_hit_profile();
            let req = wl.request(&rt, profile, k, round);
            ref_a.handle_request(&req);
            ref_a.handle_upload(wl.upload(&rt, &seeds, k, round));
        }
    }
    ref_a.flush_pending();
    let mut ref_b = coca::core::CocaServer::new(&rt, cfg, &seeds);
    ref_b.set_cell_id(1);
    ref_b.absorb_peer(&ref_a.export_delta(1));

    // Fire the sync: A ships exactly one delta, B acks it inline.
    let mut client = DaemonClient::connect(handle_a.addr()).expect("connect to A");
    match client.call(&ClientMsg::SyncNow).expect("sync call") {
        ServerMsg::SyncDone(shipped) => assert_eq!(shipped, 1, "one peer, one delta"),
        other => panic!("expected SyncDone, got {other:?}"),
    }
    let mut client_b = DaemonClient::connect(handle_b.addr()).expect("connect to B");
    let digest_b = match client_b.call(&ClientMsg::Digest).expect("digest call") {
        ServerMsg::Digest(d) => d,
        other => panic!("expected Digest, got {other:?}"),
    };
    assert_eq!(
        digest_b,
        ref_b.global().digest(),
        "cell 1's post-sync table diverged from the in-process export/absorb replay"
    );

    assert!(shutdown_daemon(handle_a.addr()));
    handle_a.join();
    assert!(shutdown_daemon(handle_b.addr()));
    handle_b.join();
}

#[test]
fn concurrent_closed_loop_serves_every_op_exactly_once() {
    // Concurrency makes arrival order (and thus the digest) run-to-run
    // dependent, but op accounting and Φ conservation are exact: the
    // daemon must serve 2 ops per client per round, no losses, no
    // duplicates, across a multi-worker pool.
    let wl = small_workload(MergeMode::QueueAndFlush, false);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 4);
    let addr = handle.addr();
    let report = run_load(
        addr,
        &wl,
        Arrival::Closed {
            think: std::time::Duration::ZERO,
        },
    )
    .expect("load run");
    assert_eq!(report.ops, wl.total_ops());
    assert_eq!(report.hist.count(), wl.total_ops());
    assert!(report.hist.p999() >= report.hist.p50());
    handle.shutdown();
    let daemon_report = handle.join();
    assert_eq!(
        daemon_report.requests + daemon_report.uploads,
        wl.total_ops()
    );
}

#[test]
fn open_loop_pairs_every_reply() {
    let wl = small_workload(MergeMode::PerUpload, false);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 2);
    let addr = handle.addr();
    let report = run_load(
        addr,
        &wl,
        Arrival::Open {
            period: std::time::Duration::from_micros(500),
        },
    )
    .expect("open-loop run");
    assert_eq!(report.ops, wl.total_ops());
    assert!(shutdown_daemon(addr));
    handle.join();
}
