//! Daemon digest-equivalence over real loopback TCP.
//!
//! The contract `cocad` ships under: driven with one operation in
//! flight at a time, the networked daemon finishes with the **same
//! global-table digest** as an in-process `CocaServer` fed the
//! identical sequence — for both lock modes (single mutex vs per-layer
//! sharded `RwLock`s), both merge modes, and the round-aligned flush
//! policy. The whole suite also runs under `--features simd` in CI, so
//! the digest must not move under the AVX2 kernels either.

use std::net::TcpListener;

use coca::core::MergeMode;
use coca::daemon::{
    run_load, run_verify, serve, shutdown_daemon, Arrival, LockMode, RunSpec, ServerCore, Workload,
};

fn small_workload(merge_mode: MergeMode, round_aligned: bool) -> Workload {
    Workload {
        spec: RunSpec {
            classes: 15,
            seed: 41,
            merge_mode,
            round_aligned,
            ..RunSpec::default()
        },
        clients: 3,
        rounds: 2,
    }
}

fn spawn_daemon(wl: &Workload, lock: LockMode, workers: usize) -> coca::daemon::DaemonHandle {
    let (rt, cfg, seeds) = wl.spec.build();
    let core = ServerCore::new(&rt, cfg, &seeds, lock);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    serve(core, listener, workers).expect("daemon starts")
}

#[test]
fn sequential_loopback_digest_matches_in_process_reference() {
    for merge_mode in [MergeMode::PerUpload, MergeMode::QueueAndFlush] {
        for lock in [LockMode::Single, LockMode::Sharded] {
            let wl = small_workload(merge_mode, false);
            let handle = spawn_daemon(&wl, lock, 2);
            let addr = handle.addr();
            let outcome = run_verify(addr, &wl).expect("verify run");
            assert!(
                outcome.matches(),
                "digest diverged over loopback ({merge_mode:?}, {}): \
                 daemon {:016x} vs reference {:016x}",
                lock.name(),
                outcome.daemon_digest,
                outcome.local_digest
            );
            assert_eq!(outcome.ops, wl.total_ops());
            assert!(shutdown_daemon(addr), "daemon should ack the shutdown");
            let report = handle.join();
            // The run drove every op plus a flush; the report digest is
            // post-flush, so it must still name the reference state.
            assert_eq!(
                report.digest,
                outcome.local_digest,
                "final report digest diverged ({merge_mode:?}, {})",
                lock.name()
            );
            assert_eq!(report.requests, wl.total_ops() / 2);
            assert_eq!(report.uploads, wl.total_ops() / 2);
            assert_eq!(report.server.is_some(), lock == LockMode::Single);
        }
    }
}

#[test]
fn round_aligned_watermark_survives_the_wire() {
    let wl = small_workload(MergeMode::QueueAndFlush, true);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 2);
    let addr = handle.addr();
    let outcome = run_verify(addr, &wl).expect("verify run");
    assert!(
        outcome.matches(),
        "round-aligned digest diverged: daemon {:016x} vs reference {:016x}",
        outcome.daemon_digest,
        outcome.local_digest
    );
    assert!(shutdown_daemon(addr));
    handle.join();
}

#[test]
fn concurrent_closed_loop_serves_every_op_exactly_once() {
    // Concurrency makes arrival order (and thus the digest) run-to-run
    // dependent, but op accounting and Φ conservation are exact: the
    // daemon must serve 2 ops per client per round, no losses, no
    // duplicates, across a multi-worker pool.
    let wl = small_workload(MergeMode::QueueAndFlush, false);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 4);
    let addr = handle.addr();
    let report = run_load(
        addr,
        &wl,
        Arrival::Closed {
            think: std::time::Duration::ZERO,
        },
    )
    .expect("load run");
    assert_eq!(report.ops, wl.total_ops());
    assert_eq!(report.hist.count(), wl.total_ops());
    assert!(report.hist.p999() >= report.hist.p50());
    handle.shutdown();
    let daemon_report = handle.join();
    assert_eq!(
        daemon_report.requests + daemon_report.uploads,
        wl.total_ops()
    );
}

#[test]
fn open_loop_pairs_every_reply() {
    let wl = small_workload(MergeMode::PerUpload, false);
    let handle = spawn_daemon(&wl, LockMode::Sharded, 2);
    let addr = handle.addr();
    let report = run_load(
        addr,
        &wl,
        Arrival::Open {
            period: std::time::Duration::from_micros(500),
        },
    )
    .expect("open-loop run");
    assert_eq!(report.ops, wl.total_ops());
    assert!(shutdown_daemon(addr));
    handle.join();
}
