//! Property tests pinning the timer-wheel [`EventQueue`] to the reference
//! [`HeapEventQueue`]: identical `(timestamp, insertion-seq)` pop order
//! under arbitrary interleavings of schedules and pops, including
//! same-instant bursts (FIFO ties), past-cursor schedules, and far-future
//! instants that land in the wheel's overflow heap.
//!
//! This is the determinism contract for PR 6's scheduler swap: every
//! committed record must regenerate byte-identically under either queue,
//! which reduces to the two queues agreeing on pop order event for event.

use coca::sim::{EventQueue, HeapEventQueue, SimTime};
use proptest::prelude::*;

/// One step of an interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a payload at an absolute instant (ns).
    Schedule(u64),
    /// Pop once from both queues and compare.
    Pop,
}

/// Decodes one raw draw into an op. Schedules outnumber pops 3:2, and the
/// instants are spread over several regimes so a single run crosses wheel
/// levels, the overflow horizon (2^52 ns), and exact ties:
/// near-origin bursts (level 0 + FIFO ties), sub-tick neighbors sharing a
/// slot (tick = 2^16 ns), mid-range across levels, the horizon edge, and
/// deep overflow territory.
fn decode(x: u64) -> Op {
    match x % 5 {
        0 | 1 => Op::Pop,
        _ => {
            let regime = (x / 5) % 5;
            let v = x / 25;
            let ns = match regime {
                0 => v % 200_000,
                1 => 100_000 + (v % 64),
                2 => v % (1 << 40),
                3 => (1u64 << 52) - 1_000 + (v % 1_001_000),
                _ => (1u64 << 60) + (v % (1u64 << 60)),
            };
            Op::Schedule(ns)
        }
    }
}

fn drain_and_compare(wheel: &mut EventQueue<u32>, heap: &mut HeapEventQueue<u32>) {
    loop {
        assert_eq!(wheel.peek_time(), heap.peek_time(), "peek_time diverged");
        let (a, b) = (wheel.pop(), heap.pop());
        match (a, b) {
            (None, None) => break,
            (Some(x), Some(y)) => {
                assert_eq!((x.at, x.seq, x.payload), (y.at, y.seq, y.payload));
            }
            (x, y) => panic!("pop parity diverged: wheel={x:?} heap={y:?}"),
        }
    }
}

proptest! {
    /// Interleaved schedule/pop sequences produce identical pops, and the
    /// final drain empties both queues in the same order.
    #[test]
    fn wheel_matches_heap_under_interleaving(
        raw in prop::collection::vec(0u64..u64::MAX, 1..400),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut payload = 0u32;
        for op in raw.into_iter().map(decode) {
            match op {
                Op::Schedule(ns) => {
                    let at = SimTime::from_nanos(ns);
                    wheel.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
                Op::Pop => {
                    let (a, b) = (wheel.pop(), heap.pop());
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(
                                (x.at, x.seq, x.payload),
                                (y.at, y.seq, y.payload)
                            );
                        }
                        (x, y) => prop_assert!(false, "diverged: wheel={:?} heap={:?}", x, y),
                    }
                    prop_assert_eq!(wheel.len(), heap.len());
                }
            }
        }
        drain_and_compare(&mut wheel, &mut heap);
    }

    /// Same-instant bursts pop in exact insertion (FIFO) order even when
    /// interleaved with earlier and later events.
    #[test]
    fn same_timestamp_bursts_are_fifo(
        base in 0u64..(1 << 44),
        burst in 2usize..64,
        stagger in prop::collection::vec(0u64..(1 << 30), 0..16),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let at = SimTime::from_nanos(base);
        for k in 0..burst as u32 {
            wheel.schedule(at, k);
            heap.schedule(at, k);
        }
        for (i, off) in stagger.iter().enumerate() {
            let t = SimTime::from_nanos(base ^ off);
            let tag = 1_000 + i as u32;
            wheel.schedule(t, tag);
            heap.schedule(t, tag);
        }
        let mut last_burst: Option<u32> = None;
        while let Some(x) = wheel.pop() {
            let y = heap.pop().expect("heap ended early");
            assert_eq!((x.at, x.seq, x.payload), (y.at, y.seq, y.payload));
            if x.payload < 1_000 {
                if let Some(prev) = last_burst {
                    prop_assert!(x.payload == prev + 1, "burst popped out of FIFO order");
                }
                last_burst = Some(x.payload);
            }
        }
        prop_assert!(heap.pop().is_none());
        prop_assert_eq!(last_burst, Some(burst as u32 - 1));
    }

    /// Far-future (overflow-heap) events re-enter the wheel correctly: a
    /// workload living entirely past the 2^52 ns horizon still pops in
    /// exact (at, seq) order.
    #[test]
    fn overflow_events_reenter_in_order(
        offsets in prop::collection::vec(0u64..(1 << 56), 1..80),
    ) {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let horizon = 1u64 << 52;
        for (i, off) in offsets.iter().enumerate() {
            let at = SimTime::from_nanos(horizon + off);
            wheel.schedule(at, i as u32);
            heap.schedule(at, i as u32);
        }
        drain_and_compare(&mut wheel, &mut heap);
    }
}

/// Past-cursor schedules (the engine regularly schedules at *now*) land in
/// the ready buffer and still interleave correctly with pending events.
#[test]
fn scheduling_behind_the_cursor_stays_ordered() {
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    for (at, tag) in [(500_000u64, 0u32), (1_000_000, 1), (2_000_000, 2)] {
        wheel.schedule(SimTime::from_nanos(at), tag);
        heap.schedule(SimTime::from_nanos(at), tag);
    }
    // Pop the first event: the wheel cursor advances past tick(500_000).
    let (a, b) = (wheel.pop().unwrap(), heap.pop().unwrap());
    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
    // Now schedule before, at, and just after the popped instant.
    for (at, tag) in [(100u64, 10u32), (500_000, 11), (600_000, 12)] {
        wheel.schedule(SimTime::from_nanos(at), tag);
        heap.schedule(SimTime::from_nanos(at), tag);
    }
    let mut order = Vec::new();
    while let Some(x) = wheel.pop() {
        let y = heap.pop().unwrap();
        assert_eq!((x.at, x.seq, x.payload), (y.at, y.seq, y.payload));
        order.push(x.payload);
    }
    assert!(heap.pop().is_none());
    assert_eq!(order, vec![10, 11, 12, 1, 2]);
}
