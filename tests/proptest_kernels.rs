//! Property tests pinning the fused scoring kernels to their scalar
//! references, plus an end-to-end guarantee that the contiguous
//! `VectorStore` lookup path reproduces the pre-refactor representation
//! (`Vec<Vec<f32>>` rows scored with `cosine`) decision-for-decision on a
//! fixed seed.
//!
//! Tolerance policy: the fused kernels use a fixed 8-lane unroll with a
//! deterministic reduction order, the scalar references sum left to
//! right; over unit vectors the two agree within `1e-5` (asserted here on
//! random inputs, including dimensions not divisible by the unroll
//! width), and each is individually bit-deterministic run-to-run.

use coca::core::lookup::LookupScratch;
use coca::core::semantic::{CacheLayer, LocalCache};
use coca::core::{infer_with_cache, CocaConfig};
use coca::math::matrix::{self, reference};
use coca::math::{cosine, l2_normalize, ScoreScratch, VectorStore};
use coca::model::{ClientFeatureView, ClientProfile, ModelId, ModelRuntime};
use coca::prelude::{DatasetSpec, SeedTree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `count` random unit vectors of dimension `dim` from one seed.
fn unit_rows(seed: u64, count: usize, dim: usize) -> Vec<Vec<f32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            if l2_normalize(&mut v) <= f32::MIN_POSITIVE {
                v[0] = 1.0; // astronomically unlikely; keep the unit contract
            }
            v
        })
        .collect()
}

fn flat(rows: &[Vec<f32>]) -> VectorStore {
    VectorStore::from_rows(rows)
}

proptest! {
    /// The 8-lane unrolled dot agrees with plain left-to-right summation
    /// on every dimension, including ones not divisible by the unroll
    /// width, and is bit-deterministic.
    #[test]
    fn dot_unit_matches_scalar_reference(seed in 0u64..5_000, dim in 1usize..130) {
        let rows = unit_rows(seed, 2, dim);
        let fused = matrix::dot_unit(&rows[0], &rows[1]);
        let naive = reference::dot_ref(&rows[0], &rows[1]);
        prop_assert!((fused - naive).abs() < 1e-5, "dim {dim}: {fused} vs {naive}");
        prop_assert_eq!(fused.to_bits(), matrix::dot_unit(&rows[0], &rows[1]).to_bits());
    }

    /// One fused Eq. 1/2 pass matches the scalar reference: identical
    /// best/second identities whenever the decision is not knife-edge,
    /// values always within 1e-5, and identical accumulator state.
    #[test]
    fn score_top2_matches_scalar_reference(
        seed in 0u64..5_000,
        dim in 1usize..80,
        entries in 1usize..30,
        alpha in 0.0f32..1.0,
    ) {
        let rows = unit_rows(seed, entries + 1, dim);
        let (query, rows) = rows.split_last().expect("entries + 1 rows");
        let rows = rows.to_vec();
        let store = flat(&rows);
        let classes: Vec<usize> = (0..entries).collect();

        let mut fused_scratch = ScoreScratch::new();
        let mut ref_scratch = ScoreScratch::new();
        fused_scratch.begin(entries);
        ref_scratch.begin(entries);
        // Two passes: the second exercises the α-decayed accumulation.
        for pass in 0..2 {
            let fused = store.score_top2(query, &classes, alpha, &mut fused_scratch);
            let reference =
                reference::score_top2_ref(&rows, query, &classes, alpha, &mut ref_scratch);
            let (fb, fs) = (fused.best, fused.second);
            let (rb, rs) = (reference.best, reference.second);
            prop_assert_eq!(fb.is_some(), rb.is_some());
            if let (Some((_, fv)), Some((_, rv))) = (fb, rb) {
                prop_assert!((fv - rv).abs() < 1e-5, "pass {pass}: best {fv} vs {rv}");
            }
            if let (Some((_, fv)), Some((_, rv))) = (fs, rs) {
                prop_assert!((fv - rv).abs() < 1e-5, "pass {pass}: second {fv} vs {rv}");
            }
            // Identities must agree whenever the gap is clear.
            if let (Some((fc, fv)), Some((rc, _)), Some((_, sv))) = (fb, rb, rs) {
                if (fv - sv).abs() > 1e-3 {
                    prop_assert!(fc == rc, "pass {pass}: clear-gap winner {fc} vs {rc}");
                }
            }
            for &c in &classes {
                let (f, r) = (fused_scratch.accumulated(c), ref_scratch.accumulated(c));
                prop_assert!((f - r).abs() < 1e-4, "acc[{c}]: {f} vs {r}");
            }
        }
    }

    /// Fused top-k candidate ranking matches the scalar reference:
    /// similarities within 1e-5, identical tags on clear gaps, identical
    /// output shape.
    #[test]
    fn knn_k_matches_scalar_reference(
        seed in 5_000u64..10_000,
        dim in 1usize..80,
        entries in 1usize..40,
        k in 1usize..10,
    ) {
        let rows = unit_rows(seed, entries + 1, dim);
        let (query, rows) = rows.split_last().expect("entries + 1 rows");
        let rows = rows.to_vec();
        let store = flat(&rows);
        // Candidate subset: every other row, tagged with a shifted id.
        let cands: Vec<(u32, u32)> = (0..entries)
            .step_by(2)
            .map(|r| (r as u32, 100 + r as u32))
            .collect();
        let fused = store.knn_k(query, &cands, k);
        let scalar = reference::knn_k_ref(&rows, query, &cands, k);
        prop_assert_eq!(fused.len(), scalar.len());
        for (i, ((fv, ft), (rv, rt))) in fused.iter().zip(&scalar).enumerate() {
            prop_assert!((fv - rv).abs() < 1e-5, "rank {i}: {fv} vs {rv}");
            let clear_gap = i + 1 >= scalar.len()
                || (rv - scalar[i + 1].0).abs() > 1e-3;
            if clear_gap {
                prop_assert!(ft == rt, "rank {i} tag {ft} vs {rt} on a clear gap");
            }
        }
        // Determinism: a second call is bit-identical.
        prop_assert_eq!(&fused, &store.knn_k(query, &cands, k));
    }

    /// The fused k-means E-step matches the scalar reference.
    #[test]
    fn assign_nearest_matches_scalar_reference(
        seed in 10_000u64..15_000,
        dim in 1usize..80,
        centers in 1usize..25,
    ) {
        let rows = unit_rows(seed, centers + 1, dim);
        let (query, rows) = rows.split_last().expect("centers + 1 rows");
        let rows = rows.to_vec();
        let store = flat(&rows);
        let fused = store.assign_nearest(query).expect("non-empty");
        let scalar = reference::assign_nearest_ref(&rows, query).expect("non-empty");
        prop_assert!((fused.1 - scalar.1).abs() < 1e-5);
        // A clear winner must be the same row.
        let runner_up = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != scalar.0)
            .map(|(_, r)| reference::dot_ref(query, r))
            .fold(f32::NEG_INFINITY, f32::max);
        if (scalar.1 - runner_up).abs() > 1e-3 {
            prop_assert_eq!(fused.0, scalar.0);
        }
        prop_assert_eq!(store.assign_nearest(query), Some(fused));
    }
}

/// The pre-refactor lookup path, reconstructed verbatim: `Vec<Vec<f32>>`
/// rows, per-entry `cosine` (norms recomputed every call), fresh
/// `acc`/`acc_set` vectors per frame. Returns the (hit layer sequence
/// index, predicted class) decision per activated layer walk.
#[allow(clippy::type_complexity)]
fn seed_path_decision(
    rt: &ModelRuntime,
    client: &ClientProfile,
    frame: &coca::data::Frame,
    layers: &[(usize, Vec<usize>, Vec<Vec<f32>>)],
    cfg: &CocaConfig,
    view: &mut ClientFeatureView,
) -> (Option<usize>, Option<usize>) {
    let mut acc: Vec<f32> = vec![0.0; rt.num_classes()];
    let mut acc_set: Vec<bool> = vec![false; rt.num_classes()];
    for (seq_idx, (point, classes, rows)) in layers.iter().enumerate() {
        let v = rt.semantic_vector(frame, client, *point, view);
        let mut best: Option<(usize, f32)> = None;
        let mut second: Option<(usize, f32)> = None;
        for (entry_idx, &class) in classes.iter().enumerate() {
            let c = cosine(&v, &rows[entry_idx]);
            let prev = if acc_set[class] { acc[class] } else { 0.0 };
            let a = c + cfg.alpha * prev;
            acc[class] = a;
            acc_set[class] = true;
            match best {
                Some((_, bv)) if a <= bv => match second {
                    Some((_, sv)) if a <= sv => {}
                    _ => second = Some((class, a)),
                },
                _ => {
                    second = best;
                    best = Some((class, a));
                }
            }
        }
        if let (Some((a_class, a_val)), Some((_, b_val))) = (best, second) {
            if b_val > 1e-3 && (a_val - b_val) / b_val > cfg.theta {
                return (Some(seq_idx), Some(a_class));
            }
        }
    }
    (None, None)
}

/// End-to-end: on a fixed seed, the fused `VectorStore` lookup makes the
/// same hit/miss decision with the same predicted class on every frame as
/// the pre-refactor scalar path.
#[test]
fn fused_lookup_reproduces_seed_path_end_to_end() {
    let classes = 20usize;
    let dataset = DatasetSpec::ucf101().subset(classes);
    let seeds = SeedTree::new(777);
    let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
    let client = ClientProfile::new(0, 0.15, 0.7, &seeds);
    let cfg = CocaConfig::for_model(ModelId::ResNet101);

    // A center cache at spread-out points, in both representations.
    let points = [5usize, 12, 19, 26, 33];
    let mut cache_layers = Vec::new();
    let mut ref_layers: Vec<(usize, Vec<usize>, Vec<Vec<f32>>)> = Vec::new();
    for &p in &points {
        let mut l = CacheLayer::new(p);
        let mut rows = Vec::new();
        for c in 0..classes {
            let v = rt.universe().global_center(p, c).to_vec();
            l.insert(c, v.clone());
            rows.push(v);
        }
        cache_layers.push(l);
        ref_layers.push((p, (0..classes).collect(), rows));
    }
    let cache = LocalCache::from_layers(cache_layers);

    let mut view = ClientFeatureView::new();
    let mut ref_view = ClientFeatureView::new();
    let mut scratch = LookupScratch::new();
    let mut stream = coca::data::StreamGenerator::new(
        coca::data::StreamConfig::new(coca::data::distribution::uniform_weights(classes), 18.0),
        &SeedTree::new(778),
    );
    let mut hits = 0usize;
    for i in 0..400 {
        let f = stream.next_frame();
        let r = infer_with_cache(&rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
        let (ref_hit, ref_class) =
            seed_path_decision(&rt, &client, &f, &ref_layers, &cfg, &mut ref_view);
        assert_eq!(r.hit_seq_idx, ref_hit, "frame {i}: hit decision diverged");
        if let Some(c) = ref_class {
            assert_eq!(r.predicted, c, "frame {i}: predicted class diverged");
            hits += 1;
        }
    }
    assert!(
        hits > 100,
        "the comparison must exercise real hits ({hits})"
    );
}
