//! Property tests pinning the **queue-and-flush upload pipeline** and the
//! **rayon layer-sharded batched merge** to the per-upload baseline:
//!
//! * a CoCa engine run under `MergeMode::QueueAndFlush` regenerates
//!   **byte-identical** records (frame digest, every latency/windowed/
//!   per-client series, the post-run global table) vs the same run under
//!   `MergeMode::PerUpload` — across randomized churn/drift/link
//!   timelines, the committed dynamics records' shape;
//! * `parallel_merge` output is bit-identical at 1, 2 and N rayon
//!   workers, at the table level (`merge_batch_sharded` vs `merge_batch`)
//!   and through a full engine run.
//!
//! The virtual cost model is charged at upload arrival in both modes and
//! the batched pass is sequential-equivalent in FIFO order, so any drift
//! here is a real determinism bug, not tolerance noise.

use coca::core::collect::UpdateTable;
use coca::core::global::{GlobalCacheTable, MergeScratch};
use coca::core::spec::PopularityShift;
use coca::core::MergeMode;
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;
use rand::Rng;

const BASE_CLIENTS: usize = 3;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;

/// A randomized dynamics timeline: churn, drift and a link change — the
/// same event mix the committed churn/drift/scenario records exercise.
fn random_spec(seed: u64, join_at: f64, leave_after: usize, shift_at: u64) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = BASE_CLIENTS;
    sc.seed = seed;
    ScenarioSpec::new(sc, ROUNDS, FRAMES)
        .join(join_at, 1)
        .leave(1, leave_after)
        .popularity_shift(None, shift_at, PopularityShift::Rotate(3))
        .link_change(
            Some(0),
            join_at / 2.0,
            LinkModel {
                one_way_delay: SimDuration::from_millis(9),
                bandwidth_bps: 20.0e6,
            },
        )
}

/// Runs CoCa over `spec` with the given upload pipeline and returns the
/// report plus a canonical JSON rendering of every record series (the
/// byte-identity probe) and the post-run global table JSON.
fn run_coca(spec: &ScenarioSpec, mode: MergeMode, parallel: bool) -> (EngineReport, String) {
    let (scenario, plan) = spec.materialize();
    let coca = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(mode)
        .with_parallel_merge(parallel);
    let mut engine = Engine::new(scenario, EngineConfig::new(coca));
    let report = engine.run_plan(&plan);
    let records = format!(
        "{}|{}|{}|{}|{}",
        serde_json::to_string(&report.latency).unwrap(),
        serde_json::to_string(&report.response_latency).unwrap(),
        serde_json::to_string(&report.windowed).unwrap(),
        serde_json::to_string(&report.per_client).unwrap(),
        serde_json::to_string(engine.server().global()).unwrap(),
    );
    (report, records)
}

fn assert_reports_identical(a: &(EngineReport, String), b: &(EngineReport, String), label: &str) {
    assert_eq!(a.0.frame_digest, b.0.frame_digest, "{label}: digest");
    assert_eq!(a.0.frames, b.0.frames, "{label}: frames");
    assert_eq!(
        a.0.mean_latency_ms.to_bits(),
        b.0.mean_latency_ms.to_bits(),
        "{label}: mean latency"
    );
    assert_eq!(
        a.0.accuracy_pct.to_bits(),
        b.0.accuracy_pct.to_bits(),
        "{label}: accuracy"
    );
    assert_eq!(
        a.0.hit_ratio.to_bits(),
        b.0.hit_ratio.to_bits(),
        "{label}: hit ratio"
    );
    assert_eq!(a.0.end_time, b.0.end_time, "{label}: end time");
    assert_eq!(a.1, b.1, "{label}: serialized record series");
}

proptest! {
    /// Queue-and-flush runs regenerate byte-identical records vs
    /// per-upload under randomized churn/drift/link dynamics.
    #[test]
    fn queue_and_flush_is_byte_identical_to_per_upload(
        seed in 0u64..300,
        join_at in 1_000.0f64..40_000.0,
        leave_after in 1usize..ROUNDS,
        shift_at in 10u64..60,
    ) {
        let spec = random_spec(seed, join_at, leave_after, shift_at);
        let per_upload = run_coca(&spec, MergeMode::PerUpload, false);
        let queued = run_coca(&spec, MergeMode::QueueAndFlush, false);
        assert_reports_identical(&per_upload, &queued, "queue-and-flush vs per-upload");
    }

    /// The sharded merge changes nothing at any worker count, end to end:
    /// per-upload == queue-and-flush+parallel at 1, 2 and N workers.
    #[test]
    fn parallel_merge_is_byte_identical_at_any_width(
        seed in 300u64..450,
        join_at in 1_000.0f64..40_000.0,
    ) {
        let spec = random_spec(seed, join_at, 1, 25);
        let per_upload = run_coca(&spec, MergeMode::PerUpload, false);
        for width in [1usize, 2, rayon::current_num_threads().max(3)] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("shim pool build is infallible");
            let sharded = pool.install(|| run_coca(&spec, MergeMode::QueueAndFlush, true));
            assert_reports_identical(
                &per_upload,
                &sharded,
                &format!("sharded at {width} workers vs per-upload"),
            );
        }
    }

    /// Table-level pin: `merge_batch_sharded` is bit-identical to the
    /// serial `merge_batch` (and hence to sequential merging) at 1, 2 and
    /// N workers, on random upload batches.
    #[test]
    fn sharded_table_merge_matches_serial_at_any_width(
        seed in 0u64..2000,
        clients in 1usize..6,
    ) {
        const CLASSES: usize = 6;
        const LAYERS: usize = 4;
        const DIM: usize = 13;
        let mut rng = SeedTree::new(seed).rng_for("sharded");
        let mut serial = GlobalCacheTable::new(CLASSES, LAYERS);
        for _ in 0..rng.gen_range(0..10) {
            let (c, l) = (rng.gen_range(0..CLASSES), rng.gen_range(0..LAYERS));
            let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            serial.set(c, l, v);
        }
        let prior: Vec<u64> = (0..CLASSES).map(|_| rng.gen_range(0..40)).collect();
        serial.seed_frequency(&prior);

        let uploads: Vec<(UpdateTable, Vec<u64>)> = (0..clients)
            .map(|_| {
                let mut u = UpdateTable::new();
                for _ in 0..rng.gen_range(0..8) {
                    let (c, l) = (rng.gen_range(0..CLASSES), rng.gen_range(0..LAYERS));
                    let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    u.absorb(c, l, &v, 0.95);
                }
                let phi: Vec<u64> = (0..CLASSES).map(|_| rng.gen_range(0..300)).collect();
                (u, phi)
            })
            .collect();
        let batch: Vec<(&UpdateTable, &[u64])> = uploads
            .iter()
            .map(|(u, phi)| (u, phi.as_slice()))
            .collect();

        let mut scratch = MergeScratch::new();
        let mut sharded_tables: Vec<GlobalCacheTable> = Vec::new();
        for width in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("shim pool build is infallible");
            let mut t = serial.clone();
            pool.install(|| t.merge_batch_sharded(&batch, 0.99, &mut scratch));
            sharded_tables.push(t);
        }
        serial.merge_batch(&batch, 0.99, &mut scratch);

        for (t, width) in sharded_tables.iter().zip([1usize, 2, 8]) {
            prop_assert_eq!(serial.frequency(), t.frequency());
            for c in 0..CLASSES {
                for l in 0..LAYERS {
                    match (serial.get(c, l), t.get(c, l)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            for (x, y) in a.iter().zip(b.iter()) {
                                prop_assert!(
                                    x.to_bits() == y.to_bits(),
                                    "cell ({c},{l}) differs at width {width}"
                                );
                            }
                        }
                        _ => prop_assert!(false, "occupancy differs at ({c},{l})"),
                    }
                }
            }
        }
    }
}
