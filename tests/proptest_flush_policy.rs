//! Property tests for `FlushPolicy::RoundAligned`, the fleet-scale upload
//! batching mode (PR 6):
//!
//! * **Table-level pin**: a round-aligned server draining a watermark-full
//!   queue lands the exact per-upload global table — the flush merges the
//!   batch in arrival order, bit for bit, on randomized uploads.
//! * **Engine-level determinism**: a round-aligned run is a pure function
//!   of the spec — identical records run to run and at any rayon width.
//!   (Round-aligned is a *relaxed observation* mode: centroids lag the
//!   per-upload pipeline by at most one round, so it is deterministic but
//!   intentionally NOT byte-identical to `FlushPolicy::EveryBoundary`;
//!   that contract belongs to `proptest_merge_modes.rs`.)

use coca::core::collect::UpdateTable;
use coca::core::proto::UpdateUpload;
use coca::core::spec::PopularityShift;
use coca::core::{CocaServer, MergeMode};
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;
use rand::Rng;

const BASE_CLIENTS: usize = 3;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;

/// The same churn/drift/link mix `proptest_merge_modes.rs` uses, so the
/// round-aligned engine sees joins (watermark up), leaves (watermark
/// down + boundary flush) and mid-run drift.
fn random_spec(seed: u64, join_at: f64, leave_after: usize, shift_at: u64) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = BASE_CLIENTS;
    sc.seed = seed;
    ScenarioSpec::new(sc, ROUNDS, FRAMES)
        .join(join_at, 1)
        .leave(1, leave_after)
        .popularity_shift(None, shift_at, PopularityShift::Rotate(3))
        .link_change(
            Some(0),
            join_at / 2.0,
            LinkModel {
                one_way_delay: SimDuration::from_millis(9),
                bandwidth_bps: 20.0e6,
            },
        )
}

/// Runs CoCa under `QueueAndFlush` + the given flush policy and returns
/// the report plus the canonical serialized record series.
fn run_coca(spec: &ScenarioSpec, policy: FlushPolicy, parallel: bool) -> (EngineReport, String) {
    let (scenario, plan) = spec.materialize();
    let coca = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(MergeMode::QueueAndFlush)
        .with_flush_policy(policy)
        .with_parallel_merge(parallel);
    let mut engine = Engine::new(scenario, EngineConfig::new(coca));
    let report = engine.run_plan(&plan);
    let records = format!(
        "{}|{}|{}|{}|{}",
        serde_json::to_string(&report.latency).unwrap(),
        serde_json::to_string(&report.response_latency).unwrap(),
        serde_json::to_string(&report.windowed).unwrap(),
        serde_json::to_string(&report.per_client).unwrap(),
        serde_json::to_string(engine.server().global()).unwrap(),
    );
    (report, records)
}

fn assert_reports_identical(a: &(EngineReport, String), b: &(EngineReport, String), label: &str) {
    assert_eq!(a.0.frame_digest, b.0.frame_digest, "{label}: digest");
    assert_eq!(a.0.frames, b.0.frames, "{label}: frames");
    assert_eq!(
        a.0.mean_latency_ms.to_bits(),
        b.0.mean_latency_ms.to_bits(),
        "{label}: mean latency"
    );
    assert_eq!(a.0.end_time, b.0.end_time, "{label}: end time");
    assert_eq!(a.1, b.1, "{label}: serialized record series");
}

/// A randomized upload: a few absorbed vectors plus a φ histogram.
fn random_upload(rt: &ModelRuntime, rng: &mut impl Rng, client_id: u64) -> UpdateUpload {
    let mut table = UpdateTable::new();
    for _ in 0..rng.gen_range(1..5) {
        let class = rng.gen_range(0..rt.num_classes());
        let layer = rng.gen_range(0..rt.num_cache_points());
        let dim = rt.feature_dim(layer);
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        table.absorb(class, layer, &v, 0.9);
    }
    let frequency: Vec<u64> = (0..rt.num_classes())
        .map(|_| rng.gen_range(0..40))
        .collect();
    UpdateUpload {
        client_id,
        round: 0,
        table,
        frequency,
        precision: coca::math::Precision::F32,
    }
}

proptest! {
    /// Draining a watermark-full queue reproduces the arrival-order
    /// per-upload merge bit for bit.
    #[test]
    fn watermark_drain_matches_arrival_order_merge(
        seed in 0u64..500,
        fleet in 1usize..8,
    ) {
        let dataset = DatasetSpec::ucf101().subset(12);
        let seeds = SeedTree::new(seed);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_flush_policy(FlushPolicy::RoundAligned);
        let mut aligned = CocaServer::new(&rt, cfg, &seeds);
        aligned.set_flush_watermark(fleet);
        let mut reference =
            CocaServer::new(&rt, CocaConfig::for_model(ModelId::ResNet101), &seeds);

        let mut rng = seeds.rng_for("uploads");
        let ups: Vec<UpdateUpload> = (0..fleet)
            .map(|k| random_upload(&rt, &mut rng, k as u64))
            .collect();
        for (i, up) in ups.iter().enumerate() {
            aligned.handle_upload(up.clone());
            if i + 1 < fleet {
                prop_assert_eq!(aligned.pending_uploads(), i + 1);
            }
        }
        // The fleet-th upload hit the watermark and drained the queue.
        prop_assert_eq!(aligned.pending_uploads(), 0);
        for up in &ups {
            reference.handle_update(up);
        }
        prop_assert_eq!(
            aligned.global().frequency(),
            reference.global().frequency()
        );
        for c in 0..rt.num_classes() {
            for l in 0..rt.num_cache_points() {
                match (aligned.global().get(c, l), reference.global().get(c, l)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        for (x, y) in a.iter().zip(b.iter()) {
                            prop_assert!(
                                x.to_bits() == y.to_bits(),
                                "cell ({},{}) differs", c, l
                            );
                        }
                    }
                    _ => prop_assert!(false, "occupancy differs at ({},{})", c, l),
                }
            }
        }
    }

    /// A round-aligned engine run is deterministic: identical records on
    /// a repeat run and at rayon widths 1, 2 and N.
    #[test]
    fn round_aligned_runs_are_deterministic_at_any_width(
        seed in 500u64..650,
        join_at in 1_000.0f64..40_000.0,
        leave_after in 1usize..ROUNDS,
        shift_at in 10u64..60,
    ) {
        let spec = random_spec(seed, join_at, leave_after, shift_at);
        let first = run_coca(&spec, FlushPolicy::RoundAligned, false);
        for width in [1usize, 2, rayon::current_num_threads().max(3)] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("shim pool build is infallible");
            let sharded = pool.install(|| run_coca(&spec, FlushPolicy::RoundAligned, true));
            assert_reports_identical(
                &first,
                &sharded,
                &format!("round-aligned sharded at {width} workers"),
            );
        }
    }
}

/// A round-aligned run is a pure function of its spec: an exact repeat
/// regenerates every record series byte for byte.
#[test]
fn round_aligned_repeat_runs_are_byte_identical() {
    let spec = random_spec(902, 12_000.0, 1, 20);
    let first = run_coca(&spec, FlushPolicy::RoundAligned, false);
    let again = run_coca(&spec, FlushPolicy::RoundAligned, false);
    assert_reports_identical(&first, &again, "round-aligned repeat run");
}

/// Round-aligned runs finish with an empty queue (the run-end boundary
/// flushes the tail) and still produce a fully populated report.
#[test]
fn round_aligned_flushes_the_tail_at_run_end() {
    let spec = random_spec(901, 20_000.0, 1, 30);
    let (scenario, plan) = spec.materialize();
    let coca = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(MergeMode::QueueAndFlush)
        .with_flush_policy(FlushPolicy::RoundAligned);
    let mut engine = Engine::new(scenario, EngineConfig::new(coca));
    let report = engine.run_plan(&plan);
    assert_eq!(engine.server().pending_uploads(), 0, "tail must flush");
    assert_eq!(report.frames, plan.total_frames());
    assert!(report.mean_latency_ms > 0.0);
}
