//! Persistence-hardening property tests: **random corruption of snapshot
//! and WAL bytes never panics the recovery path** — it decodes, or it
//! errors through `Result`/typed `PersistError`, nothing else. The
//! mutation strategy extends `proptest_wire.rs` to the durability layer:
//!
//! * raw byte corruption of framed snapshots (caught by the CRC) *and*
//!   payload-level corruption re-framed with a **valid** CRC, so the JSON
//!   parser and every schema validator (occupancy-vs-row-count, layer
//!   dims, φ lengths, sorted client registry, i8 per-row scale
//!   invariants) get exercised past the checksum;
//! * corruption, truncation and cross-key swaps of whole storage states
//!   driven through `Durability::load_for_recovery`;
//! * structurally invalid snapshots (unsorted registry, ragged pending
//!   φ, out-of-range layers/classes, wrong version) produce typed errors;
//! * snapshots round-trip **byte-identically** under all three wire
//!   precisions (f32/f16/i8) with a non-empty `RoundAligned` pending
//!   queue aboard.

use coca::core::collect::UpdateTable;
use coca::core::persist::{
    decode_frames, encode_frame, Durability, MemStorage, PersistError, Snapshot, Storage,
    WalRecord, SNAP_CUR, SNAP_PREV, WAL_CUR, WAL_PREV,
};
use coca::core::proto::{CacheRequest, UpdateUpload};
use coca::core::AcaOutput;
use coca::core::{CocaServer, FlushPolicy, MergeMode};
use coca::math::Precision;
use coca::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A server mid-flight under the queue-and-flush pipeline: non-empty
/// pending queue, populated client registry, a few WAL generations on
/// storage. Returns the live snapshot bytes and the detached storage.
fn sample_state(precision: Precision) -> (Vec<u8>, Box<dyn Storage>) {
    let dataset = DatasetSpec::ucf101().subset(10);
    let seeds = SeedTree::new(41);
    let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
    let cfg = CocaConfig::for_model(ModelId::ResNet101)
        .with_merge_mode(MergeMode::QueueAndFlush)
        .with_flush_policy(FlushPolicy::RoundAligned)
        .with_precision(precision);
    let mut server = CocaServer::new(&rt, cfg, &seeds);
    server.attach_durability(Durability::new(Box::new(MemStorage::new()), 2));
    server.set_flush_watermark(8);
    let profile = server.base_hit_profile().to_vec();
    for id in 0..3u64 {
        let _ = server.handle_request(&CacheRequest {
            client_id: id,
            round: 0,
            timestamps: vec![id as u32; rt.num_classes()],
            hit_ratio: profile.clone(),
            budget_bytes: 48 * 1024,
        });
        server.handle_upload(sample_upload(&rt, id));
    }
    assert!(server.pending_uploads() > 0, "queue must be non-empty");
    let snap = server.snapshot().to_bytes();
    let d = server.detach_durability().unwrap();
    (snap, d.into_storage())
}

fn sample_upload(rt: &ModelRuntime, client_id: u64) -> UpdateUpload {
    let layer = 10usize;
    let mut table = UpdateTable::new();
    let dim = rt.feature_dim(layer);
    let mut v = vec![0.0f32; dim];
    v[(client_id as usize + 1) % dim] = 1.0;
    table.absorb(3, layer, &v, 0.0);
    let mut phi = vec![0u64; rt.num_classes()];
    phi[3] = 50 + client_id;
    UpdateUpload {
        client_id,
        round: 0,
        table,
        frequency: phi,
        precision: Precision::F32,
    }
}

/// The f32 sample state, built once — server construction is expensive
/// and every case copies before corrupting.
fn f32_state() -> &'static (Vec<u8>, Box<dyn Storage>) {
    use std::sync::OnceLock;
    static STATE: OnceLock<(Vec<u8>, Box<dyn Storage>)> = OnceLock::new();
    STATE.get_or_init(|| sample_state(Precision::F32))
}

/// Extracts the JSON payload of a single-frame snapshot.
fn frame_payload(bytes: &[u8]) -> Vec<u8> {
    let (payloads, _, _) = decode_frames(bytes, false).unwrap();
    payloads.into_iter().next().unwrap()
}

proptest! {
    /// Raw byte corruption of a framed snapshot never panics — the CRC
    /// (or the schema validators, if the flip lands after a re-frame)
    /// turns it into a typed error or a harmless decode.
    #[test]
    fn mutated_snapshot_bytes_never_panic(seed in 0u64..1500, mutations in 1usize..24) {
        let mut rng = SeedTree::new(seed).rng_for("snap-mutate");
        let (snap, _) = f32_state();
        let mut bytes = snap.clone();
        for _ in 0..mutations {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen();
        }
        let _ = Snapshot::from_bytes(&bytes);
    }

    /// Payload-level corruption **re-framed with a valid CRC**: the JSON
    /// parser and every schema validator past the checksum must error,
    /// not panic — the snapshot-hardening half of the wire mutation
    /// strategy (occupancy bitmaps, layer dims, i8 row scales included).
    #[test]
    fn mutated_snapshot_payloads_never_panic(seed in 0u64..1500, mutations in 1usize..16) {
        let mut rng = SeedTree::new(seed).rng_for("payload-mutate");
        let (snap, _) = f32_state();
        let mut payload = frame_payload(snap);
        for _ in 0..mutations {
            let at = rng.gen_range(0..payload.len());
            payload[at] = rng.gen();
        }
        let _ = Snapshot::from_bytes(&encode_frame(&payload));
    }

    /// Truncating a framed snapshot at any byte never panics, and a cut
    /// anywhere inside the single frame is a typed error (a partial
    /// snapshot must never half-load).
    #[test]
    fn truncated_snapshots_error_cleanly(seed in 0u64..500) {
        let mut rng = SeedTree::new(seed).rng_for("snap-cut");
        let (snap, _) = f32_state();
        let cut = rng.gen_range(0..snap.len());
        prop_assert!(Snapshot::from_bytes(&snap[..cut]).is_err());
    }

    /// Randomly corrupting, truncating or deleting any of the four
    /// storage keys never panics the full recovery cascade — it recovers
    /// from a surviving generation or fails closed with a typed error.
    #[test]
    fn corrupted_stores_never_panic_recovery(
        seed in 0u64..1500,
        strikes in 1usize..6,
    ) {
        let mut rng = SeedTree::new(seed).rng_for("store-mutate");
        let (_, pristine) = f32_state();
        let mut store = MemStorage::new();
        for key in [SNAP_CUR, SNAP_PREV, WAL_CUR, WAL_PREV] {
            if let Some(bytes) = pristine.load(key) {
                store.save(key, &bytes);
            }
        }
        for _ in 0..strikes {
            let key = [SNAP_CUR, SNAP_PREV, WAL_CUR, WAL_PREV][rng.gen_range(0..4usize)];
            let Some(mut bytes) = store.load(key) else { continue };
            match rng.gen_range(0..3) {
                0 if !bytes.is_empty() => {
                    let at = rng.gen_range(0..bytes.len());
                    bytes[at] = rng.gen();
                    store.save(key, &bytes);
                }
                1 => {
                    let keep = rng.gen_range(0..=bytes.len());
                    store.save(key, &bytes[..keep]);
                }
                _ => store.remove(key),
            }
        }
        let mut d = Durability::new(Box::new(store), 4);
        if let Ok((snap, records, _info)) = d.load_for_recovery() {
            // Whatever loads must be internally coherent enough to
            // re-serialize without panicking.
            if let Some(s) = snap {
                let _ = s.to_bytes();
            }
            for r in &records {
                let _ = r.to_frame();
            }
        }
    }

    /// WAL segment truncation recovers exactly the whole-frame prefix:
    /// lenient decoding reports `committed + truncated == cut` and every
    /// committed payload is a valid record.
    #[test]
    fn truncated_wal_recovers_the_whole_frame_prefix(seed in 0u64..800) {
        let mut rng = SeedTree::new(seed).rng_for("wal-cut");
        let (_, store) = f32_state();
        let wal = store
            .load(WAL_CUR)
            .filter(|w| !w.is_empty())
            .or_else(|| store.load(WAL_PREV))
            .unwrap();
        let cut = rng.gen_range(0..=wal.len());
        let (payloads, committed, truncated) = decode_frames(&wal[..cut], true).unwrap();
        prop_assert_eq!(committed + truncated, cut);
        for p in &payloads {
            serde_json::from_str::<WalRecord>(std::str::from_utf8(p).unwrap()).unwrap();
        }
    }
}

/// Structurally invalid snapshots produce **typed** errors, not panics:
/// each constructed violation trips its dedicated validator.
#[test]
fn invalid_snapshots_yield_typed_errors() {
    let (snap, _) = f32_state();
    let valid = Snapshot::from_bytes(snap).unwrap();

    // Wrong version.
    let json = String::from_utf8(frame_payload(snap)).unwrap();
    let bumped = json.replacen("\"version\":1", "\"version\":99", 1);
    assert_ne!(json, bumped, "surgery must hit the version field");
    let err = Snapshot::from_bytes(&encode_frame(bumped.as_bytes())).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("version")),
        "{err}"
    );

    // Client registry not strictly sorted.
    let mut s = valid.clone();
    s.clients.reverse();
    assert!(s.clients.len() > 1);
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("sorted")),
        "{err}"
    );

    // Duplicate client id.
    let mut s = valid.clone();
    let dup = s.clients[0].clone();
    s.clients.insert(0, dup);
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("sorted")),
        "{err}"
    );

    // Ragged pending φ.
    let mut s = valid.clone();
    s.pending[0].frequency.pop();
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("φ")),
        "{err}"
    );

    // Pending upload touching a layer outside the table.
    let mut s = valid.clone();
    let mut table = UpdateTable::new();
    table.absorb(0, 9_999, &[1.0, 0.0], 0.0);
    s.pending[0].table = table;
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("layer")),
        "{err}"
    );

    // Pending upload whose entry dimension contradicts the table's.
    let mut s = valid.clone();
    let mut table = UpdateTable::new();
    table.absorb(0, 10, &[1.0, 0.0], 0.0); // layer 10 is high-dimensional
    s.pending[0].table = table;
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("dim")),
        "{err}"
    );

    // Static allocation indexing outside the table.
    let mut s = valid.clone();
    s.static_alloc = Some(AcaOutput {
        hot_classes: vec![usize::MAX],
        layers: vec![0],
    });
    let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
    assert!(
        matches!(err, PersistError::Decode(ref m) if m.contains("allocation")),
        "{err}"
    );
}

/// Snapshots round-trip byte-identically under every wire precision,
/// with a non-empty round-aligned pending queue aboard — the canonical
/// re-serialization contract the recovery cascade relies on.
#[test]
fn snapshots_round_trip_byte_identically_under_every_precision() {
    for precision in [Precision::F32, Precision::F16, Precision::I8] {
        let (bytes, _) = sample_state(precision);
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.config.precision, precision);
        assert!(
            !decoded.pending.is_empty(),
            "{precision:?}: the pending queue must survive the round trip"
        );
        assert!(!decoded.clients.is_empty());
        assert_eq!(
            decoded.to_bytes(),
            bytes,
            "{precision:?}: re-serialization must be byte-identical"
        );
    }
}
