//! Durability property tests: **crash anywhere, recover byte-identically**.
//!
//! The persistence layer's contract (`coca::core::persist`) is that a
//! server killed at *any* WAL event boundary — cleanly, mid-append (torn
//! final record) or with a corrupted current snapshot — recovers to the
//! exact state the uninterrupted run would have reached, and the resumed
//! run regenerates the same `frame_digest` and record bytes. These tests
//! pin that contract at engine scale:
//!
//! * a full CoCa run with durability attached is observationally
//!   transparent — byte-identical records vs the same run without it,
//!   across randomized churn/drift/link timelines and WAL segment sizes;
//! * a standalone [`CocaServer::recover`] from the run's storage rebuilds
//!   a byte-identical server snapshot;
//! * randomized crash plans (event index × fault × merge mode × rotation
//!   period) leave the finished run indistinguishable from the
//!   uninterrupted one;
//! * a deterministic sweep covers **every** event boundary of one
//!   timeline under all three fault kinds.

use coca::core::persist::{CrashFault, CrashPlan, Durability, MemStorage};
use coca::core::spec::PopularityShift;
use coca::core::{CocaServer, FlushPolicy, MergeMode};
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;

const BASE_CLIENTS: usize = 3;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;

/// The same dynamics mix the committed churn/drift records exercise:
/// one join, one leave, a popularity rotation and a link change.
fn random_spec(seed: u64, join_at: f64, leave_after: usize, shift_at: u64) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = BASE_CLIENTS;
    sc.seed = seed;
    ScenarioSpec::new(sc, ROUNDS, FRAMES)
        .join(join_at, 1)
        .leave(1, leave_after)
        .popularity_shift(None, shift_at, PopularityShift::Rotate(3))
        .link_change(
            Some(0),
            join_at / 2.0,
            LinkModel {
                one_way_delay: SimDuration::from_millis(9),
                bandwidth_bps: 20.0e6,
            },
        )
}

fn coca_config(spec: &ScenarioSpec, mode: MergeMode, policy: FlushPolicy) -> CocaConfig {
    CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(mode)
        .with_flush_policy(policy)
}

/// Canonical JSON rendering of every record series plus the post-run
/// global table — the byte-identity probe the merge-mode tests use.
fn probe(engine: &Engine, report: &EngineReport) -> String {
    format!(
        "{}|{}|{}|{}|{}",
        serde_json::to_string(&report.latency).unwrap(),
        serde_json::to_string(&report.response_latency).unwrap(),
        serde_json::to_string(&report.windowed).unwrap(),
        serde_json::to_string(&report.per_client).unwrap(),
        serde_json::to_string(engine.server().global()).unwrap(),
    )
}

/// Runs CoCa over `spec`; `durability` attaches a WAL with the given
/// rotation period and optional crash plan. Returns the report, the
/// byte-identity probe and the finished engine for state inspection.
fn run_coca(
    spec: &ScenarioSpec,
    cfg: CocaConfig,
    durability: Option<(usize, Option<CrashPlan>)>,
) -> (EngineReport, String, Engine) {
    let (scenario, plan) = spec.materialize();
    let mut engine = Engine::new(scenario, EngineConfig::new(cfg));
    if let Some((rotate_every, crash)) = durability {
        let mut d = Durability::new(Box::new(MemStorage::new()), rotate_every);
        if let Some(plan) = crash {
            d = d.with_crash_plan(plan);
        }
        engine.server_mut().attach_durability(d);
    }
    let report = engine.run_plan(&plan);
    let records = probe(&engine, &report);
    (report, records, engine)
}

fn assert_runs_identical(
    a: &(EngineReport, String, Engine),
    b: &(EngineReport, String, Engine),
    label: &str,
) {
    assert_eq!(a.0.frame_digest, b.0.frame_digest, "{label}: digest");
    assert_eq!(a.0.frames, b.0.frames, "{label}: frames");
    assert_eq!(
        a.0.mean_latency_ms.to_bits(),
        b.0.mean_latency_ms.to_bits(),
        "{label}: mean latency"
    );
    assert_eq!(a.0.end_time, b.0.end_time, "{label}: end time");
    assert_eq!(a.1, b.1, "{label}: serialized record series");
}

proptest! {
    /// Durability is observationally transparent: the logged run's
    /// records are byte-identical to the unlogged run's, at any WAL
    /// rotation period — and a standalone recovery from the run's
    /// storage rebuilds the same server snapshot, byte for byte.
    #[test]
    fn durable_runs_match_plain_runs_and_recover(
        seed in 0u64..200,
        join_at in 1_000.0f64..40_000.0,
        leave_after in 1usize..ROUNDS,
        rotate_every in 1usize..16,
    ) {
        let spec = random_spec(seed, join_at, leave_after, 25);
        let cfg = coca_config(&spec, MergeMode::PerUpload, FlushPolicy::EveryBoundary);
        let plain = run_coca(&spec, cfg, None);
        let mut durable = run_coca(&spec, cfg, Some((rotate_every, None)));
        assert_runs_identical(&plain, &durable, "durable vs plain");

        let live_bytes = durable.2.server().snapshot().to_bytes();
        let d = durable.2.server_mut().detach_durability().unwrap();
        let scenario = durable.2.scenario();
        // The engine resolves the auto cache budget before constructing
        // the server; the snapshot's embedded config is the resolved one.
        let effective = durable.2.server().snapshot().config;
        let (recovered, _info) =
            CocaServer::recover(&scenario.rt, effective, scenario.seeds(), d).unwrap();
        // Standalone recovery must rebuild the live server's state.
        prop_assert_eq!(recovered.snapshot().to_bytes(), live_bytes);
    }

    /// A crash injected at a random WAL event boundary — clean, torn
    /// final record, or corrupted current snapshot — recovers in place
    /// and the finished run is byte-identical to the uninterrupted one,
    /// under both merge pipelines and both flush policies.
    #[test]
    fn crashes_anywhere_leave_records_byte_identical(
        seed in 200u64..400,
        join_at in 1_000.0f64..40_000.0,
        rotate_every in 1usize..8,
        at_pick in 0u64..10_000,
        fault_pick in 0u8..3,
        pipeline_pick in 0u8..3,
    ) {
        let spec = random_spec(seed, join_at, 1, 25);
        let (mode, policy) = match pipeline_pick {
            0 => (MergeMode::PerUpload, FlushPolicy::EveryBoundary),
            1 => (MergeMode::QueueAndFlush, FlushPolicy::EveryBoundary),
            _ => (MergeMode::QueueAndFlush, FlushPolicy::RoundAligned),
        };
        let cfg = coca_config(&spec, mode, policy);
        let mut baseline = run_coca(&spec, cfg, Some((rotate_every, None)));
        let total = baseline
            .2
            .server_mut()
            .detach_durability()
            .unwrap()
            .events_logged();
        prop_assume!(total > 0);

        let fault = match fault_pick {
            0 => CrashFault::Clean,
            1 => CrashFault::Torn { keep: 7 + at_pick as usize % 40 },
            _ => CrashFault::SnapCorrupt { byte: at_pick as usize },
        };
        let plan = CrashPlan { at_event: at_pick % total, fault };
        let mut crashed = run_coca(&spec, cfg, Some((rotate_every, Some(plan))));
        assert_runs_identical(
            &baseline,
            &crashed,
            &format!("crash {plan:?} of {total} events"),
        );
        let d = crashed.2.server_mut().detach_durability().unwrap();
        prop_assert!(!d.crash_pending(), "the injected crash never fired");
    }
}

/// The acceptance sweep: **every** WAL event boundary of one fixed
/// timeline, under all three fault kinds, recovers to a byte-identical
/// finished run — including the torn-final-record and
/// corrupted-snapshot-fallback paths.
#[test]
fn every_event_boundary_recovers_byte_identically() {
    let spec = random_spec(7, 11_000.0, 1, 25);
    let cfg = coca_config(&spec, MergeMode::QueueAndFlush, FlushPolicy::RoundAligned);
    let mut baseline = run_coca(&spec, cfg, Some((3, None)));
    let total = baseline
        .2
        .server_mut()
        .detach_durability()
        .unwrap()
        .events_logged();
    assert!(total > 10, "timeline too small to be a meaningful sweep");

    for at_event in 0..total {
        for fault in [
            CrashFault::Clean,
            CrashFault::Torn { keep: 13 },
            CrashFault::SnapCorrupt { byte: 97 },
        ] {
            let plan = CrashPlan { at_event, fault };
            let mut crashed = run_coca(&spec, cfg, Some((3, Some(plan))));
            assert_runs_identical(
                &baseline,
                &crashed,
                &format!("crash {plan:?} of {total} events"),
            );
            let d = crashed.2.server_mut().detach_durability().unwrap();
            assert!(!d.crash_pending(), "crash {plan:?} never fired");
        }
    }
}
