//! Scenario fuzzer: random [`ScenarioSpec`]s hunting for specs that break
//! engine invariants —
//!
//! * **digest divergence**: a queue-and-flush run (with durability
//!   attached) must be byte-identical to the per-upload run of the same
//!   spec;
//! * **panics**: no valid spec may panic the engine;
//! * **watermark stall**: the pending upload queue must be empty when the
//!   run ends — a stalled flush watermark would leave merges unapplied.
//!
//! A failing spec is **shrunk** — events removed, rounds and fleet
//! reduced while the failure persists — and the minimal spec's JSON is
//! printed in the panic message, ready to be committed under
//! `results/specs/` as a curated regression. `curated_specs_hold_engine_
//! invariants` replays every committed spec (the dynamics records' specs
//! and fuzz finds alike) through the same oracle.

use std::panic::{catch_unwind, AssertUnwindSafe};

use coca::core::persist::{Durability, MemStorage};
use coca::core::spec::PopularityShift;
use coca::core::{FlushPolicy, MergeMode};
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Draws a random spec: 2–4 base clients, 1–2 rounds, 20–45 frames and
/// up to six timeline events mixing churn, drift, link changes and
/// heterogeneous device speeds — including edge placements (joins at
/// t≈0, leaves in round 1, whole-fleet shifts at frame 0).
fn random_spec(rng: &mut SmallRng) -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = rng.gen_range(2..5);
    sc.seed = rng.gen_range(0..1_000_000);
    let rounds = rng.gen_range(1..3usize);
    let frames = rng.gen_range(20..46usize);
    let mut spec = ScenarioSpec::new(sc, rounds, frames);
    let classes = spec.scenario.dataset.num_classes;
    for _ in 0..rng.gen_range(0..7usize) {
        let total = spec.total_clients();
        match rng.gen_range(0..5u8) {
            0 => {
                spec = spec.join(rng.gen_range(0.0..60_000.0), rng.gen_range(1..3));
            }
            1 => {
                spec = spec.leave(rng.gen_range(0..total), rng.gen_range(1..=rounds));
            }
            2 => {
                let client = if rng.gen_bool(0.5) {
                    None
                } else {
                    Some(rng.gen_range(0..total))
                };
                let shift = match rng.gen_range(0..3u8) {
                    0 => PopularityShift::Rotate(rng.gen_range(1..classes)),
                    1 => PopularityShift::Permute(rng.gen()),
                    _ => PopularityShift::Replace(
                        (0..classes).map(|_| rng.gen_range(0.05..1.0)).collect(),
                    ),
                };
                spec = spec.popularity_shift(client, rng.gen_range(0..100), shift);
            }
            3 => {
                let client = if rng.gen_bool(0.5) {
                    None
                } else {
                    Some(rng.gen_range(0..total))
                };
                let link = LinkModel {
                    one_way_delay: SimDuration::from_millis(rng.gen_range(1..40)),
                    bandwidth_bps: rng.gen_range(5.0e6..60.0e6),
                };
                spec = spec.link_change(client, rng.gen_range(0.0..60_000.0), link);
            }
            _ => {
                let client = if rng.gen_bool(0.5) {
                    None
                } else {
                    Some(rng.gen_range(0..total))
                };
                spec = spec.device_speed(client, rng.gen_range(10..60));
            }
        }
    }
    spec
}

fn run_probe(spec: &ScenarioSpec, mode: MergeMode, durable: bool) -> (String, usize) {
    let (scenario, plan) = spec.materialize();
    let cfg = CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(mode)
        .with_flush_policy(FlushPolicy::EveryBoundary);
    let mut engine = Engine::new(scenario, EngineConfig::new(cfg));
    if durable {
        engine
            .server_mut()
            .attach_durability(Durability::new(Box::new(MemStorage::new()), 4));
    }
    let report = engine.run_plan(&plan);
    let probe = format!(
        "{}|{}|{}|{}",
        report.frame_digest,
        serde_json::to_string(&report.latency).unwrap(),
        serde_json::to_string(&report.per_client).unwrap(),
        serde_json::to_string(engine.server().global()).unwrap(),
    );
    (probe, engine.server().pending_uploads())
}

/// The invariant oracle: `None` when the spec holds, `Some(reason)` when
/// it breaks the engine.
fn violates(spec: &ScenarioSpec) -> Option<String> {
    if spec.validate().is_err() {
        return None; // rejected specs are out of the oracle's domain
    }
    let spec2 = spec.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let (per_upload, stalled_a) = run_probe(&spec2, MergeMode::PerUpload, false);
        let (queued, stalled_b) = run_probe(&spec2, MergeMode::QueueAndFlush, true);
        if stalled_a != 0 || stalled_b != 0 {
            return Some(format!(
                "watermark stall: {stalled_a}/{stalled_b} uploads still pending at run end"
            ));
        }
        if per_upload != queued {
            return Some("digest divergence: queue-and-flush != per-upload".to_string());
        }
        None
    }));
    match outcome {
        Ok(violation) => violation,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            Some(format!("engine panicked: {msg}"))
        }
    }
}

/// Greedy shrink: drop timeline events, then rounds, then base clients,
/// as long as the violation persists.
fn shrink(mut spec: ScenarioSpec) -> ScenarioSpec {
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < spec.timeline.len() {
            let mut cand = spec.clone();
            cand.timeline.remove(i);
            if violates(&cand).is_some() {
                spec = cand;
                improved = true;
            } else {
                i += 1;
            }
        }
        if spec.rounds > 1 {
            let mut cand = spec.clone();
            cand.rounds -= 1;
            if violates(&cand).is_some() {
                spec = cand;
                improved = true;
            }
        }
        if spec.scenario.num_clients > 1 {
            let mut cand = spec.clone();
            cand.scenario.num_clients -= 1;
            if cand.validate().is_ok() && violates(&cand).is_some() {
                spec = cand;
                improved = true;
            }
        }
        if !improved {
            return spec;
        }
    }
}

proptest! {
    /// The fuzzer proper: random specs through the oracle. A find is
    /// shrunk and reported as minimal JSON for curation.
    #[test]
    fn random_specs_hold_engine_invariants(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = random_spec(&mut rng);
        prop_assume!(spec.validate().is_ok());
        if let Some(reason) = violates(&spec) {
            let minimal = shrink(spec);
            let reason = violates(&minimal).unwrap_or(reason);
            panic!(
                "fuzzed spec breaks engine invariants ({reason}); minimal spec — \
                 commit under results/specs/:\n{}",
                minimal.to_json()
            );
        }
    }
}

/// Curation helper (run with `--ignored --nocapture`): prints the JSON
/// of a few generator draws so interesting ones can be committed under
/// `results/specs/` — `fuzz_join_drift.json` is seed 3,
/// `fuzz_leave_drift.json` is seed 42.
#[test]
#[ignore]
fn print_generated_spec() {
    for seed in [3u64, 11, 42, 97] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let spec = random_spec(&mut rng);
        if spec.validate().is_ok() {
            println!("=== seed {seed} ===\n{}", spec.to_json());
        }
    }
}

/// Every curated spec — the committed dynamics records' specs and the
/// fuzzer's regression finds — replays cleanly through the same oracle.
#[test]
fn curated_specs_hold_engine_invariants() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/results/specs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("results/specs must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let spec =
            ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Some(reason) = violates(&spec) {
            panic!(
                "curated spec {} violates invariants: {reason}",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the curated spec corpus, found {checked}"
    );
}
