//! Property-based tests over the dynamic-scenario machinery: randomized
//! timelines must preserve the cross-method fairness digest, never
//! deadlock the server FIFO, and survive a JSON round trip bit-for-bit.

use coca::baselines::{run_edge_only_plan, run_foggycache_plan, FoggyCacheConfig};
use coca::core::spec::PopularityShift;
use coca::core::{DrivePlan, ScenarioSpec};
use coca::net::LinkModel;
use coca::prelude::*;
use proptest::prelude::*;

const BASE_CLIENTS: usize = 2;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;

fn base_scenario(seed: u64) -> ScenarioConfig {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = BASE_CLIENTS;
    sc.seed = seed;
    sc
}

/// A randomized timeline touching every event kind.
#[allow(clippy::too_many_arguments)]
fn random_spec(
    seed: u64,
    join_at: f64,
    join_rounds: usize,
    leave_client: usize,
    leave_after: usize,
    shift_at: u64,
    rot: usize,
    link_at: f64,
    delay_ms: u64,
) -> ScenarioSpec {
    ScenarioSpec::new(base_scenario(seed), ROUNDS, FRAMES)
        .join(join_at, join_rounds)
        .leave(leave_client, leave_after)
        .popularity_shift(None, shift_at, PopularityShift::Rotate(rot))
        .popularity_shift(Some(0), shift_at / 2, PopularityShift::Permute(seed))
        .link_change(
            Some(leave_client),
            link_at,
            LinkModel {
                one_way_delay: SimDuration::from_millis(delay_ms),
                bandwidth_bps: 5.0e6,
            },
        )
}

fn expected_frames(plan: &DrivePlan) -> u64 {
    plan.total_frames()
}

proptest! {
    /// The frame digest is byte-identical across methods under any
    /// dynamics timeline, and every method consumes exactly the planned
    /// frame count.
    #[test]
    fn digest_is_method_invariant_under_random_dynamics(
        seed in 0u64..500,
        join_at in 0.0f64..40_000.0,
        join_rounds in 1usize..3,
        leave_client in 0usize..BASE_CLIENTS,
        leave_after in 1usize..3,
        shift_at in 0u64..120,
        rot in 1usize..9,
        link_at in 0.0f64..30_000.0,
        delay_ms in 1u64..40,
    ) {
        let spec = random_spec(
            seed, join_at, join_rounds, leave_client, leave_after,
            shift_at, rot, link_at, delay_ms,
        );
        prop_assert!(spec.validate().is_ok());

        let (s1, p1) = spec.materialize();
        let edge = run_edge_only_plan(&s1, &p1);
        let (s2, p2) = spec.materialize();
        let foggy = run_foggycache_plan(&s2, &FoggyCacheConfig::default(), &p2);
        let (s3, p3) = spec.materialize();
        let mut coca_cfg = CocaConfig::for_model(ModelId::ResNet101);
        coca_cfg.round_frames = FRAMES;
        let mut engine = Engine::new(s3, EngineConfig::new(coca_cfg));
        let coca = engine.run_plan(&p3);

        prop_assert_ne!(edge.frame_digest, 0);
        prop_assert_eq!(edge.frame_digest, foggy.frame_digest);
        prop_assert_eq!(edge.frame_digest, coca.frame_digest);
        let expect = expected_frames(&p1);
        prop_assert_eq!(edge.frames, expect);
        prop_assert_eq!(foggy.frames, expect);
        prop_assert_eq!(coca.frames, expect);
    }

    /// A `Leave` at any point never deadlocks the engine: the run
    /// terminates (the event queue drains, in-flight request/reply pairs
    /// included) and every member consumed exactly its planned rounds.
    /// FoggyCache is the stressor — it is the method with mid-frame
    /// request/reply pairs in flight when a round boundary arrives.
    #[test]
    fn leave_at_any_point_drains_without_deadlock(
        seed in 0u64..500,
        leave_a in 1usize..4,
        leave_b in 1usize..4,
        join_at in 0.0f64..60_000.0,
        join_rounds in 1usize..4,
    ) {
        let mut sc = base_scenario(seed);
        sc.num_clients = 3;
        let spec = ScenarioSpec::new(sc, 3, 30)
            .leave(0, leave_a)
            .leave(2, leave_b)
            .join(join_at, join_rounds);
        let (scenario, plan) = spec.materialize();
        let report = run_foggycache_plan(&scenario, &FoggyCacheConfig::default(), &plan);
        // Termination itself is the deadlock-freedom proof; the counts
        // prove the drain was exact (no frame lost, none double-run).
        prop_assert_eq!(report.frames, plan.total_frames());
        for (k, member) in plan.members.iter().enumerate() {
            prop_assert_eq!(
                report.per_client[k].accuracy.total(),
                (member.rounds * plan.frames_per_round) as u64
            );
        }
    }

    /// JSON round trip is lossless: the reloaded spec drives a run with
    /// an identical frame digest and end time.
    #[test]
    fn json_round_trip_preserves_the_run(
        seed in 0u64..500,
        join_at in 0.0f64..40_000.0,
        leave_after in 1usize..3,
        shift_at in 0u64..100,
        rot in 1usize..7,
    ) {
        let spec = ScenarioSpec::new(base_scenario(seed), 2, 30)
            .join(join_at, 1)
            .leave(1, leave_after)
            .popularity_shift(None, shift_at, PopularityShift::Rotate(rot));
        let reloaded = ScenarioSpec::from_json(&spec.to_json())
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (s1, p1) = spec.materialize();
        let (s2, p2) = reloaded.materialize();
        let a = run_edge_only_plan(&s1, &p1);
        let b = run_edge_only_plan(&s2, &p2);
        prop_assert_eq!(a.frame_digest, b.frame_digest);
        prop_assert_eq!(a.frames, b.frames);
        prop_assert_eq!(a.mean_latency_ms.to_bits(), b.mean_latency_ms.to_bits());
    }
}
