//! Class-popularity constructions and the samplers behind them.
//!
//! * [`uniform_weights`] — the paper's "uniform group" (Table III).
//! * [`long_tail_weights`] — exponential-decay sample counts with imbalance
//!   ratio `ρ = max_i dᵢ / min_j dⱼ` (paper §VI.A: ρ = 90 makes the top
//!   20 % of ImageNet-100 classes hold ≈ 60 % of samples).
//! * [`dirichlet`] / [`gamma`] — Dirichlet sampling via Marsaglia–Tsang
//!   Gamma, used by the non-IID client partitioner.

use coca_math::vector::standard_normal;
use rand::Rng;

/// Uniform popularity over `n` classes.
pub fn uniform_weights(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform_weights: n must be positive");
    vec![1.0 / n as f64; n]
}

/// Long-tail popularity over `n` classes with imbalance ratio `rho ≥ 1`:
/// class `i` receives weight ∝ `rho^(-i/(n-1))`, so weight(0)/weight(n−1)
/// = `rho`, matching the paper's exponential-decay construction.
///
/// Weights are returned normalized (summing to 1) in class order — class 0
/// is the most frequent.
pub fn long_tail_weights(n: usize, rho: f64) -> Vec<f64> {
    assert!(n > 0, "long_tail_weights: n must be positive");
    assert!(rho >= 1.0, "imbalance ratio must be ≥ 1, got {rho}");
    if n == 1 {
        return vec![1.0];
    }
    let mut w: Vec<f64> = (0..n)
        .map(|i| rho.powf(-(i as f64) / (n as f64 - 1.0)))
        .collect();
    let sum: f64 = w.iter().sum();
    for x in &mut w {
        *x /= sum;
    }
    w
}

/// One Gamma(shape, 1) sample via Marsaglia–Tsang (2000), with the
/// `shape < 1` boosting transform.
///
/// # Panics
/// Panics if `shape` is not positive and finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "gamma: bad shape {shape}");
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) · U^(1/a)
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng) as f64;
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// One Dirichlet sample with concentration vector `alpha`.
///
/// Returns a probability vector of the same length. Degenerate draws where
/// every Gamma component underflows fall back to the normalized `alpha`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet: empty alpha");
    let mut draws: Vec<f64> = alpha.iter().map(|&a| gamma(rng, a)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        let asum: f64 = alpha.iter().sum();
        return alpha.iter().map(|&a| a / asum).collect();
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_sums_to_one() {
        let w = uniform_weights(50);
        assert_eq!(w.len(), 50);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.02).abs() < 1e-12));
    }

    #[test]
    fn long_tail_achieves_requested_ratio() {
        let w = long_tail_weights(100, 90.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((w[0] / w[99] - 90.0).abs() < 1e-6);
        // Monotone decreasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn long_tail_rho90_top20pct_holds_about_60pct() {
        // The paper's calibration: ρ = 90 on 100 classes ⇒ top 20 classes
        // hold ≈ 60 % of the mass.
        let w = long_tail_weights(100, 90.0);
        let top20: f64 = w[..20].iter().sum();
        assert!((0.50..0.70).contains(&top20), "top-20 mass {top20}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = SmallRng::seed_from_u64(11);
        for &shape in &[0.3f64, 1.0, 4.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_is_probability_vector() {
        let mut rng = SmallRng::seed_from_u64(12);
        let alpha = vec![0.5; 20];
        for _ in 0..100 {
            let d = dirichlet(&mut rng, &alpha);
            assert_eq!(d.len(), 20);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn small_alpha_is_more_concentrated() {
        // Smaller concentration ⇒ a single draw puts more mass on few
        // classes. Compare the mean max component.
        let mut rng = SmallRng::seed_from_u64(13);
        let mean_max = |alpha: f64, rng: &mut SmallRng| -> f64 {
            let a = vec![alpha; 10];
            (0..200)
                .map(|_| dirichlet(rng, &a).into_iter().fold(f64::MIN, f64::max))
                .sum::<f64>()
                / 200.0
        };
        let skewed = mean_max(0.1, &mut rng);
        let flat = mean_max(10.0, &mut rng);
        assert!(skewed > flat + 0.2, "skewed {skewed}, flat {flat}");
    }
}
