//! Temporally local frame streams.
//!
//! The paper's test streams are batched so that consecutive samples share a
//! class ("to simulate temporal locality", §VI.A) — exactly the property
//! that makes inference caching worthwhile. The generator emits *runs* of
//! same-class frames with:
//!
//! * geometric run lengths (mean = the dataset's locality strength),
//! * a per-run difficulty level drawn from a bimodal mixture (streams are
//!   dominated by easy repeated content plus a hard tail — scene changes,
//!   unusual views), and
//! * intra-run correlation seeds, so the feature generator can make frames
//!   of one run genuinely resemble each other.

use rand::Rng;
use serde::{Deserialize, Serialize};

use coca_sim::SeedTree;

/// One simulated stream frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index within this client's stream.
    pub seq: u64,
    /// Ground-truth class of the frame.
    pub class: usize,
    /// Position inside the current same-class run (0 = run start).
    pub run_pos: u32,
    /// Feature-noise scale for this frame (1.0 = nominal difficulty).
    pub difficulty: f32,
    /// Base difficulty of the whole run. Class ambiguity is a property of
    /// the *content* (the same hard-to-recognize object persists across a
    /// video segment), so the feature generator derives its confusion
    /// mixing from this run-level value rather than the per-frame one.
    pub run_difficulty: f32,
    /// Seed for per-frame noise in the feature generator.
    pub frame_seed: u64,
    /// Seed shared by all frames of the run (correlated noise component).
    pub run_seed: u64,
}

/// Difficulty mixture parameters.
///
/// Defaults reproduce the bimodal profile of video streams: a large easy
/// mode (near-duplicate frames), a medium mode, and a hard tail. This
/// bimodality is what yields the paper's Fig. 1(b) U-shaped per-layer hit
/// profile — easy frames exit at shallow cache layers, hard frames only at
/// deep ones.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DifficultyModel {
    /// Probability of an easy run.
    pub easy_prob: f64,
    /// Probability of a hard run (medium = remainder).
    pub hard_prob: f64,
    /// Difficulty range for easy runs.
    pub easy: (f32, f32),
    /// Difficulty range for medium runs.
    pub medium: (f32, f32),
    /// Difficulty range for hard runs.
    pub hard: (f32, f32),
    /// Multiplier applied to the first frame of a run (scene change).
    pub run_start_factor: f32,
    /// Multiplier applied to subsequent frames (near-duplicates).
    pub run_follow_factor: f32,
}

impl Default for DifficultyModel {
    fn default() -> Self {
        Self {
            easy_prob: 0.42,
            hard_prob: 0.20,
            easy: (0.40, 0.70),
            medium: (0.90, 1.30),
            hard: (1.60, 2.40),
            run_start_factor: 1.35,
            run_follow_factor: 0.72,
        }
    }
}

/// One step of a piecewise popularity schedule: from the frame with
/// sequence number `from_seq` onward, the stream samples classes from
/// `class_weights` instead of the previous phase's weights.
///
/// Phases are keyed in **frame-sequence space**, not virtual time, on
/// purpose: two methods driven over the same scenario consume each
/// client's stream at different virtual-time rates, and the cross-method
/// fairness invariant (byte-identical frame streams, proven by the frame
/// digest) must survive popularity drift. A phase boundary therefore
/// applies when the client's own stream crosses `from_seq`, wherever that
/// falls in virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopularityPhase {
    /// First frame sequence number governed by this phase.
    pub from_seq: u64,
    /// The phase's class-popularity distribution (same length as the
    /// stream's base weights; must have positive mass).
    pub class_weights: Vec<f64>,
}

/// Configuration of one client's stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Class-popularity distribution of this client (must sum to 1).
    pub class_weights: Vec<f64>,
    /// Mean same-class run length (≥ 1).
    pub mean_run_length: f64,
    /// Difficulty mixture.
    pub difficulty: DifficultyModel,
    /// If true, a new run never repeats the previous run's class (when more
    /// than one class has positive weight).
    pub forbid_immediate_repeat: bool,
    /// Probability that a new run's class recurs from the recent-class
    /// pool instead of the base distribution. Real stream data revisits
    /// the same handful of classes for minutes at a time (the same scene
    /// persists); this is the second level of the paper's temporal
    /// locality, on top of same-class frame runs.
    pub recurrence_prob: f64,
    /// Size of the recent-class pool.
    pub recurrence_window: usize,
    /// Piecewise popularity schedule (sorted by `from_seq`; empty = the
    /// base `class_weights` hold for the whole stream). A phase takes
    /// effect at the first run boundary at or after its `from_seq` — runs
    /// never change class mid-flight, matching how a scene change (not a
    /// popularity shift) ends a run.
    pub schedule: Vec<PopularityPhase>,
}

impl StreamConfig {
    /// A stream over `class_weights` with the given mean run length and
    /// default difficulty mixture.
    pub fn new(class_weights: Vec<f64>, mean_run_length: f64) -> Self {
        assert!(
            !class_weights.is_empty(),
            "StreamConfig: empty class weights"
        );
        assert!(mean_run_length >= 1.0, "mean run length must be ≥ 1");
        Self {
            class_weights,
            mean_run_length,
            difficulty: DifficultyModel::default(),
            forbid_immediate_repeat: true,
            recurrence_prob: 0.80,
            recurrence_window: 10,
            schedule: Vec::new(),
        }
    }

    /// Builder: attaches a piecewise popularity schedule. Phases may be
    /// given in any order; they are sorted by `from_seq` (stable, so a
    /// later-listed phase wins a `from_seq` tie).
    ///
    /// # Panics
    /// Panics if any phase's weight vector length differs from the base
    /// weights or has non-positive mass.
    pub fn with_schedule(mut self, mut schedule: Vec<PopularityPhase>) -> Self {
        for phase in &schedule {
            assert_eq!(
                phase.class_weights.len(),
                self.class_weights.len(),
                "popularity phase class count mismatch"
            );
            assert!(
                phase.class_weights.iter().sum::<f64>() > 0.0,
                "popularity phase needs positive mass"
            );
        }
        schedule.sort_by_key(|p| p.from_seq);
        self.schedule = schedule;
        self
    }
}

/// Normalized cumulative distribution over `weights`.
fn build_cdf(weights: &[f64]) -> Vec<f64> {
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "class weights must have positive mass");
    let mut acc = 0.0;
    weights
        .iter()
        .map(|&w| {
            acc += w / sum;
            acc
        })
        .collect()
}

/// Infinite generator of temporally local frames.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    cfg: StreamConfig,
    rng: rand::rngs::SmallRng,
    /// Cumulative distribution over classes for O(log n) sampling.
    cdf: Vec<f64>,
    /// Next phase of `cfg.schedule` to apply (all earlier phases applied).
    phase_idx: usize,
    seq: u64,
    // Current-run state.
    run_class: usize,
    run_remaining: u32,
    run_pos: u32,
    run_seed: u64,
    run_difficulty: f32,
    /// Recently visited classes (most recent last).
    recent: Vec<usize>,
}

impl StreamGenerator {
    /// Builds a generator; `seeds` should be a client-specific node.
    pub fn new(cfg: StreamConfig, seeds: &SeedTree) -> Self {
        let sum: f64 = cfg.class_weights.iter().sum();
        assert!(sum > 0.0, "class weights must have positive mass");
        let cdf = build_cdf(&cfg.class_weights);
        let rng = seeds.rng_for("stream");
        let mut gen = Self {
            cfg,
            rng,
            cdf,
            phase_idx: 0,
            seq: 0,
            run_class: usize::MAX,
            run_remaining: 0,
            run_pos: 0,
            run_seed: 0,
            run_difficulty: 1.0,
            recent: Vec::new(),
        };
        gen.start_run();
        gen
    }

    /// Applies every schedule phase whose `from_seq` has been reached.
    /// Consumes no randomness, so a schedule never perturbs the RNG stream
    /// of the frames it does not affect.
    fn advance_phases(&mut self) {
        while let Some(phase) = self.cfg.schedule.get(self.phase_idx) {
            if self.seq < phase.from_seq {
                break;
            }
            self.cfg.class_weights = phase.class_weights.clone();
            self.cdf = build_cdf(&self.cfg.class_weights);
            self.phase_idx += 1;
        }
    }

    fn sample_class(&mut self) -> usize {
        let positive = self.cfg.class_weights.iter().filter(|&&w| w > 0.0).count();
        // Second-level locality: revisit a recently seen class. Classes a
        // popularity phase zeroed out drop from the pool — the old scene
        // does not linger once its content is gone.
        let candidates: Vec<usize> = self
            .recent
            .iter()
            .copied()
            .filter(|&c| self.cfg.class_weights[c] > 0.0)
            .filter(|&c| !(self.cfg.forbid_immediate_repeat && positive > 1 && c == self.run_class))
            .collect();
        if !candidates.is_empty() && self.rng.gen_range(0.0..1.0) < self.cfg.recurrence_prob {
            return candidates[self.rng.gen_range(0..candidates.len())];
        }
        loop {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
            if self.cfg.forbid_immediate_repeat && positive > 1 && idx == self.run_class {
                continue;
            }
            if self.cfg.class_weights[idx] > 0.0 {
                return idx;
            }
        }
    }

    fn note_recent(&mut self, class: usize) {
        self.recent.retain(|&c| c != class);
        self.recent.push(class);
        let window = self.cfg.recurrence_window.max(1);
        if self.recent.len() > window {
            self.recent.remove(0);
        }
    }

    fn start_run(&mut self) {
        self.advance_phases();
        self.run_class = self.sample_class();
        self.note_recent(self.run_class);
        // Geometric length with mean L: success probability 1/L, min 1.
        let p = 1.0 / self.cfg.mean_run_length;
        let mut len = 1u32;
        while self.rng.gen_range(0.0..1.0) > p && len < 10_000 {
            len += 1;
        }
        self.run_remaining = len;
        self.run_pos = 0;
        self.run_seed = self.rng.gen();
        let d = &self.cfg.difficulty;
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        let (lo, hi) = if roll < d.easy_prob {
            d.easy
        } else if roll < d.easy_prob + d.hard_prob {
            d.hard
        } else {
            d.medium
        };
        self.run_difficulty = self.rng.gen_range(lo..hi);
    }

    /// Emits the next frame.
    pub fn next_frame(&mut self) -> Frame {
        if self.run_remaining == 0 {
            self.start_run();
        }
        let d = &self.cfg.difficulty;
        let factor = if self.run_pos == 0 {
            d.run_start_factor
        } else {
            d.run_follow_factor
        };
        let jitter: f32 = self.rng.gen_range(0.9..1.1);
        let frame = Frame {
            seq: self.seq,
            class: self.run_class,
            run_pos: self.run_pos,
            difficulty: (self.run_difficulty * factor * jitter).max(0.05),
            run_difficulty: self.run_difficulty,
            frame_seed: self.rng.gen(),
            run_seed: self.run_seed,
        };
        self.seq += 1;
        self.run_pos += 1;
        self.run_remaining -= 1;
        frame
    }

    /// Emits `n` frames into a vector.
    pub fn take(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }

    /// The stream's class-weight vector.
    pub fn class_weights(&self) -> &[f64] {
        &self.cfg.class_weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{long_tail_weights, uniform_weights};

    fn gen(weights: Vec<f64>, run: f64, seed: u64) -> StreamGenerator {
        StreamGenerator::new(StreamConfig::new(weights, run), &SeedTree::new(seed))
    }

    #[test]
    fn frames_follow_runs() {
        let mut g = gen(uniform_weights(10), 8.0, 1);
        let frames = g.take(1000);
        // Run positions restart at 0 and increment within a run.
        let mut prev: Option<Frame> = None;
        for f in &frames {
            if let Some(p) = prev {
                if f.run_pos > 0 {
                    assert_eq!(f.class, p.class, "class changed mid-run");
                    assert_eq!(f.run_pos, p.run_pos + 1);
                    assert_eq!(f.run_seed, p.run_seed);
                } else {
                    assert_ne!(f.class, p.class, "immediate repeat forbidden");
                }
            }
            prev = Some(*f);
        }
    }

    #[test]
    fn mean_run_length_is_close_to_requested() {
        let mut g = gen(uniform_weights(20), 12.0, 2);
        let frames = g.take(50_000);
        let runs = frames.iter().filter(|f| f.run_pos == 0).count();
        let mean = frames.len() as f64 / runs as f64;
        assert!((mean - 12.0).abs() < 1.5, "mean run length {mean}");
    }

    #[test]
    fn empirical_class_frequencies_match_weights() {
        let w = long_tail_weights(10, 20.0);
        let mut g = gen(w.clone(), 1.0, 3);
        // Run length 1 with forbid_immediate_repeat or recurrence biases
        // the marginal; disable both for this statistical check.
        g.cfg.forbid_immediate_repeat = false;
        g.cfg.recurrence_prob = 0.0;
        let frames = g.take(100_000);
        let mut counts = [0usize; 10];
        for f in &frames {
            counts[f.class] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / frames.len() as f64;
            assert!(
                (emp - w[i]).abs() < 0.01,
                "class {i}: emp {emp} vs {}",
                w[i]
            );
        }
    }

    #[test]
    fn run_start_is_harder_than_followers() {
        let mut g = gen(uniform_weights(5), 10.0, 4);
        let frames = g.take(20_000);
        let mean = |pred: &dyn Fn(&Frame) -> bool| -> f64 {
            let xs: Vec<f64> = frames
                .iter()
                .filter(|f| pred(f))
                .map(|f| f.difficulty as f64)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let start = mean(&|f: &Frame| f.run_pos == 0);
        let follow = mean(&|f: &Frame| f.run_pos > 0);
        assert!(start > follow * 1.3, "start {start} follow {follow}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(uniform_weights(7), 5.0, 9).take(100);
        let b = gen(uniform_weights(7), 5.0, 9).take(100);
        assert_eq!(a, b);
        let c = gen(uniform_weights(7), 5.0, 10).take(100);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_weight_classes_never_appear() {
        let mut w = uniform_weights(6);
        w[2] = 0.0;
        w[4] = 0.0;
        let sum: f64 = w.iter().sum();
        for x in &mut w {
            *x /= sum;
        }
        let mut g = gen(w, 3.0, 5);
        for f in g.take(5000) {
            assert!(f.class != 2 && f.class != 4);
        }
    }

    #[test]
    fn single_class_stream_repeats() {
        let mut g = gen(vec![1.0], 4.0, 6);
        for f in g.take(100) {
            assert_eq!(f.class, 0);
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_no_schedule() {
        let a = gen(uniform_weights(8), 6.0, 11).take(500);
        let cfg = StreamConfig::new(uniform_weights(8), 6.0).with_schedule(Vec::new());
        let b = StreamGenerator::new(cfg, &SeedTree::new(11)).take(500);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_shifts_the_sampled_classes() {
        // Phase 1: only classes 0..4. Phase 2 (from frame 1000): only 4..8.
        let mut head = vec![0.0; 8];
        for w in head.iter_mut().take(4) {
            *w = 0.25;
        }
        let mut tail = vec![0.0; 8];
        for w in tail.iter_mut().skip(4) {
            *w = 0.25;
        }
        let cfg = StreamConfig::new(head, 5.0).with_schedule(vec![PopularityPhase {
            from_seq: 1000,
            class_weights: tail,
        }]);
        let frames = StreamGenerator::new(cfg, &SeedTree::new(12)).take(2000);
        for f in &frames[..1000] {
            assert!(f.class < 4, "frame {} class {}", f.seq, f.class);
        }
        // The boundary lands mid-run: the shift applies at the next run
        // start, so allow one trailing old-phase run.
        let first_new = frames[1000..]
            .iter()
            .position(|f| f.class >= 4)
            .expect("new phase classes appear");
        assert!(
            first_new < 64,
            "new phase did not take effect near the boundary"
        );
        for f in &frames[1000 + first_new..] {
            if f.run_pos == 0 || f.class >= 4 {
                assert!(f.class >= 4, "frame {} class {}", f.seq, f.class);
            }
        }
    }

    #[test]
    fn schedule_prefix_is_identical_to_unscheduled_stream() {
        // Frames strictly before the first phase boundary must be
        // byte-identical with and without the schedule: phase application
        // consumes no randomness.
        let base = uniform_weights(10);
        let plain = gen(base.clone(), 4.0, 13).take(300);
        let cfg = StreamConfig::new(base, 4.0).with_schedule(vec![PopularityPhase {
            from_seq: 300,
            class_weights: uniform_weights(10),
        }]);
        let scheduled = StreamGenerator::new(cfg, &SeedTree::new(13)).take(300);
        assert_eq!(plain, scheduled);
    }

    #[test]
    fn phase_zero_applies_from_the_first_frame() {
        let mut only7 = vec![0.0; 8];
        only7[7] = 1.0;
        let cfg = StreamConfig::new(uniform_weights(8), 4.0).with_schedule(vec![PopularityPhase {
            from_seq: 0,
            class_weights: only7,
        }]);
        let frames = StreamGenerator::new(cfg, &SeedTree::new(14)).take(100);
        assert!(frames.iter().all(|f| f.class == 7));
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn schedule_rejects_wrong_class_count() {
        let _ = StreamConfig::new(uniform_weights(8), 4.0).with_schedule(vec![PopularityPhase {
            from_seq: 0,
            class_weights: uniform_weights(5),
        }]);
    }
}
