//! Dataset specifications.
//!
//! A [`DatasetSpec`] carries everything the rest of the system needs to
//! know about a dataset: its class count, how expensive its inputs are
//! relative to the UCF101 anchor (the paper's ResNet101 latency differs
//! between UCF101 — 40.58 ms — and ImageNet-100 — 44.87 ms — purely from
//! input scale), and how strong its temporal locality is (video streams
//! have long same-class runs; image batches are shorter; audio clips
//! shorter still).

use serde::{Deserialize, Serialize};

/// Identifier for the paper's three evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// UCF101 action-recognition video dataset (101 classes).
    Ucf101,
    /// ImageNet-100 image-classification subset (100 classes).
    ImageNet100,
    /// ESC-50 environmental-sound classification (50 classes).
    Esc50,
}

impl DatasetId {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Ucf101 => "ucf101",
            DatasetId::ImageNet100 => "imagenet-100",
            DatasetId::Esc50 => "esc-50",
        }
    }
}

/// A dataset as seen by the simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this is (or derives from, for subsets).
    pub id: DatasetId,
    /// Display name, e.g. `"ucf101-50"` for a 50-class subset.
    pub name: String,
    /// Number of classes in (this subset of) the dataset.
    pub num_classes: usize,
    /// Multiplier on model block latencies relative to the UCF101 anchor
    /// (captures input-resolution differences).
    pub input_cost_factor: f64,
    /// Mean length of a same-class run in the frame stream (temporal
    /// locality strength; the paper batches same-class samples).
    pub mean_run_length: f64,
    /// Baseline full-model accuracy anchor for this dataset on the paper's
    /// reference model (ResNet101): used to calibrate feature noise.
    pub reference_accuracy: f64,
}

impl DatasetSpec {
    /// UCF101 with all 101 classes.
    pub fn ucf101() -> Self {
        Self {
            id: DatasetId::Ucf101,
            name: "ucf101".into(),
            num_classes: 101,
            input_cost_factor: 1.0,
            // Video: pronounced temporal locality (~1s of 25fps footage per
            // action segment in the paper's batched test streams).
            mean_run_length: 24.0,
            reference_accuracy: 0.8056, // paper Table I, ResNet101 on UCF101
        }
    }

    /// ImageNet-100 with all 100 classes.
    pub fn imagenet100() -> Self {
        Self {
            id: DatasetId::ImageNet100,
            name: "imagenet-100".into(),
            num_classes: 100,
            // 44.87 / 40.58 from the paper's ResNet101 Edge-Only anchors.
            input_cost_factor: 44.87 / 40.58,
            // Batched image streams: same-class batches, shorter than video.
            mean_run_length: 16.0,
            reference_accuracy: 0.8207, // paper Table I, ResNet101 on ImageNet-100
        }
    }

    /// ESC-50 with all 50 classes.
    pub fn esc50() -> Self {
        Self {
            id: DatasetId::Esc50,
            name: "esc-50".into(),
            num_classes: 50,
            input_cost_factor: 1.0,
            // 5-second clips, windowed: moderate locality.
            mean_run_length: 12.0,
            reference_accuracy: 0.85,
        }
    }

    /// Restricts the dataset to its first `n` classes (the paper evaluates
    /// on 20-, 50- and 100-class subsets of UCF101).
    ///
    /// # Panics
    /// Panics if `n` is zero or exceeds the class count.
    pub fn subset(&self, n: usize) -> DatasetSpec {
        assert!(
            n > 0 && n <= self.num_classes,
            "invalid subset size {n} of {}",
            self.num_classes
        );
        let mut out = self.clone();
        out.num_classes = n;
        out.name = format!("{}-{}", self.id.name(), n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_class_counts() {
        assert_eq!(DatasetSpec::ucf101().num_classes, 101);
        assert_eq!(DatasetSpec::imagenet100().num_classes, 100);
        assert_eq!(DatasetSpec::esc50().num_classes, 50);
    }

    #[test]
    fn subset_renames_and_shrinks() {
        let s = DatasetSpec::ucf101().subset(50);
        assert_eq!(s.num_classes, 50);
        assert_eq!(s.name, "ucf101-50");
        assert_eq!(s.id, DatasetId::Ucf101);
    }

    #[test]
    #[should_panic(expected = "invalid subset")]
    fn subset_rejects_oversize() {
        let _ = DatasetSpec::esc50().subset(51);
    }

    #[test]
    fn imagenet_costs_more_than_ucf() {
        assert!(DatasetSpec::imagenet100().input_cost_factor > 1.0);
    }
}
