//! # coca-data — workload substrate
//!
//! The paper evaluates on three real datasets (UCF101, ImageNet-100,
//! ESC-50) streamed to clients with temporal locality, non-IID partitioning
//! (Dirichlet, parameterized by `p = 1/ε`) and long-tail class imbalance
//! (exponential decay with imbalance ratio ρ). This crate reproduces the
//! *label-stream statistics* of those setups synthetically — see DESIGN.md
//! §2 for why that substitution preserves the evaluated behaviour.
//!
//! * [`dataset`] — named dataset specifications (class counts, input-scale
//!   latency factors, per-dataset baseline model accuracy anchors).
//! * [`distribution`] — class-popularity constructions: uniform, long-tail
//!   (`ρ`), plus Dirichlet/Gamma samplers.
//! * [`partition`] — per-client distributions at a chosen non-IID level.
//! * [`stream`] — temporally local frame streams (class runs, per-frame
//!   difficulty with intra-run correlation).

pub mod dataset;
pub mod distribution;
pub mod partition;
pub mod stream;

pub use dataset::{DatasetId, DatasetSpec};
pub use distribution::{dirichlet, long_tail_weights, uniform_weights};
pub use partition::{client_distributions, NonIidLevel};
pub use stream::{Frame, PopularityPhase, StreamConfig, StreamGenerator};
