//! Per-client class distributions at a chosen non-IID level.
//!
//! The paper (§VI.A) constructs non-IID client data with a Dirichlet prior
//! `Dir(ε)` and reports heterogeneity as `p = 1/ε`, sweeping
//! `p ∈ {0, 1, 2, 10}` where `p = 0` is the IID case. We mirror that: for
//! `p > 0` each client's class distribution is drawn from
//! `Dir(α · global_popularity)` with concentration `α = I / p` (so larger
//! `p` ⇒ smaller concentration ⇒ more heterogeneous clients), and `p = 0`
//! returns the global popularity exactly.

use crate::distribution::dirichlet;
use coca_sim::SeedTree;
use serde::{Deserialize, Serialize};

/// The paper's non-IID knob `p = 1/ε` (`p = 0` ⇒ IID).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonIidLevel(pub f64);

impl NonIidLevel {
    /// The IID setting (`p = 0`).
    pub const IID: NonIidLevel = NonIidLevel(0.0);

    /// True iff this is the IID setting.
    pub fn is_iid(self) -> bool {
        self.0 <= 0.0
    }
}

/// Draws one class distribution per client.
///
/// * `global` — the population class popularity (uniform or long-tail),
///   must be a probability vector.
/// * `level` — the paper's `p`; `p = 0` duplicates `global` for everyone.
/// * `seeds` — deterministic seed node; client `k` uses child
///   `("partition", k)` so adding clients never reshuffles existing ones.
///
/// Every returned vector is a probability distribution over the same class
/// set (zero-probability classes are possible and expected at high `p`).
pub fn client_distributions(
    global: &[f64],
    num_clients: usize,
    level: NonIidLevel,
    seeds: &SeedTree,
) -> Vec<Vec<f64>> {
    assert!(num_clients > 0, "need at least one client");
    assert!(!global.is_empty(), "empty global distribution");
    let sum: f64 = global.iter().sum();
    assert!(
        (sum - 1.0).abs() < 1e-6,
        "global distribution must sum to 1, got {sum}"
    );

    if level.is_iid() {
        return vec![global.to_vec(); num_clients];
    }
    let concentration = global.len() as f64 / level.0;
    // Floor each alpha so Gamma sampling stays numerically sane even for
    // near-zero-popularity tail classes.
    let alpha: Vec<f64> = global
        .iter()
        .map(|&g| (concentration * g).max(1e-3))
        .collect();
    (0..num_clients)
        .map(|k| {
            let mut rng = seeds.rng_for_idx("partition", k as u64);
            dirichlet(&mut rng, &alpha)
        })
        .collect()
}

/// Total-variation distance between two distributions — used by tests and
/// experiments to verify that larger `p` yields more heterogeneity.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "total_variation: length mismatch");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::{long_tail_weights, uniform_weights};

    #[test]
    fn iid_copies_global() {
        let global = long_tail_weights(20, 10.0);
        let parts = client_distributions(&global, 4, NonIidLevel::IID, &SeedTree::new(1));
        assert_eq!(parts.len(), 4);
        for p in &parts {
            assert_eq!(p, &global);
        }
    }

    #[test]
    fn higher_p_is_more_heterogeneous() {
        let global = uniform_weights(50);
        let seeds = SeedTree::new(2);
        let mean_tv = |p: f64| -> f64 {
            let parts = client_distributions(&global, 10, NonIidLevel(p), &seeds);
            parts
                .iter()
                .map(|d| total_variation(d, &global))
                .sum::<f64>()
                / parts.len() as f64
        };
        let tv1 = mean_tv(1.0);
        let tv10 = mean_tv(10.0);
        assert!(tv10 > tv1, "tv(p=10)={tv10} should exceed tv(p=1)={tv1}");
        assert!(tv1 > 0.01);
    }

    #[test]
    fn partitions_are_probability_vectors() {
        let global = long_tail_weights(100, 90.0);
        let parts = client_distributions(&global, 8, NonIidLevel(2.0), &SeedTree::new(3));
        for p in parts {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn deterministic_and_stable_under_client_growth() {
        let global = uniform_weights(10);
        let seeds = SeedTree::new(4);
        let a = client_distributions(&global, 3, NonIidLevel(1.0), &seeds);
        let b = client_distributions(&global, 5, NonIidLevel(1.0), &seeds);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[2], b[2]);
    }
}
