//! Single-server FIFO queue in virtual time.
//!
//! The edge server processes cache requests and global updates one at a
//! time. When many clients hit a round boundary together, later requests
//! wait — the mechanism behind the paper's Fig. 10(b): mean cache-response
//! latency for ResNet101 grows from 56.70 ms at 60 clients to 60.93 ms at
//! 160 clients.

use coca_sim::{SimDuration, SimTime};

/// Completed service record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Service {
    /// When processing began (≥ arrival).
    pub start: SimTime,
    /// When processing finished.
    pub finish: SimTime,
}

impl Service {
    /// Queueing delay + service time as seen by the requester.
    pub fn sojourn_since(&self, arrival: SimTime) -> SimDuration {
        self.finish.saturating_since(arrival)
    }
}

/// A work-conserving FIFO server.
///
/// Requests must be offered in non-decreasing arrival order (the engine's
/// event queue guarantees this).
#[derive(Debug, Clone, Default)]
pub struct ServerQueue {
    next_free: SimTime,
    served: u64,
    busy_total: SimDuration,
}

impl ServerQueue {
    /// An idle server at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves a request arriving at `arrival` that needs `service_time` of
    /// server compute. Returns when it starts and finishes.
    pub fn serve(&mut self, arrival: SimTime, service_time: SimDuration) -> Service {
        let start = arrival.max(self.next_free);
        let finish = start + service_time;
        self.next_free = finish;
        self.served += 1;
        self.busy_total += service_time;
        Service { start, finish }
    }

    /// Instant at which the server next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_millis_f64(x)
    }
    fn dur(x: f64) -> SimDuration {
        SimDuration::from_millis_f64(x)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut q = ServerQueue::new();
        let s = q.serve(ms(10.0), dur(2.0));
        assert_eq!(s.start, ms(10.0));
        assert_eq!(s.finish, ms(12.0));
        assert_eq!(s.sojourn_since(ms(10.0)), dur(2.0));
    }

    #[test]
    fn burst_queues_fifo() {
        let mut q = ServerQueue::new();
        // Three requests arrive simultaneously; they serialize.
        let a = q.serve(ms(0.0), dur(1.0));
        let b = q.serve(ms(0.0), dur(1.0));
        let c = q.serve(ms(0.0), dur(1.0));
        assert_eq!(a.finish, ms(1.0));
        assert_eq!(b.start, ms(1.0));
        assert_eq!(c.finish, ms(3.0));
        assert_eq!(c.sojourn_since(ms(0.0)), dur(3.0));
        assert_eq!(q.served(), 3);
        assert_eq!(q.busy_total(), dur(3.0));
    }

    #[test]
    fn gaps_leave_server_idle() {
        let mut q = ServerQueue::new();
        q.serve(ms(0.0), dur(1.0));
        let s = q.serve(ms(100.0), dur(1.0));
        assert_eq!(s.start, ms(100.0));
        assert_eq!(q.next_free(), ms(101.0));
    }

    #[test]
    fn more_load_means_longer_sojourn() {
        // The Fig. 10(b) mechanism in miniature: mean sojourn grows with
        // the number of simultaneous requesters.
        let sojourn = |n: usize| -> f64 {
            let mut q = ServerQueue::new();
            let total: f64 = (0..n)
                .map(|_| {
                    q.serve(ms(0.0), dur(0.5))
                        .sojourn_since(ms(0.0))
                        .as_millis_f64()
                })
                .sum();
            total / n as f64
        };
        assert!(sojourn(160) > sojourn(60));
    }
}
