//! Client↔server link cost model.
//!
//! [`LinkModel`] prices a single point-to-point link; [`LinkSchedule`]
//! makes it time-varying per client, so a scenario can degrade or upgrade
//! one client's connectivity mid-run (a handover to a congested AP, a move
//! from WiFi to cellular) while the rest of the fleet is unaffected.

use coca_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Shared-testbed boot window: clients boot uniformly at random within
/// this many milliseconds. The single source of truth for every engine
/// configuration (CoCa's `EngineConfig` and the generic `DriveConfig` both
/// read it from here).
pub const TESTBED_BOOT_WINDOW_MS: f64 = 2_000.0;

/// A point-to-point wireless link.
///
/// Transfer time = one-way propagation delay + payload / bandwidth. The
/// defaults model the paper's router-based WiFi testbed: ~2 ms one-way
/// delay and 150 Mbit/s goodput — a 1 MB cache download then costs
/// ≈ 55 ms, consistent with the paper's ~57 ms cache-response latencies at
/// low client counts (Fig. 10(b)).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation + protocol-stack delay.
    pub one_way_delay: SimDuration,
    /// Goodput in bits per second.
    pub bandwidth_bps: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self {
            one_way_delay: SimDuration::from_millis_f64(2.0),
            bandwidth_bps: 150.0e6,
        }
    }
}

impl LinkModel {
    /// The paper's router-based WiFi testbed link (alias of
    /// [`LinkModel::default`], named so call sites read as intent).
    pub fn testbed() -> Self {
        Self::default()
    }

    /// An idealized link with zero cost (unit tests, single-node runs).
    pub fn zero() -> Self {
        Self {
            one_way_delay: SimDuration::ZERO,
            bandwidth_bps: f64::INFINITY,
        }
    }

    /// Time to deliver `bytes` of payload one way.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let serialization = if self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0 {
            SimDuration::from_millis_f64(bytes as f64 * 8.0 / self.bandwidth_bps * 1e3)
        } else {
            SimDuration::ZERO
        };
        self.one_way_delay + serialization
    }
}

/// One scheduled link change: from `at` onward the client uses `link`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkChangePoint {
    /// Virtual instant the change takes effect.
    pub at: SimTime,
    /// The link model in force from `at` onward.
    pub link: LinkModel,
}

/// A per-client, piecewise-constant link over virtual time.
///
/// The schedule starts on `base` and switches at each change point; the
/// engine resolves the model **at event-emission time** (the instant a
/// message is handed to the link), so a transfer started before a change
/// completes under the old model — matching how an in-flight packet train
/// is not re-priced mid-air.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkSchedule {
    base: LinkModel,
    /// Change points sorted by `at` ascending (enforced on construction).
    changes: Vec<LinkChangePoint>,
}

impl Default for LinkSchedule {
    fn default() -> Self {
        Self::fixed(LinkModel::default())
    }
}

impl LinkSchedule {
    /// A schedule that never changes: `link` for the whole run.
    pub fn fixed(link: LinkModel) -> Self {
        Self {
            base: link,
            changes: Vec::new(),
        }
    }

    /// Appends a change effective from `at`. Changes may be pushed in any
    /// order; the schedule keeps them sorted (ties resolve to the
    /// last-pushed change, mirroring "latest instruction wins").
    pub fn push_change(&mut self, at: SimTime, link: LinkModel) {
        let idx = self.changes.partition_point(|c| c.at <= at);
        self.changes.insert(idx, LinkChangePoint { at, link });
    }

    /// Builder form of [`LinkSchedule::push_change`].
    pub fn with_change(mut self, at: SimTime, link: LinkModel) -> Self {
        self.push_change(at, link);
        self
    }

    /// True iff the schedule has no change points (a static link).
    pub fn is_static(&self) -> bool {
        self.changes.is_empty()
    }

    /// The link model in force at instant `t`.
    pub fn link_at(&self, t: SimTime) -> LinkModel {
        match self.changes.partition_point(|c| c.at <= t) {
            0 => self.base,
            n => self.changes[n - 1].link,
        }
    }

    /// Time to deliver `bytes` one way on the link in force at `t`.
    pub fn transfer_time(&self, t: SimTime, bytes: usize) -> SimDuration {
        self.link_at(t).transfer_time(bytes)
    }

    /// The link in force before any change point.
    pub fn base(&self) -> LinkModel {
        self.base
    }

    /// The scheduled change points, sorted by time.
    pub fn changes(&self) -> &[LinkChangePoint] {
        &self.changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_on_default_link_takes_tens_of_ms() {
        let link = LinkModel::default();
        let t = link.transfer_time(1_000_000).as_millis_f64();
        assert!((50.0..60.0).contains(&t), "1 MB transfer {t} ms");
    }

    #[test]
    fn empty_payload_costs_only_delay() {
        let link = LinkModel::default();
        assert_eq!(link.transfer_time(0), link.one_way_delay);
    }

    #[test]
    fn zero_link_is_free() {
        assert_eq!(LinkModel::zero().transfer_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let link = LinkModel::default();
        assert!(link.transfer_time(2000) > link.transfer_time(1000));
    }

    #[test]
    fn static_schedule_matches_its_link_everywhere() {
        let s = LinkSchedule::fixed(LinkModel::default());
        assert!(s.is_static());
        for ms in [0.0, 1.0, 1e6] {
            let t = SimTime::from_millis_f64(ms);
            assert_eq!(
                s.transfer_time(t, 1234),
                LinkModel::default().transfer_time(1234)
            );
        }
    }

    #[test]
    fn schedule_switches_at_change_points() {
        let slow = LinkModel {
            one_way_delay: SimDuration::from_millis(20),
            bandwidth_bps: 1.0e6,
        };
        let s = LinkSchedule::fixed(LinkModel::default())
            .with_change(SimTime::from_millis_f64(100.0), slow);
        assert!(!s.is_static());
        let before = SimTime::from_millis_f64(99.9);
        let at = SimTime::from_millis_f64(100.0);
        assert_eq!(s.link_at(before).one_way_delay, SimDuration::from_millis(2));
        // The change is inclusive at its instant.
        assert_eq!(s.link_at(at).one_way_delay, SimDuration::from_millis(20));
        assert!(s.transfer_time(at, 10_000) > s.transfer_time(before, 10_000));
    }

    #[test]
    fn out_of_order_pushes_are_sorted_and_last_wins_on_ties() {
        let a = LinkModel {
            one_way_delay: SimDuration::from_millis(5),
            bandwidth_bps: 1.0e6,
        };
        let b = LinkModel {
            one_way_delay: SimDuration::from_millis(9),
            bandwidth_bps: 1.0e6,
        };
        let t1 = SimTime::from_millis_f64(50.0);
        let t0 = SimTime::from_millis_f64(10.0);
        let mut s = LinkSchedule::fixed(LinkModel::default());
        s.push_change(t1, a);
        s.push_change(t0, b);
        assert_eq!(s.changes()[0].at, t0);
        assert_eq!(s.link_at(t0).one_way_delay, SimDuration::from_millis(9));
        // A second change at the same instant supersedes the first.
        s.push_change(t1, b);
        assert_eq!(s.link_at(t1).one_way_delay, SimDuration::from_millis(9));
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let s = LinkSchedule::fixed(LinkModel::default()).with_change(
            SimTime::from_millis_f64(250.0),
            LinkModel {
                one_way_delay: SimDuration::from_millis(10),
                bandwidth_bps: 5.0e6,
            },
        );
        let text = serde_json::to_string(&s).unwrap();
        let back: LinkSchedule = serde_json::from_str(&text).unwrap();
        assert_eq!(back.changes().len(), 1);
        let t = SimTime::from_millis_f64(300.0);
        assert_eq!(back.transfer_time(t, 4096), s.transfer_time(t, 4096));
    }
}
