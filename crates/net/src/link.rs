//! Client↔server link cost model.

use coca_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A point-to-point wireless link.
///
/// Transfer time = one-way propagation delay + payload / bandwidth. The
/// defaults model the paper's router-based WiFi testbed: ~2 ms one-way
/// delay and 150 Mbit/s goodput — a 1 MB cache download then costs
/// ≈ 55 ms, consistent with the paper's ~57 ms cache-response latencies at
/// low client counts (Fig. 10(b)).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation + protocol-stack delay.
    pub one_way_delay: SimDuration,
    /// Goodput in bits per second.
    pub bandwidth_bps: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        Self {
            one_way_delay: SimDuration::from_millis_f64(2.0),
            bandwidth_bps: 150.0e6,
        }
    }
}

impl LinkModel {
    /// An idealized link with zero cost (unit tests, single-node runs).
    pub fn zero() -> Self {
        Self {
            one_way_delay: SimDuration::ZERO,
            bandwidth_bps: f64::INFINITY,
        }
    }

    /// Time to deliver `bytes` of payload one way.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let serialization = if self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0 {
            SimDuration::from_millis_f64(bytes as f64 * 8.0 / self.bandwidth_bps * 1e3)
        } else {
            SimDuration::ZERO
        };
        self.one_way_delay + serialization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_megabyte_on_default_link_takes_tens_of_ms() {
        let link = LinkModel::default();
        let t = link.transfer_time(1_000_000).as_millis_f64();
        assert!((50.0..60.0).contains(&t), "1 MB transfer {t} ms");
    }

    #[test]
    fn empty_payload_costs_only_delay() {
        let link = LinkModel::default();
        assert_eq!(link.transfer_time(0), link.one_way_delay);
    }

    #[test]
    fn zero_link_is_free() {
        assert_eq!(LinkModel::zero().transfer_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes() {
        let link = LinkModel::default();
        assert!(link.transfer_time(2000) > link.transfer_time(1000));
    }
}
