//! Wire sizing and length-prefixed framing.
//!
//! Two distinct concerns live here:
//!
//! * [`WireSize`] — how many bytes a message *logically* occupies on the
//!   wire (dense binary: f32 vectors at 4 bytes each plus small headers).
//!   The virtual-time link model charges this size. Implementations live
//!   next to each message type.
//! * [`encode_frame`]/[`decode_frame`] — the actual byte framing used by
//!   the real transports: a 4-byte big-endian length prefix followed by a
//!   JSON payload. JSON keeps the cross-process protocol debuggable; the
//!   simulation never pays its size overhead because the link model uses
//!   `WireSize` instead.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Logical wire size of a message in bytes.
pub trait WireSize {
    /// Bytes this value occupies in a dense binary encoding.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for Vec<f32> {
    fn wire_bytes(&self) -> usize {
        4 + self.len() * 4
    }
}

impl WireSize for Vec<f64> {
    fn wire_bytes(&self) -> usize {
        4 + self.len() * 8
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

/// Framing/parsing failures for the real transports.
#[derive(Debug)]
pub enum FrameError {
    /// Frame exceeds the hard cap (corrupt stream or protocol mismatch).
    TooLarge(usize),
    /// Buffer ends mid-frame where a complete message was required.
    Truncated,
    /// The length prefix disagrees with the buffer: a message-oriented
    /// frame was followed by trailing bytes.
    LengthMismatch {
        /// Bytes the frame claims (prefix + payload).
        frame_bytes: usize,
        /// Bytes actually present.
        buffer_bytes: usize,
    },
    /// Payload failed to deserialize.
    Codec(String),
    /// Transport failure underneath the framing (streaming readers and
    /// writers only; the buffer-oriented codecs never perform I/O).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::LengthMismatch {
                frame_bytes,
                buffer_bytes,
            } => write!(
                f,
                "length-inconsistent frame: prefix claims {frame_bytes} bytes, \
                 buffer holds {buffer_bytes}"
            ),
            FrameError::Codec(e) => write!(f, "codec error: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Hard cap on a single frame (64 MiB) — far above any CoCa exchange, low
/// enough to fail fast on garbage length prefixes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Encodes `msg` as `[u32 big-endian length][JSON bytes]`.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Bytes, FrameError> {
    let payload = serde_json::to_vec(msg).map_err(|e| FrameError::Codec(e.to_string()))?;
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Decodes one frame from `buf`. On success returns the message and the
/// total bytes consumed; returns `Ok(None)` if `buf` does not yet hold a
/// complete frame.
pub fn decode_frame<T: DeserializeOwned>(mut buf: &[u8]) -> Result<Option<(T, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < len {
        return Ok(None);
    }
    let msg = serde_json::from_slice(&buf[..len]).map_err(|e| FrameError::Codec(e.to_string()))?;
    Ok(Some((msg, 4 + len)))
}

/// Decodes exactly one complete frame occupying the whole buffer — the
/// message-oriented boundary (datagram-style transports that deliver one
/// frame per receive). Unlike the stream-oriented [`decode_frame`], for
/// which an incomplete buffer is a normal `Ok(None)` ("wait for more
/// bytes"), a short or length-inconsistent buffer here can never be
/// completed and is an error: [`FrameError::Truncated`] when the buffer
/// ends mid-frame, [`FrameError::LengthMismatch`] when bytes trail the
/// frame the length prefix delimits. Never panics, whatever the input.
pub fn decode_message<T: DeserializeOwned>(buf: &[u8]) -> Result<T, FrameError> {
    match decode_frame::<T>(buf)? {
        None => Err(FrameError::Truncated),
        Some((msg, used)) if used == buf.len() => Ok(msg),
        Some((_, used)) => Err(FrameError::LengthMismatch {
            frame_bytes: used,
            buffer_bytes: buf.len(),
        }),
    }
}

/// Outcome of filling a buffer from a stream.
enum Filled {
    /// Every byte landed.
    Full,
    /// The stream ended before the first byte — a clean boundary EOF.
    Eof,
    /// The stream ended after some but not all bytes — a torn frame.
    Partial,
}

/// `read_exact` that distinguishes a clean EOF (zero bytes read) from a
/// torn one, and retries `Interrupted` like the std version does.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Filled, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Filled::Full)
}

/// Reads exactly one `[u32 big-endian length][JSON]` frame from a
/// blocking stream, however the transport fragments it — a socket is free
/// to deliver a frame one byte per `read`. Returns `Ok(None)` on a clean
/// EOF at a frame boundary (the peer closed between messages — a normal
/// connection shutdown); a stream ending *inside* a frame is
/// [`FrameError::Truncated`], a length prefix over [`MAX_FRAME_BYTES`]
/// fails fast as [`FrameError::TooLarge`] before any payload allocation,
/// and transport failures surface as [`FrameError::Io`]. The reassembled
/// frame goes through [`decode_message`]'s strict whole-buffer decode,
/// so payload errors carry the same typed causes buffer callers see.
pub fn read_message<R: Read, T: DeserializeOwned>(r: &mut R) -> Result<Option<T>, FrameError> {
    let mut prefix = [0u8; 4];
    match fill(r, &mut prefix)? {
        Filled::Eof => return Ok(None),
        Filled::Partial => return Err(FrameError::Truncated),
        Filled::Full => {}
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    match fill(r, &mut frame[4..])? {
        Filled::Full => {}
        Filled::Eof | Filled::Partial => return Err(FrameError::Truncated),
    }
    decode_message(&frame).map(Some)
}

/// Writes one encoded frame to a blocking stream and flushes it — the
/// sending half of [`read_message`]. Transport failures surface as
/// [`FrameError::Io`].
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), FrameError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        id: u32,
        xs: Vec<f32>,
    }

    #[test]
    fn frame_round_trip() {
        let msg = Demo {
            id: 7,
            xs: vec![1.0, 2.5, -3.0],
        };
        let bytes = encode_frame(&msg).unwrap();
        let (back, used): (Demo, usize) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn partial_frames_wait_for_more_data() {
        let msg = Demo {
            id: 1,
            xs: vec![0.0; 16],
        };
        let bytes = encode_frame(&msg).unwrap();
        for cut in [0usize, 3, 4, bytes.len() - 1] {
            let r: Option<(Demo, usize)> = decode_frame(&bytes[..cut]).unwrap();
            assert!(r.is_none(), "cut at {cut} should be incomplete");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Demo { id: 1, xs: vec![] };
        let b = Demo {
            id: 2,
            xs: vec![9.0],
        };
        let mut stream = encode_frame(&a).unwrap().to_vec();
        stream.extend_from_slice(&encode_frame(&b).unwrap());
        let (m1, used): (Demo, usize) = decode_frame(&stream).unwrap().unwrap();
        assert_eq!(m1, a);
        let (m2, used2): (Demo, usize) = decode_frame(&stream[used..]).unwrap().unwrap();
        assert_eq!(m2, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn message_decode_rejects_truncation_and_trailing_bytes() {
        let msg = Demo {
            id: 3,
            xs: vec![1.0, 2.0],
        };
        let bytes = encode_frame(&msg).unwrap();
        let back: Demo = decode_message(&bytes).unwrap();
        assert_eq!(back, msg);
        // Every proper prefix is Truncated — including the empty buffer
        // and a cut inside the length prefix.
        for cut in 0..bytes.len() {
            let r: Result<Demo, _> = decode_message(&bytes[..cut]);
            assert!(
                matches!(r, Err(FrameError::Truncated)),
                "cut at {cut} must be truncated"
            );
        }
        // Trailing bytes are a length inconsistency, not silently dropped.
        let mut long = bytes.to_vec();
        long.push(0x7f);
        let r: Result<Demo, _> = decode_message(&long);
        assert!(matches!(
            r,
            Err(FrameError::LengthMismatch {
                frame_bytes,
                buffer_bytes,
            }) if frame_bytes == bytes.len() && buffer_bytes == bytes.len() + 1
        ));
    }

    #[test]
    fn oversized_length_prefix_errors() {
        let mut garbage = BytesMut::new();
        garbage.put_u32(u32::MAX);
        garbage.put_slice(&[0u8; 8]);
        let r: Result<Option<(Demo, usize)>, _> = decode_frame(&garbage);
        assert!(matches!(r, Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn corrupt_payload_is_a_codec_error() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"zzz");
        let r: Result<Option<(Demo, usize)>, _> = decode_frame(&buf);
        assert!(matches!(r, Err(FrameError::Codec(_))));
    }

    /// A reader that hands bytes out in the given chunk sizes (then the
    /// remainder), mimicking arbitrary socket fragmentation.
    struct ChunkedReader {
        data: Vec<u8>,
        pos: usize,
        chunks: Vec<usize>,
    }

    impl std::io::Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let cap = if self.chunks.is_empty() {
                buf.len()
            } else {
                self.chunks.remove(0).min(buf.len())
            };
            let n = cap.min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn read_message_reassembles_any_split() {
        let msg = Demo {
            id: 42,
            xs: vec![1.0, -2.0, 3.5],
        };
        let bytes = encode_frame(&msg).unwrap().to_vec();
        // Delivery split at every byte boundary: first `cut` bytes in one
        // chunk, the rest byte by byte (a zero-length chunk would read as
        // EOF under the `Read` contract, so cut = 0 emits none).
        for cut in 0..=bytes.len() {
            let mut r = ChunkedReader {
                data: bytes.clone(),
                pos: 0,
                chunks: (cut > 0)
                    .then_some(cut)
                    .into_iter()
                    .chain(std::iter::repeat_n(1, bytes.len() - cut))
                    .collect(),
            };
            let back: Demo = read_message(&mut r).unwrap().unwrap();
            assert_eq!(back, msg, "split at {cut}");
            // The stream is exhausted: the next read is a clean EOF.
            let next: Option<Demo> = read_message(&mut r).unwrap();
            assert!(next.is_none(), "split at {cut}");
        }
    }

    #[test]
    fn read_message_streams_back_to_back_frames() {
        let a = Demo { id: 1, xs: vec![] };
        let b = Demo {
            id: 2,
            xs: vec![9.0],
        };
        let mut data = encode_frame(&a).unwrap().to_vec();
        data.extend_from_slice(&encode_frame(&b).unwrap());
        let mut r = ChunkedReader {
            data,
            pos: 0,
            chunks: vec![1; 4096],
        };
        assert_eq!(read_message::<_, Demo>(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_message::<_, Demo>(&mut r).unwrap().unwrap(), b);
        assert!(read_message::<_, Demo>(&mut r).unwrap().is_none());
    }

    #[test]
    fn read_message_rejects_mid_frame_eof_at_every_cut() {
        let msg = Demo {
            id: 3,
            xs: vec![1.0, 2.0],
        };
        let bytes = encode_frame(&msg).unwrap().to_vec();
        for cut in 1..bytes.len() {
            let mut r = ChunkedReader {
                data: bytes[..cut].to_vec(),
                pos: 0,
                chunks: vec![],
            };
            let res: Result<Option<Demo>, _> = read_message(&mut r);
            assert!(
                matches!(res, Err(FrameError::Truncated)),
                "eof at {cut} must be a torn frame"
            );
        }
    }

    #[test]
    fn read_message_caps_the_length_prefix() {
        let mut data = Vec::new();
        data.extend_from_slice(&u32::MAX.to_be_bytes());
        data.extend_from_slice(&[0u8; 16]);
        let mut r = ChunkedReader {
            data,
            pos: 0,
            chunks: vec![],
        };
        let res: Result<Option<Demo>, _> = read_message(&mut r);
        assert!(matches!(res, Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn read_message_surfaces_transport_errors() {
        struct FailingReader;
        impl std::io::Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "boom",
                ))
            }
        }
        let res: Result<Option<Demo>, _> = read_message(&mut FailingReader);
        assert!(matches!(res, Err(FrameError::Io(_))));
    }

    #[test]
    fn write_message_round_trips_through_read_message() {
        let msg = Demo {
            id: 9,
            xs: vec![0.5],
        };
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_message::<_, Demo>(&mut r).unwrap().unwrap(), msg);
    }

    #[test]
    fn wire_size_of_vectors() {
        let v: Vec<f32> = vec![0.0; 128];
        assert_eq!(v.wire_bytes(), 4 + 512);
        let o: Option<Vec<f32>> = None;
        assert_eq!(o.wire_bytes(), 1);
        let o = Some(v);
        assert_eq!(o.wire_bytes(), 1 + 4 + 512);
    }
}
