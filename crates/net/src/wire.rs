//! Wire sizing and length-prefixed framing.
//!
//! Two distinct concerns live here:
//!
//! * [`WireSize`] — how many bytes a message *logically* occupies on the
//!   wire (dense binary: f32 vectors at 4 bytes each plus small headers).
//!   The virtual-time link model charges this size. Implementations live
//!   next to each message type.
//! * [`encode_frame`]/[`decode_frame`] — the actual byte framing used by
//!   the real transports: a 4-byte big-endian length prefix followed by a
//!   JSON payload. JSON keeps the cross-process protocol debuggable; the
//!   simulation never pays its size overhead because the link model uses
//!   `WireSize` instead.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Logical wire size of a message in bytes.
pub trait WireSize {
    /// Bytes this value occupies in a dense binary encoding.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for Vec<f32> {
    fn wire_bytes(&self) -> usize {
        4 + self.len() * 4
    }
}

impl WireSize for Vec<f64> {
    fn wire_bytes(&self) -> usize {
        4 + self.len() * 8
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

/// Framing/parsing failures for the real transports.
#[derive(Debug)]
pub enum FrameError {
    /// Frame exceeds the hard cap (corrupt stream or protocol mismatch).
    TooLarge(usize),
    /// Buffer ends mid-frame where a complete message was required.
    Truncated,
    /// The length prefix disagrees with the buffer: a message-oriented
    /// frame was followed by trailing bytes.
    LengthMismatch {
        /// Bytes the frame claims (prefix + payload).
        frame_bytes: usize,
        /// Bytes actually present.
        buffer_bytes: usize,
    },
    /// Payload failed to deserialize.
    Codec(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::LengthMismatch {
                frame_bytes,
                buffer_bytes,
            } => write!(
                f,
                "length-inconsistent frame: prefix claims {frame_bytes} bytes, \
                 buffer holds {buffer_bytes}"
            ),
            FrameError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Hard cap on a single frame (64 MiB) — far above any CoCa exchange, low
/// enough to fail fast on garbage length prefixes.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Encodes `msg` as `[u32 big-endian length][JSON bytes]`.
pub fn encode_frame<T: Serialize>(msg: &T) -> Result<Bytes, FrameError> {
    let payload = serde_json::to_vec(msg).map_err(|e| FrameError::Codec(e.to_string()))?;
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(payload.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    Ok(buf.freeze())
}

/// Decodes one frame from `buf`. On success returns the message and the
/// total bytes consumed; returns `Ok(None)` if `buf` does not yet hold a
/// complete frame.
pub fn decode_frame<T: DeserializeOwned>(mut buf: &[u8]) -> Result<Option<(T, usize)>, FrameError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = buf.get_u32() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    if buf.len() < len {
        return Ok(None);
    }
    let msg = serde_json::from_slice(&buf[..len]).map_err(|e| FrameError::Codec(e.to_string()))?;
    Ok(Some((msg, 4 + len)))
}

/// Decodes exactly one complete frame occupying the whole buffer — the
/// message-oriented boundary (datagram-style transports that deliver one
/// frame per receive). Unlike the stream-oriented [`decode_frame`], for
/// which an incomplete buffer is a normal `Ok(None)` ("wait for more
/// bytes"), a short or length-inconsistent buffer here can never be
/// completed and is an error: [`FrameError::Truncated`] when the buffer
/// ends mid-frame, [`FrameError::LengthMismatch`] when bytes trail the
/// frame the length prefix delimits. Never panics, whatever the input.
pub fn decode_message<T: DeserializeOwned>(buf: &[u8]) -> Result<T, FrameError> {
    match decode_frame::<T>(buf)? {
        None => Err(FrameError::Truncated),
        Some((msg, used)) if used == buf.len() => Ok(msg),
        Some((_, used)) => Err(FrameError::LengthMismatch {
            frame_bytes: used,
            buffer_bytes: buf.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        id: u32,
        xs: Vec<f32>,
    }

    #[test]
    fn frame_round_trip() {
        let msg = Demo {
            id: 7,
            xs: vec![1.0, 2.5, -3.0],
        };
        let bytes = encode_frame(&msg).unwrap();
        let (back, used): (Demo, usize) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn partial_frames_wait_for_more_data() {
        let msg = Demo {
            id: 1,
            xs: vec![0.0; 16],
        };
        let bytes = encode_frame(&msg).unwrap();
        for cut in [0usize, 3, 4, bytes.len() - 1] {
            let r: Option<(Demo, usize)> = decode_frame(&bytes[..cut]).unwrap();
            assert!(r.is_none(), "cut at {cut} should be incomplete");
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let a = Demo { id: 1, xs: vec![] };
        let b = Demo {
            id: 2,
            xs: vec![9.0],
        };
        let mut stream = encode_frame(&a).unwrap().to_vec();
        stream.extend_from_slice(&encode_frame(&b).unwrap());
        let (m1, used): (Demo, usize) = decode_frame(&stream).unwrap().unwrap();
        assert_eq!(m1, a);
        let (m2, used2): (Demo, usize) = decode_frame(&stream[used..]).unwrap().unwrap();
        assert_eq!(m2, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn message_decode_rejects_truncation_and_trailing_bytes() {
        let msg = Demo {
            id: 3,
            xs: vec![1.0, 2.0],
        };
        let bytes = encode_frame(&msg).unwrap();
        let back: Demo = decode_message(&bytes).unwrap();
        assert_eq!(back, msg);
        // Every proper prefix is Truncated — including the empty buffer
        // and a cut inside the length prefix.
        for cut in 0..bytes.len() {
            let r: Result<Demo, _> = decode_message(&bytes[..cut]);
            assert!(
                matches!(r, Err(FrameError::Truncated)),
                "cut at {cut} must be truncated"
            );
        }
        // Trailing bytes are a length inconsistency, not silently dropped.
        let mut long = bytes.to_vec();
        long.push(0x7f);
        let r: Result<Demo, _> = decode_message(&long);
        assert!(matches!(
            r,
            Err(FrameError::LengthMismatch {
                frame_bytes,
                buffer_bytes,
            }) if frame_bytes == bytes.len() && buffer_bytes == bytes.len() + 1
        ));
    }

    #[test]
    fn oversized_length_prefix_errors() {
        let mut garbage = BytesMut::new();
        garbage.put_u32(u32::MAX);
        garbage.put_slice(&[0u8; 8]);
        let r: Result<Option<(Demo, usize)>, _> = decode_frame(&garbage);
        assert!(matches!(r, Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn corrupt_payload_is_a_codec_error() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"zzz");
        let r: Result<Option<(Demo, usize)>, _> = decode_frame(&buf);
        assert!(matches!(r, Err(FrameError::Codec(_))));
    }

    #[test]
    fn wire_size_of_vectors() {
        let v: Vec<f32> = vec![0.0; 128];
        assert_eq!(v.wire_bytes(), 4 + 512);
        let o: Option<Vec<f32>> = None;
        assert_eq!(o.wire_bytes(), 1);
        let o = Some(v);
        assert_eq!(o.wire_bytes(), 1 + 4 + 512);
    }
}
