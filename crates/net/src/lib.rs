//! # coca-net — networking substrate
//!
//! The paper's testbed wires Jetson clients to an edge server over WiFi and
//! exchanges caches via MPI. Two first-order effects matter to the
//! evaluation:
//!
//! 1. **Transfer time** of serialized caches/updates (< 1 MB per exchange,
//!    paper §VI.I) — modelled by [`link::LinkModel`] as one-way delay +
//!    bytes / bandwidth.
//! 2. **Server queueing** when many clients request allocations around the
//!    same round boundary (the paper's Fig. 10(b) response-latency growth
//!    from 60 → 160 clients) — modelled by [`queue::ServerQueue`], a
//!    single-server FIFO in virtual time.
//!
//! For running the protocol across real processes, [`transport`] provides
//! length-prefixed framing over TCP plus an in-memory loopback, both
//! implementing the same [`transport::Transport`] trait; the
//! `distributed_tcp` example and integration tests drive them.

pub mod link;
pub mod queue;
pub mod transport;
pub mod wire;

pub use link::{LinkChangePoint, LinkModel, LinkSchedule, TESTBED_BOOT_WINDOW_MS};
pub use queue::ServerQueue;
pub use transport::{InMemoryTransport, TcpTransport, Transport};
pub use wire::{
    decode_frame, decode_message, encode_frame, read_message, write_message, FrameError, WireSize,
};
