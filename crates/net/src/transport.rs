//! Real transports: in-memory loopback and TCP.
//!
//! The virtual-time engine does not use these (it resolves communication
//! through the link/queue models); they exist so the protocol can also run
//! across real processes — the `distributed_tcp` example spawns a server
//! and several client processes/threads wired through [`TcpTransport`].

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::wire::{decode_frame, decode_message, encode_frame, FrameError};

/// A bidirectional, message-oriented channel.
pub trait Transport {
    /// Sends one message (blocking until handed to the OS / peer queue).
    fn send<T: Serialize>(&mut self, msg: &T) -> io::Result<()>;

    /// Receives the next message, blocking up to `timeout`.
    /// `Ok(None)` signals a timeout; errors signal a broken peer.
    fn recv<T: DeserializeOwned>(&mut self, timeout: Duration) -> io::Result<Option<T>>;
}

fn frame_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

// ---------------------------------------------------------------- memory --

/// In-process transport over crossbeam channels; [`InMemoryTransport::pair`]
/// yields two connected endpoints.
#[derive(Debug)]
pub struct InMemoryTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl InMemoryTransport {
    /// Two connected endpoints.
    pub fn pair() -> (InMemoryTransport, InMemoryTransport) {
        let (atx, arx) = unbounded();
        let (btx, brx) = unbounded();
        (
            InMemoryTransport { tx: atx, rx: brx },
            InMemoryTransport { tx: btx, rx: arx },
        )
    }
}

impl Transport for InMemoryTransport {
    fn send<T: Serialize>(&mut self, msg: &T) -> io::Result<()> {
        let bytes = encode_frame(msg).map_err(frame_err)?;
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }

    fn recv<T: DeserializeOwned>(&mut self, timeout: Duration) -> io::Result<Option<T>> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => {
                // Message-oriented channel: each receive is exactly one
                // frame, so short or length-inconsistent buffers are
                // corruption, not "wait for more".
                let msg = decode_message(&bytes).map_err(frame_err)?;
                Ok(Some(msg))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
            }
        }
    }
}

// ------------------------------------------------------------------- tcp --

/// Length-prefixed framing over a TCP stream.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Connects to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Accepts one connection from `listener`.
    pub fn accept(listener: &TcpListener) -> io::Result<Self> {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// The underlying stream's peer address (diagnostics).
    pub fn peer_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }
}

impl Transport for TcpTransport {
    fn send<T: Serialize>(&mut self, msg: &T) -> io::Result<()> {
        let bytes = encode_frame(msg).map_err(frame_err)?;
        self.stream.write_all(&bytes)
    }

    fn recv<T: DeserializeOwned>(&mut self, timeout: Duration) -> io::Result<Option<T>> {
        self.stream.set_read_timeout(Some(timeout))?;
        loop {
            // Try to decode from what we have.
            match decode_frame::<T>(&self.buf).map_err(frame_err)? {
                Some((msg, used)) => {
                    self.buf.drain(..used);
                    return Ok(Some(msg));
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    match self.stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"))
                        }
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            return Ok(None)
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Ping {
        n: u64,
        body: Vec<f32>,
    }

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn in_memory_round_trip() {
        let (mut a, mut b) = InMemoryTransport::pair();
        a.send(&Ping {
            n: 1,
            body: vec![1.0, 2.0],
        })
        .unwrap();
        let got: Ping = b.recv(T).unwrap().unwrap();
        assert_eq!(
            got,
            Ping {
                n: 1,
                body: vec![1.0, 2.0]
            }
        );
        b.send(&Ping { n: 2, body: vec![] }).unwrap();
        let back: Ping = a.recv(T).unwrap().unwrap();
        assert_eq!(back.n, 2);
    }

    #[test]
    fn in_memory_timeout_returns_none() {
        let (mut a, _b) = InMemoryTransport::pair();
        let r: Option<Ping> = a.recv(Duration::from_millis(10)).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn in_memory_detects_dropped_peer() {
        let (mut a, b) = InMemoryTransport::pair();
        drop(b);
        let r: io::Result<Option<Ping>> = a.recv(T);
        assert!(r.is_err());
    }

    #[test]
    fn tcp_round_trip_and_multiple_messages() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept(&listener).unwrap();
            for expect in 0..3u64 {
                let m: Ping = t.recv(T).unwrap().unwrap();
                assert_eq!(m.n, expect);
                t.send(&Ping {
                    n: m.n + 100,
                    body: m.body,
                })
                .unwrap();
            }
        });
        let mut c = TcpTransport::connect(addr).unwrap();
        for n in 0..3u64 {
            c.send(&Ping {
                n,
                body: vec![n as f32; 64],
            })
            .unwrap();
            let r: Ping = c.recv(T).unwrap().unwrap();
            assert_eq!(r.n, n + 100);
            assert_eq!(r.body.len(), 64);
        }
        server.join().unwrap();
    }

    #[test]
    fn tcp_large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut t = TcpTransport::accept(&listener).unwrap();
            let m: Ping = t.recv(T).unwrap().unwrap();
            t.send(&m).unwrap();
        });
        let mut c = TcpTransport::connect(addr).unwrap();
        let big = Ping {
            n: 9,
            body: vec![0.5; 300_000],
        };
        c.send(&big).unwrap();
        let r: Ping = c.recv(T).unwrap().unwrap();
        assert_eq!(r.body.len(), 300_000);
        server.join().unwrap();
    }
}
