//! # coca-daemon — the CoCa edge server as a networked daemon
//!
//! Everything else in the workspace prices the server inside the
//! virtual-time engine; this crate runs it for real: `cocad` serves the
//! §IV.A protocol over TCP (the same `[u32 BE length][JSON]` frames as
//! [`coca_net::wire`]), and `coca-loadgen` measures it from the outside
//! with per-request wall-clock latency (p50/p99/p999 over the exactly
//! mergeable [`coca_metrics::LatencyHistogram`]).
//!
//! * [`msg`] — the request/reply protocol enums.
//! * [`core`] — [`ServerCore`]: the server state behind
//!   [`LockMode::Single`] (one mutex, durability-capable) or
//!   [`LockMode::Sharded`] ([`coca_core::ShardedServer`], per-layer
//!   locks); plus [`RunSpec`], the deterministic world both ends of a
//!   deployment share.
//! * [`serve`] — acceptor + per-connection readers + a fixed worker
//!   pool over channels; [`serve()`](serve::serve) to start,
//!   [`DaemonHandle::join`] for the final [`DaemonReport`].
//! * [`workload`] — deterministic request/upload synthesis, a pure
//!   function of `(RunSpec, client, round)`.
//! * [`load`] — closed-/open-loop drivers and the sequential
//!   [`run_verify`] digest-equivalence check.
//!
//! ## Determinism contract
//!
//! Driven with one operation in flight at a time, a daemon finishes
//! with the same global-table digest as an in-process
//! [`coca_core::CocaServer`] fed the identical sequence — regardless of
//! lock mode, worker count, or merge mode. `coca-loadgen --verify`
//! checks exactly this over loopback; `tests/daemon_loopback.rs` at the
//! workspace root pins it in CI. Under concurrent load the arrival
//! *order* is scheduling-dependent (so digests vary run to run), but
//! every upload is still merged exactly once through the same Eq. 4/5
//! primitives.

pub mod core;
pub mod load;
pub mod msg;
pub mod serve;
pub mod workload;

pub use crate::core::{LockMode, RunSpec, ServerCore};
pub use load::{run_load, run_verify, shutdown_daemon, Arrival, DaemonClient, LoadReport};
pub use msg::{ClientMsg, ServerMsg};
pub use serve::{serve, serve_with_peers, DaemonHandle, DaemonReport, PeerSet};
pub use workload::Workload;
