//! The serving loop: acceptor → per-connection readers → a fixed pool
//! of worker threads over channels.
//!
//! ## Threading model
//!
//! * **Acceptor** — one thread on a non-blocking listener; polls at
//!   1 ms, spawns a reader per accepted connection, and exits when the
//!   stop flag rises.
//! * **Readers** — one per connection, blocked in
//!   [`coca_net::read_message`]; each decoded [`ClientMsg`] is pushed to
//!   the connection's worker. A reader exits on clean EOF (client hung
//!   up), after forwarding `Shutdown`, or when [`DaemonHandle::join`]
//!   shuts the socket down under it.
//! * **Workers** — a fixed pool looping `recv_timeout(50 ms)` on their
//!   channel (the vendored crossbeam shim has no untimed `recv`). Each
//!   connection is pinned round-robin to exactly one worker, so replies
//!   on a connection come back in request order and at most one thread
//!   ever writes to a given socket. Workers drain their queue and exit
//!   when every sender (acceptor + readers) is gone.
//!
//! Shutdown sequence: a `Shutdown` message (or
//! [`DaemonHandle::shutdown`]) raises the stop flag → the acceptor
//! exits → [`DaemonHandle::join`] shuts down every registered socket,
//! unblocking readers → readers exit, dropping the channel senders →
//! workers observe the disconnect after draining → the core is
//! unwrapped, flushed, digested, and returned in the [`DaemonReport`].

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use coca_core::proto::PeerDelta;
use coca_core::CocaServer;
use coca_net::{read_message, write_message};

use crate::core::ServerCore;
use crate::msg::{ClientMsg, ServerMsg};

/// The daemon's peer cells (`cocad --peers`): each entry is a peer's
/// cell id plus the address its own `cocad` listens on. Deltas ship as
/// ordinary [`ClientMsg::Peer`] frames over short-lived connections —
/// a peer daemon is just another client of the protocol.
///
/// Sync fires on demand ([`ClientMsg::SyncNow`]) or on the optional
/// period, from one dedicated thread — exports are cursor-based
/// ([`coca_core::CocaServer::export_delta`]), so a tick with nothing
/// new ships nothing. A delta whose ship fails is dropped (its cursor
/// already advanced): peer sync is an eventual-convergence path, not a
/// durability path — the authoritative Φ stays on the origin cell.
#[derive(Debug, Default)]
pub struct PeerSet {
    peers: Vec<(u32, String)>,
    /// Periodic sync interval; `None` = only explicit `SyncNow`.
    period: Option<Duration>,
}

impl PeerSet {
    /// Parses a `--peers` flag value: comma-separated `CELL=HOST:PORT`
    /// entries, e.g. `1=127.0.0.1:4001,2=127.0.0.1:4002`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut peers = Vec::new();
        for entry in s.split(',').filter(|e| !e.is_empty()) {
            let (cell, addr) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad --peers entry '{entry}' (want CELL=HOST:PORT)"))?;
            let cell: u32 = cell
                .parse()
                .map_err(|_| format!("bad peer cell id '{cell}'"))?;
            peers.push((cell, addr.to_string()));
        }
        Ok(Self {
            peers,
            period: None,
        })
    }

    /// Adds a periodic sync interval (milliseconds).
    pub fn with_period_ms(mut self, ms: u64) -> Self {
        self.period = Some(Duration::from_millis(ms.max(1)));
        self
    }

    /// Whether any peers are configured.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// One sync tick: exports a delta per peer and ships the non-empty
    /// ones. Returns how many shipped (and were acknowledged).
    pub fn sync_now(&self, core: &ServerCore) -> usize {
        let mut sent = 0;
        for (cell, addr) in &self.peers {
            let Some(delta) = core.export_delta(*cell) else {
                break; // sharded core: no peer sync
            };
            if !delta.is_empty() && ship_delta(addr, &delta) {
                sent += 1;
            }
        }
        sent
    }
}

/// Ships one delta to a peer daemon and waits for its ack.
fn ship_delta(addr: &str, delta: &PeerDelta) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    if write_message(&mut &stream, &ClientMsg::Peer(delta.clone())).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    matches!(
        read_message::<_, ServerMsg>(&mut reader),
        Ok(Some(ServerMsg::PeerAck(true)))
    )
}

/// How long a worker sleeps between channel polls (the shim's
/// `recv_timeout` is the only blocking receive available).
const WORKER_POLL: Duration = Duration::from_millis(50);
/// Acceptor poll interval on the non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// One unit of work: a decoded message plus the socket to answer on.
struct Job {
    conn: Arc<TcpStream>,
    msg: ClientMsg,
}

/// Monotone counters the daemon keeps while serving.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    uploads: AtomicU64,
    flushes: AtomicU64,
}

type ConnRegistry = Arc<Mutex<Vec<Arc<TcpStream>>>>;

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`DaemonHandle::shutdown`] (or send [`ClientMsg::Shutdown`]) and then
/// [`DaemonHandle::join`].
#[derive(Debug)]
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    core: Arc<ServerCore>,
    counters: Arc<Counters>,
    conns: ConnRegistry,
    acceptor: JoinHandle<Vec<JoinHandle<()>>>,
    workers: Vec<JoinHandle<()>>,
    /// The periodic peer-sync thread, when `--peers` has a period.
    sync: Option<JoinHandle<()>>,
}

/// What a daemon run amounted to, returned by [`DaemonHandle::join`].
#[derive(Debug)]
pub struct DaemonReport {
    /// Global-table digest after a final flush of any queued uploads.
    pub digest: u64,
    /// Cache requests served.
    pub requests: u64,
    /// Uploads ingested (merged or enqueued).
    pub uploads: u64,
    /// Explicit `Flush` messages handled.
    pub flushes: u64,
    /// The single-lock server, handed back for post-run inspection
    /// (durability detach, recovery asserts). `None` in sharded mode.
    pub server: Option<CocaServer>,
}

/// Starts serving `core` on `listener` with `workers` worker threads
/// (clamped to ≥ 1). Returns immediately; the daemon runs until a
/// [`ClientMsg::Shutdown`] arrives or [`DaemonHandle::shutdown`] is
/// called.
pub fn serve(
    core: ServerCore,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<DaemonHandle> {
    serve_with_peers(core, listener, workers, PeerSet::default())
}

/// [`serve`] with a peer topology: the daemon answers
/// [`ClientMsg::Peer`]/[`ClientMsg::SyncNow`], and — when the peer set
/// carries a period — runs a periodic sync thread that ships deltas to
/// every configured peer, the socket deployment of the virtual-time
/// engine's sync tick.
pub fn serve_with_peers(
    core: ServerCore,
    listener: TcpListener,
    workers: usize,
    peers: PeerSet,
) -> std::io::Result<DaemonHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let core = Arc::new(core);
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters::default());
    let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
    let peers = Arc::new(peers);

    let n = workers.max(1);
    let mut worker_handles = Vec::with_capacity(n);
    let mut senders = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Job>();
        senders.push(tx);
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let peers = Arc::clone(&peers);
        worker_handles.push(std::thread::spawn(move || {
            worker_loop(rx, &core, &stop, &counters, &peers)
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || accept_loop(&listener, senders, &conns, &stop))
    };

    let sync = peers.period.filter(|_| !peers.is_empty()).map(|period| {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        let peers = Arc::clone(&peers);
        std::thread::spawn(move || sync_loop(&core, &stop, &peers, period))
    });

    Ok(DaemonHandle {
        addr,
        stop,
        core,
        counters,
        conns,
        acceptor,
        workers: worker_handles,
        sync,
    })
}

/// The periodic peer-sync thread: checks the stop flag every poll tick
/// and fires a sync once per period.
fn sync_loop(
    core: &Arc<ServerCore>,
    stop: &Arc<AtomicBool>,
    peers: &Arc<PeerSet>,
    period: Duration,
) {
    let mut elapsed = Duration::ZERO;
    while !stop.load(Ordering::SeqCst) {
        let step = period.min(WORKER_POLL);
        std::thread::sleep(step);
        elapsed += step;
        if elapsed >= period {
            elapsed = Duration::ZERO;
            peers.sync_now(core);
        }
    }
}

impl DaemonHandle {
    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the stop flag, as a `Shutdown` message would.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the daemon to stop, tears the thread tree down in
    /// dependency order, and returns the final report. Blocks until a
    /// `Shutdown` message arrives or [`Self::shutdown`] is called.
    pub fn join(self) -> DaemonReport {
        let readers = self.acceptor.join().expect("acceptor thread panicked");
        // Unblock readers parked in a blocking read. Data already
        // written (e.g. the ShuttingDown ack) is flushed, not dropped:
        // TCP shutdown queues a FIN behind pending bytes.
        for conn in self
            .conns
            .lock()
            .expect("connection registry poisoned")
            .iter()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        // All senders are gone now; workers drain their queues and see
        // the disconnect.
        for w in self.workers {
            w.join().expect("worker thread panicked");
        }
        if let Some(s) = self.sync {
            s.join().expect("sync thread panicked");
        }
        let Ok(core) = Arc::try_unwrap(self.core) else {
            unreachable!("all worker references dropped at join")
        };
        // Leftover queued uploads (round-aligned tails) are flushed so
        // the report digest names a well-defined, fully-merged state.
        core.flush();
        DaemonReport {
            digest: core.digest(),
            requests: self.counters.requests.load(Ordering::Relaxed),
            uploads: self.counters.uploads.load(Ordering::Relaxed),
            flushes: self.counters.flushes.load(Ordering::Relaxed),
            server: core.into_server(),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    senders: Vec<Sender<Job>>,
    conns: &ConnRegistry,
    stop: &Arc<AtomicBool>,
) -> Vec<JoinHandle<()>> {
    let mut readers = Vec::new();
    let mut next_conn = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nodelay(true).is_err() || stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let write = match stream.try_clone() {
                    Ok(w) => Arc::new(w),
                    Err(_) => continue,
                };
                conns
                    .lock()
                    .expect("connection registry poisoned")
                    .push(Arc::clone(&write));
                let tx = senders[next_conn % senders.len()].clone();
                next_conn += 1;
                readers.push(std::thread::spawn(move || reader_loop(stream, &write, &tx)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
    readers
}

fn reader_loop(stream: TcpStream, write: &Arc<TcpStream>, tx: &Sender<Job>) {
    let mut reader = BufReader::new(stream);
    // A clean EOF (client hung up) or transport error / socket shutdown
    // during teardown ends the loop: either way this connection is done.
    while let Ok(Some(msg)) = read_message::<_, ClientMsg>(&mut reader) {
        let last = matches!(msg, ClientMsg::Shutdown);
        if tx
            .send(Job {
                conn: Arc::clone(write),
                msg,
            })
            .is_err()
            || last
        {
            break;
        }
    }
}

fn worker_loop(
    rx: Receiver<Job>,
    core: &Arc<ServerCore>,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
    peers: &Arc<PeerSet>,
) {
    loop {
        match rx.recv_timeout(WORKER_POLL) {
            Ok(job) => handle_job(job, core, stop, counters, peers),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn handle_job(
    job: Job,
    core: &ServerCore,
    stop: &AtomicBool,
    counters: &Counters,
    peers: &PeerSet,
) {
    let mut is_shutdown = false;
    let reply = match job.msg {
        ClientMsg::Hello => ServerMsg::Profile(core.base_hit_profile()),
        ClientMsg::Request(req) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            ServerMsg::Alloc(core.handle_request(&req))
        }
        ClientMsg::Upload(up) => {
            counters.uploads.fetch_add(1, Ordering::Relaxed);
            core.handle_upload(up);
            ServerMsg::UploadAck(core.pending_uploads())
        }
        ClientMsg::Flush => {
            counters.flushes.fetch_add(1, Ordering::Relaxed);
            core.flush();
            ServerMsg::FlushDone
        }
        ClientMsg::Digest => ServerMsg::Digest(core.digest()),
        ClientMsg::SetWatermark(n) => {
            core.set_flush_watermark(n);
            ServerMsg::WatermarkSet
        }
        ClientMsg::Peer(delta) => ServerMsg::PeerAck(core.absorb_peer(&delta)),
        ClientMsg::SyncNow => ServerMsg::SyncDone(peers.sync_now(core)),
        ClientMsg::Shutdown => {
            is_shutdown = true;
            ServerMsg::ShuttingDown
        }
    };
    // The ack goes out before the stop flag rises, so the shutting-down
    // client sees its reply; a peer that already hung up is not an
    // error worth dying over.
    let mut w: &TcpStream = &job.conn;
    let _ = write_message(&mut w, &reply);
    if is_shutdown {
        stop.store(true, Ordering::SeqCst);
    }
}
