//! The daemon's server core: one CoCa server state behind one of two
//! locking disciplines, plus the [`RunSpec`] both ends of a deployment
//! share so the daemon and its clients agree on model, dataset and
//! seeding (and therefore on the genesis table digest).

use std::sync::Mutex;

use coca_core::proto::{CacheAllocation, CacheRequest, PeerDelta, UpdateUpload};
use coca_core::{CocaConfig, CocaServer, FlushPolicy, MergeMode, ShardedServer};
use coca_data::DatasetSpec;
use coca_math::Precision;
use coca_model::{ModelId, ModelRuntime};
use coca_sim::SeedTree;

/// How the daemon guards the server state across its worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// One big `Mutex<CocaServer>` — every request and upload
    /// serializes. The trivially correct baseline (and the only mode
    /// that supports the durability hooks), the comparison arm the
    /// sharded numbers are measured against.
    Single,
    /// [`ShardedServer`]: per-layer `RwLock`s, Φ behind its own mutex,
    /// a single-flusher gate for merges — concurrent requests on
    /// disjoint layers never serialize.
    Sharded,
}

impl LockMode {
    /// Parses a CLI flag value (`single` / `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "single" => Some(LockMode::Single),
            "sharded" => Some(LockMode::Sharded),
            _ => None,
        }
    }

    /// Canonical flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            LockMode::Single => "single",
            LockMode::Sharded => "sharded",
        }
    }
}

/// Everything a daemon and its clients must agree on to end up in the
/// same deterministic world: model, class subset, master seed, and the
/// upload-pipeline shape. `cocad` and `coca-loadgen` both build their
/// runtime from this (same flags on both command lines).
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// DNN architecture the fleet runs.
    pub model: ModelId,
    /// UCF-101 class-subset size (the task's label space).
    pub classes: usize,
    /// Master seed for the [`SeedTree`].
    pub seed: u64,
    /// Upload pipeline: merge on arrival or queue-and-flush.
    pub merge_mode: MergeMode,
    /// Queue-and-flush only: drain at the fleet watermark instead of at
    /// every request boundary.
    pub round_aligned: bool,
    /// Numeric precision of the global table and every wire payload:
    /// allocations extract from (and uploads snap onto) this grid, so a
    /// quantized daemon serves f16/i8 tables over TCP.
    pub precision: Precision,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self {
            model: ModelId::ResNet101,
            classes: 30,
            seed: 77,
            merge_mode: MergeMode::PerUpload,
            round_aligned: false,
            precision: Precision::F32,
        }
    }
}

/// Parses a model flag value by its canonical [`ModelId::name`].
pub fn parse_model(s: &str) -> Option<ModelId> {
    [
        ModelId::Vgg16Bn,
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::ResNet152,
        ModelId::AstBase,
    ]
    .into_iter()
    .find(|m| m.name() == s)
}

/// Parses a merge-mode flag value (`per_upload` / `queue_and_flush`).
pub fn parse_merge_mode(s: &str) -> Option<MergeMode> {
    match s {
        "per_upload" => Some(MergeMode::PerUpload),
        "queue_and_flush" => Some(MergeMode::QueueAndFlush),
        _ => None,
    }
}

impl RunSpec {
    /// Consumes one `--flag value` pair if it belongs to the spec
    /// (`--model`, `--classes`, `--seed`, `--merge-mode`,
    /// `--round-aligned`, `--precision`). Both `cocad` and `coca-loadgen` route their
    /// argument loops through this, so the two command lines can never
    /// drift apart on what defines the deterministic world.
    pub fn apply_flag(&mut self, flag: &str, value: &str) -> Result<bool, String> {
        match flag {
            "--model" => {
                self.model =
                    parse_model(value).ok_or_else(|| format!("unknown model '{value}'"))?;
            }
            "--classes" => {
                self.classes = value
                    .parse()
                    .map_err(|_| format!("bad --classes '{value}'"))?;
            }
            "--seed" => {
                self.seed = value.parse().map_err(|_| format!("bad --seed '{value}'"))?;
            }
            "--merge-mode" => {
                self.merge_mode = parse_merge_mode(value)
                    .ok_or_else(|| format!("unknown merge mode '{value}'"))?;
            }
            "--round-aligned" => {
                self.round_aligned = value
                    .parse()
                    .map_err(|_| format!("bad --round-aligned '{value}' (true/false)"))?;
            }
            "--precision" => {
                self.precision = Precision::parse(value)
                    .ok_or_else(|| format!("unknown precision '{value}' (f32/f16/i8)"))?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Materializes the spec: model runtime, CoCa config, seed tree —
    /// the exact triple [`CocaServer::new`] and
    /// [`ShardedServer::new`] seed from.
    pub fn build(&self) -> (ModelRuntime, CocaConfig, SeedTree) {
        let dataset = DatasetSpec::ucf101().subset(self.classes);
        let seeds = SeedTree::new(self.seed);
        let rt = ModelRuntime::new(self.model, &dataset, &seeds);
        let mut cfg = CocaConfig::for_model(self.model)
            .with_merge_mode(self.merge_mode)
            .with_precision(self.precision);
        if self.round_aligned {
            cfg = cfg.with_flush_policy(FlushPolicy::RoundAligned);
        }
        (rt, cfg, seeds)
    }
}

enum CoreInner {
    // Both boxed: there is exactly one core per daemon, and the inline
    // sizes differ wildly (the full server state vs a handle struct).
    Single(Box<Mutex<CocaServer>>),
    Sharded(Box<ShardedServer>),
}

/// The server state the daemon's workers share — a [`CocaServer`]
/// behind one mutex or a [`ShardedServer`], with one `&self` handler
/// API either way so the serving loop is lock-discipline-agnostic.
pub struct ServerCore {
    inner: CoreInner,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.inner {
            CoreInner::Single(_) => "ServerCore::Single",
            CoreInner::Sharded(_) => "ServerCore::Sharded",
        })
    }
}

impl ServerCore {
    /// Builds a fresh core from the deterministic triple.
    pub fn new(rt: &ModelRuntime, cfg: CocaConfig, seeds: &SeedTree, lock: LockMode) -> Self {
        match lock {
            LockMode::Single => Self::single(CocaServer::new(rt, cfg, seeds)),
            LockMode::Sharded => Self::sharded(ShardedServer::new(rt, cfg, seeds)),
        }
    }

    /// Wraps an existing single-lock server — the path that supports
    /// pre-attached durability (snapshot + WAL), as in the
    /// `distributed_tcp` example.
    pub fn single(server: CocaServer) -> Self {
        Self {
            inner: CoreInner::Single(Box::new(Mutex::new(server))),
        }
    }

    /// Wraps an existing sharded server.
    pub fn sharded(server: ShardedServer) -> Self {
        Self {
            inner: CoreInner::Sharded(Box::new(server)),
        }
    }

    /// Which locking discipline this core runs.
    pub fn lock_mode(&self) -> LockMode {
        match self.inner {
            CoreInner::Single(_) => LockMode::Single,
            CoreInner::Sharded(_) => LockMode::Sharded,
        }
    }

    /// The shared-dataset standalone hit-ratio profile (initial R).
    pub fn base_hit_profile(&self) -> Vec<f64> {
        match &self.inner {
            CoreInner::Single(s) => s
                .lock()
                .expect("server poisoned")
                .base_hit_profile()
                .to_vec(),
            CoreInner::Sharded(s) => s.base_hit_profile().to_vec(),
        }
    }

    /// §IV.A step 1+2: ACA allocation + personalized extraction.
    pub fn handle_request(&self, req: &CacheRequest) -> CacheAllocation {
        match &self.inner {
            CoreInner::Single(s) => s.lock().expect("server poisoned").handle_request(req).0,
            CoreInner::Sharded(s) => s.handle_request(req),
        }
    }

    /// §IV.A step 3: routes the upload through the configured merge
    /// mode (immediate or queue-and-flush).
    pub fn handle_upload(&self, up: UpdateUpload) {
        match &self.inner {
            CoreInner::Single(s) => {
                s.lock().expect("server poisoned").handle_upload(up);
            }
            CoreInner::Sharded(s) => s.handle_upload(up),
        }
    }

    /// Drains the pending-upload queue (no-op when empty).
    pub fn flush(&self) {
        match &self.inner {
            CoreInner::Single(s) => s.lock().expect("server poisoned").flush_pending(),
            CoreInner::Sharded(s) => s.flush_pending(),
        }
    }

    /// Uploads queued and not yet merged.
    pub fn pending_uploads(&self) -> usize {
        match &self.inner {
            CoreInner::Single(s) => s.lock().expect("server poisoned").pending_uploads(),
            CoreInner::Sharded(s) => s.pending_uploads(),
        }
    }

    /// Sets the round-aligned flush watermark.
    pub fn set_flush_watermark(&self, live_members: usize) {
        match &self.inner {
            CoreInner::Single(s) => s
                .lock()
                .expect("server poisoned")
                .set_flush_watermark(live_members),
            CoreInner::Sharded(s) => s.set_flush_watermark(live_members),
        }
    }

    /// Builds the peer-sync delta for peer cell `to_peer` (see
    /// [`CocaServer::export_delta`]). Peer sync runs on the single-lock
    /// core only — the sharded core's per-layer locks cannot take the
    /// whole-table consistent view a delta export needs — so `cocad`
    /// validates `--peers` against the lock mode at startup. `None` in
    /// sharded mode.
    pub fn export_delta(&self, to_peer: u32) -> Option<PeerDelta> {
        match &self.inner {
            CoreInner::Single(s) => Some(s.lock().expect("server poisoned").export_delta(to_peer)),
            CoreInner::Sharded(_) => None,
        }
    }

    /// Merges a peer cell's delta ([`CocaServer::absorb_peer`]). `false`
    /// (delta not merged) in sharded mode.
    pub fn absorb_peer(&self, delta: &PeerDelta) -> bool {
        match &self.inner {
            CoreInner::Single(s) => {
                s.lock().expect("server poisoned").absorb_peer(delta);
                true
            }
            CoreInner::Sharded(_) => false,
        }
    }

    /// Names this core's cell in a peer topology (`cocad --cell-id`).
    /// No-op in sharded mode (which does not run peer sync).
    pub fn set_cell_id(&self, id: u32) {
        if let CoreInner::Single(s) = &self.inner {
            s.lock().expect("server poisoned").set_cell_id(id);
        }
    }

    /// The global-table digest ([`coca_core::GlobalCacheTable::digest`])
    /// of a consistent snapshot. Pending uploads are not included.
    pub fn digest(&self) -> u64 {
        match &self.inner {
            CoreInner::Single(s) => s.lock().expect("server poisoned").global().digest(),
            CoreInner::Sharded(s) => s.digest(),
        }
    }

    /// Unwraps the single-lock server back out (durability detach,
    /// recovery asserts). `None` in sharded mode.
    pub fn into_server(self) -> Option<CocaServer> {
        match self.inner {
            CoreInner::Single(s) => Some(s.into_inner().expect("server poisoned")),
            CoreInner::Sharded(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_lock_modes_start_from_the_same_digest() {
        let spec = RunSpec {
            classes: 15,
            ..RunSpec::default()
        };
        let (rt, cfg, seeds) = spec.build();
        let single = ServerCore::new(&rt, cfg, &seeds, LockMode::Single);
        let sharded = ServerCore::new(&rt, cfg, &seeds, LockMode::Sharded);
        assert_eq!(single.lock_mode(), LockMode::Single);
        assert_eq!(sharded.lock_mode(), LockMode::Sharded);
        assert_eq!(single.digest(), sharded.digest());
        assert_eq!(single.base_hit_profile(), sharded.base_hit_profile());
        assert!(single.into_server().is_some());
        assert!(sharded.into_server().is_none());
    }

    #[test]
    fn lock_mode_flag_round_trips() {
        for mode in [LockMode::Single, LockMode::Sharded] {
            assert_eq!(LockMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(LockMode::parse("spin"), None);
    }
}
