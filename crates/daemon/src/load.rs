//! The load generator: a blocking protocol client, closed- and
//! open-loop multi-client drivers, and the sequential verify mode that
//! pins the daemon's digest against an in-process reference server.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crossbeam::channel::unbounded;

use coca_metrics::LatencyHistogram;
use coca_net::{read_message, write_message, FrameError};

use crate::msg::{ClientMsg, ServerMsg};
use crate::workload::Workload;

/// Client-side read timeout: generous enough for any loopback run,
/// small enough that a wedged daemon fails a CI job instead of hanging
/// it. A timeout mid-conversation is fatal (frames are not resumable
/// across it), never retried.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// A blocking protocol client: one request in flight, replies in order.
#[derive(Debug)]
pub struct DaemonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonClient {
    /// Connects to a running daemon.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one message without waiting for the reply.
    pub fn send(&mut self, msg: &ClientMsg) -> Result<(), FrameError> {
        write_message(&mut self.writer, msg)
    }

    /// Receives the next reply; a clean EOF mid-conversation is an
    /// error (the daemon always acks before closing).
    pub fn recv(&mut self) -> Result<ServerMsg, FrameError> {
        read_message(&mut self.reader)?
            .ok_or_else(|| FrameError::Codec("daemon closed the connection mid-call".into()))
    }

    /// One round trip.
    pub fn call(&mut self, msg: &ClientMsg) -> Result<ServerMsg, FrameError> {
        self.send(msg)?;
        self.recv()
    }

    /// `Hello` handshake: fetches the base hit-ratio profile.
    pub fn hello(&mut self) -> Result<Vec<f64>, FrameError> {
        match self.call(&ClientMsg::Hello)? {
            ServerMsg::Profile(p) => Ok(p),
            other => Err(FrameError::Codec(format!(
                "expected Profile, daemon answered {other:?}"
            ))),
        }
    }

    /// Splits into independent read/write halves (open-loop mode).
    fn into_split(self) -> (BufReader<TcpStream>, TcpStream) {
        (self.reader, self.writer)
    }
}

/// How clients pace their operations.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Closed loop: send, wait for the reply, think, repeat — offered
    /// load adapts to service rate; latency is pure service time.
    Closed {
        /// Pause between a round's allocation and its upload.
        think: Duration,
    },
    /// Open loop: fire on a fixed schedule per client regardless of
    /// outstanding replies — latency includes queueing delay, the
    /// honest tail under overload.
    Open {
        /// Gap between consecutive sends per client.
        period: Duration,
    },
}

/// What a load run measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Per-request wall-clock latency (request *and* upload round
    /// trips), exactly merged across client threads.
    pub hist: LatencyHistogram,
    /// Operations completed (requests + uploads).
    pub ops: u64,
    /// Wall clock from first send to last reply, across the fleet.
    pub wall: Duration,
}

impl LoadReport {
    /// Completed operations per second.
    pub fn throughput_ops_s(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn fe(e: FrameError) -> String {
    format!("transport: {e}")
}

fn io(e: std::io::Error) -> String {
    format!("io: {e}")
}

/// Runs `wl` against a daemon at `addr` with one thread per client and
/// returns the merged latency histogram. Closed loop waits each reply
/// out; open loop pairs in-order replies with send timestamps on a
/// second thread per client.
pub fn run_load(addr: SocketAddr, wl: &Workload, arrival: Arrival) -> Result<LoadReport, String> {
    let (rt, _, seeds) = wl.spec.build();
    let started = Instant::now();
    let hists: Vec<Result<LatencyHistogram, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..wl.clients)
            .map(|k| {
                let rt = &rt;
                let seeds = &seeds;
                scope.spawn(move || match arrival {
                    Arrival::Closed { think } => run_closed_client(addr, wl, rt, seeds, k, think),
                    Arrival::Open { period } => run_open_client(addr, wl, rt, seeds, k, period),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client thread panicked"))
            .collect()
    });
    let wall = started.elapsed();
    let mut merged = LatencyHistogram::new();
    for h in hists {
        merged.merge(&h?);
    }
    Ok(LoadReport {
        ops: merged.count(),
        hist: merged,
        wall,
    })
}

fn run_closed_client(
    addr: SocketAddr,
    wl: &Workload,
    rt: &coca_model::ModelRuntime,
    seeds: &coca_sim::SeedTree,
    k: usize,
    think: Duration,
) -> Result<LatencyHistogram, String> {
    let mut client = DaemonClient::connect(addr).map_err(io)?;
    let profile = client.hello().map_err(fe)?;
    let mut hist = LatencyHistogram::new();
    for round in 0..wl.rounds {
        let req = ClientMsg::Request(wl.request(rt, &profile, k, round));
        let t = Instant::now();
        match client.call(&req).map_err(fe)? {
            ServerMsg::Alloc(_) => hist.record_duration(t.elapsed()),
            other => return Err(format!("expected Alloc, got {other:?}")),
        }
        if !think.is_zero() {
            std::thread::sleep(think);
        }
        let up = ClientMsg::Upload(wl.upload(rt, seeds, k, round));
        let t = Instant::now();
        match client.call(&up).map_err(fe)? {
            ServerMsg::UploadAck(_) => hist.record_duration(t.elapsed()),
            other => return Err(format!("expected UploadAck, got {other:?}")),
        }
    }
    Ok(hist)
}

fn run_open_client(
    addr: SocketAddr,
    wl: &Workload,
    rt: &coca_model::ModelRuntime,
    seeds: &coca_sim::SeedTree,
    k: usize,
    period: Duration,
) -> Result<LatencyHistogram, String> {
    let mut client = DaemonClient::connect(addr).map_err(io)?;
    let profile = client.hello().map_err(fe)?;
    let (mut reader, mut writer) = client.into_split();
    let expected = wl.rounds * 2;
    let (ts_tx, ts_rx) = unbounded::<Instant>();
    std::thread::scope(|scope| {
        // Reply half: replies come back in send order (one worker per
        // connection), so FIFO-pairing each with its send instant is
        // exact. Send instants always land in the channel before the
        // reply can arrive.
        let collector = scope.spawn(move || -> Result<LatencyHistogram, String> {
            let mut hist = LatencyHistogram::new();
            for _ in 0..expected {
                let sent = ts_rx
                    .recv_timeout(CLIENT_READ_TIMEOUT)
                    .map_err(|e| format!("send-timestamp channel: {e:?}"))?;
                let reply: ServerMsg = read_message(&mut reader)
                    .map_err(fe)?
                    .ok_or("daemon closed the connection mid-run")?;
                match reply {
                    ServerMsg::Alloc(_) | ServerMsg::UploadAck(_) => {
                        hist.record_duration(sent.elapsed());
                    }
                    other => return Err(format!("unexpected reply {other:?}")),
                }
            }
            Ok(hist)
        });
        // Send half: fire on the schedule no matter how far behind the
        // replies are.
        let start = Instant::now();
        let mut seq = 0u32;
        for round in 0..wl.rounds {
            let ops = [
                ClientMsg::Request(wl.request(rt, &profile, k, round)),
                ClientMsg::Upload(wl.upload(rt, seeds, k, round)),
            ];
            for op in ops {
                let target = start + period * seq;
                seq += 1;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                ts_tx
                    .send(Instant::now())
                    .map_err(|_| "reply collector died early".to_string())?;
                write_message(&mut writer, &op).map_err(fe)?;
            }
        }
        drop(ts_tx);
        collector.join().expect("reply collector panicked")
    })
}

/// Outcome of [`run_verify`]: both digests, for reporting either way.
#[derive(Debug)]
pub struct VerifyOutcome {
    /// The daemon's post-flush table digest.
    pub daemon_digest: u64,
    /// The in-process reference server's post-flush digest.
    pub local_digest: u64,
    /// Operations driven.
    pub ops: u64,
}

impl VerifyOutcome {
    /// Did the daemon land exactly the reference state?
    pub fn matches(&self) -> bool {
        self.daemon_digest == self.local_digest
    }
}

/// Drives the workload **sequentially** (one operation in flight,
/// round-major / client-minor) against the daemon while replaying the
/// identical sequence on an in-process [`coca_core::CocaServer`], then
/// compares flushed table digests. This is the determinism contract:
/// the network, framing, worker pool and sharded locks must be
/// digest-invisible when arrival order is pinned.
pub fn run_verify(addr: SocketAddr, wl: &Workload) -> Result<VerifyOutcome, String> {
    let (rt, cfg, seeds) = wl.spec.build();
    let mut reference = coca_core::CocaServer::new(&rt, cfg, &seeds);
    let mut client = DaemonClient::connect(addr).map_err(io)?;
    let profile = client.hello().map_err(fe)?;
    if profile != reference.base_hit_profile() {
        return Err("daemon and reference disagree on the base hit profile — \
                    different RunSpec on the two ends?"
            .to_string());
    }
    if wl.spec.round_aligned {
        reference.set_flush_watermark(wl.clients);
        match client
            .call(&ClientMsg::SetWatermark(wl.clients))
            .map_err(fe)?
        {
            ServerMsg::WatermarkSet => {}
            other => return Err(format!("expected WatermarkSet, got {other:?}")),
        }
    }
    let mut ops = 0u64;
    for round in 0..wl.rounds {
        for k in 0..wl.clients {
            let req = wl.request(&rt, &profile, k, round);
            let (want, _) = reference.handle_request(&req);
            match client.call(&ClientMsg::Request(req)).map_err(fe)? {
                ServerMsg::Alloc(got) => {
                    if got.cache.total_bytes() != want.cache.total_bytes() {
                        return Err(format!(
                            "allocation diverged at round {round} client {k}: \
                             {} vs {} bytes",
                            got.cache.total_bytes(),
                            want.cache.total_bytes()
                        ));
                    }
                }
                other => return Err(format!("expected Alloc, got {other:?}")),
            }
            let up = wl.upload(&rt, &seeds, k, round);
            reference.handle_upload(up.clone());
            match client.call(&ClientMsg::Upload(up)).map_err(fe)? {
                ServerMsg::UploadAck(queued) => {
                    if queued != reference.pending_uploads() {
                        return Err(format!(
                            "pending-queue depth diverged at round {round} client {k}: \
                             {queued} vs {}",
                            reference.pending_uploads()
                        ));
                    }
                }
                other => return Err(format!("expected UploadAck, got {other:?}")),
            }
            ops += 2;
        }
    }
    reference.flush_pending();
    match client.call(&ClientMsg::Flush).map_err(fe)? {
        ServerMsg::FlushDone => {}
        other => return Err(format!("expected FlushDone, got {other:?}")),
    }
    let daemon_digest = match client.call(&ClientMsg::Digest).map_err(fe)? {
        ServerMsg::Digest(d) => d,
        other => return Err(format!("expected Digest, got {other:?}")),
    };
    Ok(VerifyOutcome {
        daemon_digest,
        local_digest: reference.global().digest(),
        ops,
    })
}

/// Asks the daemon to shut down, tolerating a teardown race on the ack
/// (the socket may drop right after the flag rises). Returns whether a
/// clean `ShuttingDown` ack came back.
pub fn shutdown_daemon(addr: SocketAddr) -> bool {
    let Ok(mut client) = DaemonClient::connect(addr) else {
        return false;
    };
    matches!(
        client.call(&ClientMsg::Shutdown),
        Ok(ServerMsg::ShuttingDown)
    )
}
