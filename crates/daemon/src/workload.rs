//! Deterministic workload synthesis shared by the load generator, the
//! `exp_daemon` experiment, and the digest-equivalence tests.
//!
//! Every message is a pure function of `(RunSpec, client, round)` —
//! the daemon and an in-process reference server fed the same
//! [`Workload`] in the same order therefore see byte-identical inputs,
//! which is what makes the loopback digest-equivalence check meaningful.

use rand::Rng;

use coca_core::collect::UpdateTable;
use coca_core::proto::{CacheRequest, UpdateUpload};
use coca_math::random_unit;
use coca_model::ModelRuntime;
use coca_sim::SeedTree;

use crate::core::RunSpec;

/// Fraction of classes a client's round touches (1 in `TOUCH_EVERY`),
/// mirroring the long-tail hot sets the engine produces.
const TOUCH_EVERY: usize = 4;
/// Layer stride of a round's collected cells.
const LAYER_STRIDE: usize = 3;

/// A deterministic multi-round fleet workload against one [`RunSpec`].
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// The world both ends agree on.
    pub spec: RunSpec,
    /// Fleet size.
    pub clients: usize,
    /// Rounds per client.
    pub rounds: usize,
}

impl Workload {
    /// Π for every request: 1/8 of the task's full cache — the paper's
    /// Fig. 1(a) sweet spot, same as the engine's auto-budget.
    pub fn budget_bytes(&self, rt: &ModelRuntime) -> u64 {
        (rt.arch().full_cache_bytes(rt.num_classes()) / 8) as u64
    }

    /// The cache request client `k` sends in `round`. τ is a spread of
    /// per-class recencies that varies by client and round; R is the
    /// profile the daemon handed out at `Hello`.
    pub fn request(
        &self,
        rt: &ModelRuntime,
        profile: &[f64],
        k: usize,
        round: usize,
    ) -> CacheRequest {
        let classes = rt.num_classes();
        CacheRequest {
            client_id: k as u64,
            round: round as u64,
            timestamps: (0..classes)
                .map(|c| ((c * 13 + k * 7 + round * 3) % 60) as u32)
                .collect(),
            hit_ratio: profile.to_vec(),
            budget_bytes: self.budget_bytes(rt),
        }
    }

    /// The end-of-round upload for client `k` in `round`: unit feature
    /// centers on the client's class/layer touch set with real per-layer
    /// dimensions, plus a per-round φ — all drawn from the
    /// `("load-upload", k·rounds+round)` branch of the seed tree.
    pub fn upload(
        &self,
        rt: &ModelRuntime,
        seeds: &SeedTree,
        k: usize,
        round: usize,
    ) -> UpdateUpload {
        let classes = rt.num_classes();
        let layers = rt.num_cache_points();
        let idx = (k * self.rounds + round) as u64;
        let mut rng = seeds.child_idx("load-upload", idx).rng();
        let mut table = UpdateTable::new();
        for c in 0..classes {
            if (c + k + round).is_multiple_of(TOUCH_EVERY) {
                for l in (0..layers).step_by(LAYER_STRIDE) {
                    let v = random_unit(&mut rng, rt.feature_dim(l));
                    table.absorb(c, l, &v, 0.95);
                }
            }
        }
        let frequency: Vec<u64> = (0..classes).map(|_| rng.gen_range(1u64..30)).collect();
        // Under a quantized spec the sender snaps every vector onto the
        // precision grid before upload, exactly like the engine's
        // clients — the daemon's merge then sees the dequantized codes.
        if self.spec.precision != coca_math::Precision::F32 {
            table.quantize_in_place(self.spec.precision);
        }
        UpdateUpload {
            client_id: k as u64,
            round: round as u64,
            table,
            frequency,
            precision: self.spec.precision,
        }
    }

    /// Total request+upload operations across the fleet.
    pub fn total_ops(&self) -> u64 {
        (self.clients * self.rounds * 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_core::proto::{CacheRequest as _CacheRequest, UpdateUpload as _UpdateUpload};
    use coca_net::WireSize;

    #[test]
    fn workload_is_a_pure_function_of_its_coordinates() {
        let spec = RunSpec {
            classes: 12,
            ..RunSpec::default()
        };
        let (rt, _, seeds) = spec.build();
        let wl = Workload {
            spec,
            clients: 3,
            rounds: 2,
        };
        let profile = vec![0.5; rt.num_cache_points()];
        let a: _CacheRequest = wl.request(&rt, &profile, 1, 1);
        let b = wl.request(&rt, &profile, 1, 1);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let ua: _UpdateUpload = wl.upload(&rt, &seeds, 2, 0);
        let ub = wl.upload(&rt, &seeds, 2, 0);
        assert_eq!(
            serde_json::to_string(&ua).unwrap(),
            serde_json::to_string(&ub).unwrap()
        );
        // Different coordinates draw different branches.
        let uc = wl.upload(&rt, &seeds, 2, 1);
        assert_ne!(
            serde_json::to_string(&ua).unwrap(),
            serde_json::to_string(&uc).unwrap()
        );
        assert!(ua.wire_bytes() > 0 && a.wire_bytes() > 0);
        assert_eq!(wl.total_ops(), 12);
    }
}
