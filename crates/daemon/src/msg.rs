//! The daemon's wire protocol: one serde enum per direction, carried in
//! the same `[u32 BE length][JSON]` frames as every other transport in
//! the workspace ([`coca_net::wire`]).
//!
//! Every client message is acknowledged with exactly one server message,
//! and a connection's replies come back in request order (the daemon
//! pins each connection to one worker). That makes the protocol usable
//! both closed-loop (send, wait, repeat) and open-loop (fire on a
//! schedule, pair replies FIFO with send timestamps).

use serde::{Deserialize, Serialize};

use coca_core::proto::{CacheAllocation, CacheRequest, PeerDelta, UpdateUpload};

/// Client → daemon messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Introduce yourself; answered with [`ServerMsg::Profile`] — the
    /// shared-dataset standalone hit-ratio profile a fresh client needs
    /// to fill `CacheRequest::hit_ratio` before it has local estimates.
    Hello,
    /// §IV.A step 1: request a personalized cache allocation.
    Request(CacheRequest),
    /// §IV.A step 3: end-of-round update upload.
    Upload(UpdateUpload),
    /// Force a drain of the pending-upload queue (a no-op under
    /// per-upload merging or an empty queue).
    Flush,
    /// Ask for the global table digest. Does **not** flush: queued,
    /// unmerged uploads are not part of the table — send [`Self::Flush`]
    /// first when comparing against a flushed reference.
    Digest,
    /// Set the round-aligned flush watermark (live-fleet size).
    SetWatermark(usize),
    /// A peer cell's table delta (`cocad --peers` sync): merged through
    /// [`coca_core::CocaServer::absorb_peer`]. Answered with
    /// [`ServerMsg::PeerAck`].
    Peer(PeerDelta),
    /// Trigger one outbound peer-sync tick now: the daemon exports a
    /// delta to each configured peer and ships it over that peer's
    /// connection. Answered with [`ServerMsg::SyncDone`] carrying the
    /// number of non-empty deltas sent.
    SyncNow,
    /// Stop the daemon: acknowledged with [`ServerMsg::ShuttingDown`],
    /// then the whole process winds down (acceptor, readers, workers).
    Shutdown,
}

/// Daemon → client replies, one per [`ClientMsg`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Reply to [`ClientMsg::Hello`]: the base hit-ratio profile.
    Profile(Vec<f64>),
    /// Reply to [`ClientMsg::Request`].
    Alloc(CacheAllocation),
    /// Reply to [`ClientMsg::Upload`], carrying the pending-queue depth
    /// after this upload (0 under per-upload merging). A tuple variant
    /// because the vendored serde shim's derive does not cover braced
    /// enum variants.
    UploadAck(usize),
    /// Reply to [`ClientMsg::Flush`].
    FlushDone,
    /// Reply to [`ClientMsg::Digest`].
    Digest(u64),
    /// Reply to [`ClientMsg::SetWatermark`].
    WatermarkSet,
    /// Reply to [`ClientMsg::Peer`]: `true` if the delta merged (always,
    /// on a single-lock core; `false` from a sharded core, which does
    /// not run peer sync).
    PeerAck(bool),
    /// Reply to [`ClientMsg::SyncNow`]: non-empty deltas shipped.
    SyncDone(usize),
    /// Reply to [`ClientMsg::Shutdown`].
    ShuttingDown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_messages_round_trip_through_the_frame_codec() {
        let msgs = [
            ClientMsg::Hello,
            ClientMsg::Flush,
            ClientMsg::Digest,
            ClientMsg::SetWatermark(12),
            ClientMsg::Shutdown,
        ];
        for m in msgs {
            let frame = coca_net::encode_frame(&m).unwrap();
            let back: ClientMsg = coca_net::decode_message(&frame).unwrap();
            assert_eq!(
                format!("{m:?}"),
                format!("{back:?}"),
                "client message mutated in transit"
            );
        }
        let frame = coca_net::encode_frame(&ServerMsg::Digest(0xDEAD_BEEF)).unwrap();
        match coca_net::decode_message(&frame).unwrap() {
            ServerMsg::Digest(d) => assert_eq!(d, 0xDEAD_BEEF),
            other => panic!("wrong variant {other:?}"),
        }
    }
}
