//! `coca-loadgen` — closed-/open-loop load generator for `cocad`.
//!
//! Drives the daemon with one thread per client, records per-request
//! wall-clock latency into the exactly mergeable histogram, and prints
//! p50 / p99 / p999 plus throughput. `--verify` instead drives the
//! workload sequentially against both the daemon and an in-process
//! reference server and compares flushed table digests (exit code 1 on
//! divergence).
//!
//! ```sh
//! coca-loadgen --addr "$(cat /tmp/cocad.addr)" --clients 8 --rounds 20
//! coca-loadgen --addr ... --open-period-us 2000     # open loop
//! coca-loadgen --addr ... --verify --shutdown       # CI smoke
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use coca_daemon::msg::{ClientMsg, ServerMsg};
use coca_daemon::{
    run_load, run_verify, shutdown_daemon, Arrival, DaemonClient, RunSpec, Workload,
};

const USAGE: &str = "\
coca-loadgen — load generator for cocad

USAGE: coca-loadgen --addr HOST:PORT [FLAGS]

Load shape:
  --clients N          concurrent clients (default 8)
  --rounds N           protocol rounds per client (default 20)
  --think-ms N         closed-loop think time between a round's
                       allocation and its upload (default 0)
  --open-period-us N   switch to open loop: one send per client every
                       N microseconds
  --verify             sequential digest-equivalence check instead of
                       a load run (exit 1 on divergence)
  --watermark          send SetWatermark(clients) before the run
                       (round-aligned daemons)
  --shutdown           send Shutdown when done

World (must match the daemon):
  --model NAME / --classes N / --seed N / --merge-mode MODE /
  --round-aligned BOOL   (same defaults as cocad)
";

struct Opts {
    addr: Option<SocketAddr>,
    clients: usize,
    rounds: usize,
    think: Duration,
    open_period: Option<Duration>,
    verify: bool,
    watermark: bool,
    shutdown: bool,
    spec: RunSpec,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: None,
        clients: 8,
        rounds: 20,
        think: Duration::ZERO,
        open_period: None,
        verify: false,
        watermark: false,
        shutdown: false,
        spec: RunSpec::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--verify" => {
                opts.verify = true;
                continue;
            }
            "--watermark" => {
                opts.watermark = true;
                continue;
            }
            "--shutdown" => {
                opts.shutdown = true;
                continue;
            }
            _ => {}
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        if opts.spec.apply_flag(&flag, &value)? {
            continue;
        }
        match flag.as_str() {
            "--addr" => {
                opts.addr = Some(value.parse().map_err(|_| format!("bad --addr '{value}'"))?);
            }
            "--clients" => {
                opts.clients = value
                    .parse()
                    .map_err(|_| format!("bad --clients '{value}'"))?;
            }
            "--rounds" => {
                opts.rounds = value
                    .parse()
                    .map_err(|_| format!("bad --rounds '{value}'"))?;
            }
            "--think-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --think-ms '{value}'"))?;
                opts.think = Duration::from_millis(ms);
            }
            "--open-period-us" => {
                let us: u64 = value
                    .parse()
                    .map_err(|_| format!("bad --open-period-us '{value}'"))?;
                opts.open_period = Some(Duration::from_micros(us));
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if opts.addr.is_none() {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(opts)
}

fn fmt_q(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |ms| format!("{ms:.3}"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let addr = opts.addr.expect("checked in parse_args");
    let wl = Workload {
        spec: opts.spec,
        clients: opts.clients,
        rounds: opts.rounds,
    };

    let ok = if opts.verify {
        match run_verify(addr, &wl) {
            Ok(outcome) => {
                println!(
                    "verify: {} ops sequential over loopback — daemon digest \
                     {:016x}, in-process reference {:016x} — {}",
                    outcome.ops,
                    outcome.daemon_digest,
                    outcome.local_digest,
                    if outcome.matches() {
                        "MATCH"
                    } else {
                        "DIVERGED"
                    }
                );
                outcome.matches()
            }
            Err(e) => {
                eprintln!("verify failed: {e}");
                false
            }
        }
    } else {
        if opts.watermark {
            let ack = DaemonClient::connect(addr)
                .ok()
                .and_then(|mut c| c.call(&ClientMsg::SetWatermark(opts.clients)).ok());
            if !matches!(ack, Some(ServerMsg::WatermarkSet)) {
                eprintln!("failed to set the flush watermark");
                return ExitCode::FAILURE;
            }
        }
        let arrival = match opts.open_period {
            Some(period) => Arrival::Open { period },
            None => Arrival::Closed { think: opts.think },
        };
        match run_load(addr, &wl, arrival) {
            Ok(report) => {
                println!(
                    "{} clients x {} rounds ({}): {} ops in {:.2} s — \
                     {:.0} ops/s, latency ms p50 {} p99 {} p999 {} max {}",
                    opts.clients,
                    opts.rounds,
                    match arrival {
                        Arrival::Closed { think } => format!("closed loop, think {think:?}"),
                        Arrival::Open { period } => format!("open loop, period {period:?}"),
                    },
                    report.ops,
                    report.wall.as_secs_f64(),
                    report.throughput_ops_s(),
                    fmt_q(report.hist.p50()),
                    fmt_q(report.hist.p99()),
                    fmt_q(report.hist.p999()),
                    fmt_q(report.hist.max_ms()),
                );
                true
            }
            Err(e) => {
                eprintln!("load run failed: {e}");
                false
            }
        }
    };

    if opts.shutdown {
        let clean = shutdown_daemon(addr);
        println!(
            "shutdown {}",
            if clean {
                "acknowledged"
            } else {
                "sent (no ack)"
            }
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
