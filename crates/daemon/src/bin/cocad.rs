//! `cocad` — the CoCa edge server as a standalone networked daemon.
//!
//! Binds a TCP listener, serves the §IV.A protocol until a `Shutdown`
//! message arrives, then prints a run summary (requests, uploads, final
//! table digest). Pair with `coca-loadgen` on the same spec flags.
//!
//! ```sh
//! cocad --addr 127.0.0.1:0 --addr-file /tmp/cocad.addr \
//!       --workers 4 --lock sharded
//! ```

use std::net::TcpListener;
use std::process::ExitCode;

use coca_daemon::serve::PeerSet;
use coca_daemon::{serve_with_peers, LockMode, RunSpec, ServerCore};

const USAGE: &str = "\
cocad — the CoCa edge server daemon

USAGE: cocad [FLAGS]

Serving:
  --addr HOST:PORT     bind address (default 127.0.0.1:0, ephemeral)
  --addr-file PATH     write the bound address to PATH once listening
  --workers N          worker threads (default 4)
  --lock MODE          single | sharded (default sharded)

Peer topology (multi-edge; requires --lock single):
  --cell-id N          this daemon's cell id (default 0)
  --peers LIST         comma-separated CELL=HOST:PORT peer daemons,
                       e.g. 1=127.0.0.1:4001,2=127.0.0.1:4002
  --sync-period-ms N   ship deltas to every peer each N ms (otherwise
                       sync fires only on an explicit SyncNow message)

World (must match the load generator):
  --model NAME         vgg16_bn | resnet50 | resnet101 | resnet152 | ast-base
                       (default resnet101)
  --classes N          UCF-101 class subset (default 30)
  --seed N             master seed (default 77)
  --merge-mode MODE    per_upload | queue_and_flush (default per_upload)
  --round-aligned BOOL queue-and-flush drains at the fleet watermark
                       (default false)
  --precision P        f32 | f16 | i8 table/wire precision (default f32)
";

struct Opts {
    addr: String,
    addr_file: Option<String>,
    workers: usize,
    lock: LockMode,
    spec: RunSpec,
    cell_id: u32,
    peers: PeerSet,
    sync_period_ms: Option<u64>,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        workers: 4,
        lock: LockMode::Sharded,
        spec: RunSpec::default(),
        cell_id: 0,
        peers: PeerSet::default(),
        sync_period_ms: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        if opts.spec.apply_flag(&flag, &value)? {
            continue;
        }
        match flag.as_str() {
            "--addr" => opts.addr = value,
            "--addr-file" => opts.addr_file = Some(value),
            "--workers" => {
                opts.workers = value
                    .parse()
                    .map_err(|_| format!("bad --workers '{value}'"))?;
            }
            "--lock" => {
                opts.lock = LockMode::parse(&value)
                    .ok_or_else(|| format!("unknown lock mode '{value}'"))?;
            }
            "--cell-id" => {
                opts.cell_id = value
                    .parse()
                    .map_err(|_| format!("bad --cell-id '{value}'"))?;
            }
            "--peers" => opts.peers = PeerSet::parse(&value)?,
            "--sync-period-ms" => {
                opts.sync_period_ms = Some(
                    value
                        .parse()
                        .map_err(|_| format!("bad --sync-period-ms '{value}'"))?,
                );
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if !opts.peers.is_empty() && opts.lock != LockMode::Single {
        return Err("--peers requires --lock single (peer sync needs the \
                    whole-table consistent view only the single-lock core has)"
            .to_string());
    }
    if let Some(ms) = opts.sync_period_ms {
        opts.peers = std::mem::take(&mut opts.peers).with_period_ms(ms);
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (rt, cfg, seeds) = opts.spec.build();
    let core = ServerCore::new(&rt, cfg, &seeds, opts.lock);
    core.set_cell_id(opts.cell_id);
    let genesis = core.digest();
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cocad: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve_with_peers(core, listener, opts.workers, opts.peers) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cocad: cannot start serving: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cocad: listening on {} ({} lock, {} workers, {:?} on {} classes, \
         merge {:?}, genesis digest {genesis:016x})",
        handle.addr(),
        opts.lock.name(),
        opts.workers.max(1),
        opts.spec.model,
        opts.spec.classes,
        opts.spec.merge_mode,
    );
    if let Some(path) = &opts.addr_file {
        // Written only after the listener is live, so a watcher that
        // sees the file can connect immediately.
        if let Err(e) = std::fs::write(path, handle.addr().to_string()) {
            eprintln!("cocad: cannot write --addr-file {path}: {e}");
            handle.shutdown();
            handle.join();
            return ExitCode::FAILURE;
        }
    }
    let report = handle.join();
    println!(
        "cocad: shut down after {} requests, {} uploads, {} flushes — \
         final table digest {:016x}",
        report.requests, report.uploads, report.flushes, report.digest
    );
    ExitCode::SUCCESS
}
