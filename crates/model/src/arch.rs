//! Model architectures as block sequences with preset cache points.
//!
//! A model with `L` preset cache points is split into `L + 1` compute
//! blocks: cache point `j` sits *after* block `j` (0-based), and block `L`
//! is the tail (remaining layers + classifier head). This matches the
//! paper's class-based semantic caching setup (§II.3): "the model is
//! partitioned into multiple blocks based on preset cache locations, with
//! cache layers set between these blocks".

use serde::{Deserialize, Serialize};

/// The five evaluation models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// VGG-16 with batch normalization (13 conv layers ⇒ 13 cache points).
    Vgg16Bn,
    /// ResNet-50 (stem + 16 residual blocks ⇒ 17 cache points).
    ResNet50,
    /// ResNet-101 (stem + 33 residual blocks ⇒ 34 cache points, the
    /// paper's "up to 34 cache layers").
    ResNet101,
    /// ResNet-152 (stem + 50 residual blocks ⇒ 51 cache points).
    ResNet152,
    /// Audio Spectrogram Transformer, AST-Base (12 blocks ⇒ 12 points).
    AstBase,
}

impl ModelId {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Vgg16Bn => "vgg16_bn",
            ModelId::ResNet50 => "resnet50",
            ModelId::ResNet101 => "resnet101",
            ModelId::ResNet152 => "resnet152",
            ModelId::AstBase => "ast-base",
        }
    }

    /// All five models, in the paper's reporting order.
    pub fn all() -> [ModelId; 5] {
        [
            ModelId::Vgg16Bn,
            ModelId::ResNet50,
            ModelId::ResNet101,
            ModelId::ResNet152,
            ModelId::AstBase,
        ]
    }
}

/// One preset cache point: where a semantic cache layer may be activated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachePoint {
    /// Dimension of the pooled semantic vector at this depth (channel
    /// count after global average pooling; shallow layers are narrow).
    pub dim: usize,
    /// Signal strength κ ∈ (0, 1): fraction of the feature explained by
    /// the class center (grows with depth — deeper features are cleaner).
    pub kappa: f32,
    /// Class separation ∈ (0, 1): how far apart class centers sit at this
    /// depth (grows with depth — shallow features look alike across
    /// classes).
    pub separation: f32,
    /// Disambiguation ∈ [0, 1): how much of a frame's class ambiguity the
    /// network has resolved by this depth (grows with depth).
    pub disambiguation: f32,
}

/// A model architecture as the simulator sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArch {
    /// Which model this is.
    pub id: ModelId,
    /// The `L` preset cache points, shallow to deep.
    pub cache_points: Vec<CachePoint>,
    /// The virtual "head" feature the final classifier consumes (slightly
    /// stronger than the deepest cache point — the classifier sees the
    /// whole network).
    pub head: CachePoint,
    /// Relative compute weight of each of the `L + 1` blocks.
    pub block_weights: Vec<f64>,
    /// Baseline no-cache latency of the whole model in milliseconds on the
    /// UCF101 input anchor (paper's Jetson TX2 measurements).
    pub base_latency_ms: f64,
}

impl ModelArch {
    /// Number of preset cache points `L`.
    pub fn num_cache_points(&self) -> usize {
        self.cache_points.len()
    }

    /// Byte size of one cache entry at point `j` (an f32 semantic vector).
    pub fn entry_bytes(&self, j: usize) -> usize {
        self.cache_points[j].dim * std::mem::size_of::<f32>()
    }

    /// Byte size of a full cache column set: one entry per point for
    /// `classes` classes — the paper's "total cache size" reference.
    pub fn full_cache_bytes(&self, classes: usize) -> usize {
        (0..self.num_cache_points())
            .map(|j| self.entry_bytes(j) * classes)
            .sum()
    }

    /// Validates internal consistency (used by tests and constructors).
    pub fn validate(&self) -> Result<(), String> {
        if self.cache_points.is_empty() {
            return Err("no cache points".into());
        }
        if self.block_weights.len() != self.cache_points.len() + 1 {
            return Err(format!(
                "block_weights {} != cache_points {} + 1",
                self.block_weights.len(),
                self.cache_points.len()
            ));
        }
        if self.block_weights.iter().any(|&w| w <= 0.0) {
            return Err("non-positive block weight".into());
        }
        for (j, p) in self
            .cache_points
            .iter()
            .chain(std::iter::once(&self.head))
            .enumerate()
        {
            if p.dim == 0 {
                return Err(format!("cache point {j} has zero dim"));
            }
            if !(0.0..1.0).contains(&p.kappa) || p.kappa <= 0.0 {
                return Err(format!("cache point {j} kappa {} out of (0,1)", p.kappa));
            }
            if !(0.0..=1.0).contains(&p.separation) {
                return Err(format!(
                    "cache point {j} separation {} out of [0,1]",
                    p.separation
                ));
            }
            if !(0.0..1.0).contains(&p.disambiguation) {
                return Err(format!(
                    "cache point {j} disambiguation {} out of [0,1)",
                    p.disambiguation
                ));
            }
        }
        Ok(())
    }
}

/// Smoothstep interpolation helper used by depth profiles: maps `t ∈ [0,1]`
/// to `[0,1]` with zero slope at both ends.
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(dim: usize) -> CachePoint {
        CachePoint {
            dim,
            kappa: 0.5,
            separation: 0.5,
            disambiguation: 0.2,
        }
    }

    #[test]
    fn validate_catches_mismatched_blocks() {
        let arch = ModelArch {
            id: ModelId::Vgg16Bn,
            cache_points: vec![point(8), point(16)],
            head: point(16),
            block_weights: vec![1.0, 1.0], // should be 3
            base_latency_ms: 10.0,
        };
        assert!(arch.validate().is_err());
    }

    #[test]
    fn entry_and_full_cache_bytes() {
        let arch = ModelArch {
            id: ModelId::Vgg16Bn,
            cache_points: vec![point(8), point(16)],
            head: point(16),
            block_weights: vec![1.0, 1.0, 1.0],
            base_latency_ms: 10.0,
        };
        assert!(arch.validate().is_ok());
        assert_eq!(arch.entry_bytes(0), 32);
        assert_eq!(arch.entry_bytes(1), 64);
        assert_eq!(arch.full_cache_bytes(10), (32 + 64) * 10);
    }

    #[test]
    fn smoothstep_endpoints_and_midpoint() {
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(smoothstep(-1.0), 0.0);
        assert_eq!(smoothstep(2.0), 1.0);
    }
}
