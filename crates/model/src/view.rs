//! Per-client state: identity/drift profile and feature memoization.

use std::collections::HashMap;

use coca_sim::SeedTree;

/// A simulated client's data-distribution identity.
///
/// The context drift models non-IID *feature shift*: the same class looks
/// different through this client's camera. `drift_shared_frac` is the
/// portion of that shift shared with other clients of the deployment
/// (spatial similarity — the paper's motivation for collaboration).
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Client id.
    pub id: u64,
    /// Magnitude of the context drift added to class centers (0 = client
    /// data matches the model's training distribution exactly).
    pub drift_mag: f32,
    /// Fraction of the drift direction shared across clients (the rest is
    /// client-unique), in [0, 1].
    pub drift_shared_frac: f32,
    /// Seed node for this client's unique directions.
    pub(crate) seed: SeedTree,
}

impl ClientProfile {
    /// Builds a client profile under the universe's seed tree.
    pub fn new(id: u64, drift_mag: f32, drift_shared_frac: f32, seeds: &SeedTree) -> Self {
        assert!(
            (0.0..=1.0).contains(&drift_shared_frac),
            "shared fraction must be in [0,1]"
        );
        assert!(drift_mag >= 0.0, "drift magnitude must be non-negative");
        Self {
            id,
            drift_mag,
            drift_shared_frac,
            seed: seeds.child("features").child_idx("client", id),
        }
    }
}

/// Memoization scratch space for one client's feature generation.
///
/// Purely an optimization: results are identical with a fresh view (the
/// feature universe derives everything from seeds). Holds
///
/// * drifted class centers, keyed by `(class, layer)` — computed once per
///   client instead of per frame, and
/// * the current run's noise vectors per layer — frames of one run share
///   them by construction.
#[derive(Debug, Default)]
pub struct ClientFeatureView {
    drifted: HashMap<(u32, u32), Vec<f32>>,
    run_seed: u64,
    run_noise: HashMap<u32, Vec<f32>>,
}

impl ClientFeatureView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized drifted center for `(class, layer)`, computing
    /// it with `make` on first use.
    pub fn drifted_center(
        &mut self,
        class: usize,
        layer: usize,
        make: impl FnOnce() -> Vec<f32>,
    ) -> Vec<f32> {
        self.drifted
            .entry((class as u32, layer as u32))
            .or_insert_with(make)
            .clone()
    }

    /// Returns the memoized run-noise vector for `layer` within the run
    /// identified by `run_seed`; switching runs clears the per-run cache.
    pub fn run_noise(
        &mut self,
        run_seed: u64,
        layer: usize,
        make: impl FnOnce() -> Vec<f32>,
    ) -> Vec<f32> {
        if run_seed != self.run_seed {
            self.run_seed = run_seed;
            self.run_noise.clear();
        }
        self.run_noise
            .entry(layer as u32)
            .or_insert_with(make)
            .clone()
    }

    /// Drops memoized drifted centers (used by tests and by long-running
    /// clients when the universe's drift evolves).
    pub fn invalidate_centers(&mut self) {
        self.drifted.clear();
    }

    /// Number of memoized centers (diagnostics).
    pub fn cached_centers(&self) -> usize {
        self.drifted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifted_center_computes_once() {
        let mut view = ClientFeatureView::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = view.drifted_center(4, 2, || {
                calls += 1;
                vec![1.0, 0.0]
            });
            assert_eq!(v, vec![1.0, 0.0]);
        }
        assert_eq!(calls, 1);
        assert_eq!(view.cached_centers(), 1);
        view.invalidate_centers();
        assert_eq!(view.cached_centers(), 0);
    }

    #[test]
    fn run_noise_resets_on_new_run() {
        let mut view = ClientFeatureView::new();
        let a = view.run_noise(1, 0, || vec![0.5]);
        let same = view.run_noise(1, 0, || vec![0.9]);
        assert_eq!(a, same, "same run must reuse noise");
        let fresh = view.run_noise(2, 0, || vec![0.9]);
        assert_eq!(fresh, vec![0.9], "new run must regenerate noise");
    }

    #[test]
    fn profile_validates_inputs() {
        let seeds = SeedTree::new(1);
        let p = ClientProfile::new(3, 0.2, 0.5, &seeds);
        assert_eq!(p.id, 3);
    }

    #[test]
    #[should_panic(expected = "shared fraction")]
    fn profile_rejects_bad_shared_frac() {
        let _ = ClientProfile::new(0, 0.2, 1.5, &SeedTree::new(1));
    }
}
