//! The model zoo: the paper's five evaluation models.
//!
//! Feature dimensions follow each network's real channel progression,
//! scaled down ×8 for the ResNet bottleneck outputs (2048 → 256 etc.) to
//! keep the reproduction's cosine kernels cheap; the *relative* widths —
//! what drives per-layer lookup cost and shallow-layer confusability — are
//! preserved. Depth profiles (κ, separation, disambiguation) rise smoothly
//! with depth; absolute anchors were calibrated against the paper's
//! motivation experiments (Fig. 1, Table I) — see `coca-bench`'s
//! `calibrate` binary.

use crate::arch::{smoothstep, CachePoint, ModelArch, ModelId};

/// Depth-profile anchors shared by the zoo constructors.
#[derive(Debug, Clone, Copy)]
struct DepthProfile {
    kappa: (f32, f32),
    separation: (f32, f32),
    disambiguation: (f32, f32),
    /// Extra strength of the classifier-head feature over the deepest
    /// cache point.
    head_bonus: f32,
}

impl DepthProfile {
    fn point(&self, t: f64, dim: usize) -> CachePoint {
        let s = smoothstep(t) as f32;
        // Disambiguation front-loads (t^0.45): residual ambiguity at middle
        // layers must already be close to the head's, otherwise ambiguous
        // content would take confident wrong exits at depths where the full
        // model would still have recovered — an accuracy-loss channel real
        // networks do not have at this magnitude.
        let d = (t.powf(0.45)) as f32;
        CachePoint {
            dim,
            kappa: self.kappa.0 + (self.kappa.1 - self.kappa.0) * s,
            separation: self.separation.0 + (self.separation.1 - self.separation.0) * s,
            disambiguation: self.disambiguation.0
                + (self.disambiguation.1 - self.disambiguation.0) * d,
        }
    }

    fn head(&self, deepest_dim: usize) -> CachePoint {
        let mut h = self.point(1.0, deepest_dim);
        h.kappa = (h.kappa + self.head_bonus).min(0.97);
        h.disambiguation = (h.disambiguation + 0.08).min(0.95);
        h
    }
}

fn profile_for(depth_class: ModelId) -> DepthProfile {
    match depth_class {
        // Deeper residual models produce cleaner, better separated deep
        // features — this is what makes ResNet152 more accurate than
        // ResNet50 in the reproduction, mirroring the paper's accuracy
        // ordering.
        ModelId::Vgg16Bn => DepthProfile {
            kappa: (0.46, 0.76),
            separation: (0.33, 0.54),
            disambiguation: (0.30, 0.46),
            head_bonus: 0.05,
        },
        ModelId::ResNet50 => DepthProfile {
            kappa: (0.46, 0.79),
            separation: (0.32, 0.57),
            disambiguation: (0.30, 0.48),
            head_bonus: 0.05,
        },
        ModelId::ResNet101 => DepthProfile {
            kappa: (0.45, 0.82),
            separation: (0.31, 0.60),
            disambiguation: (0.30, 0.50),
            head_bonus: 0.05,
        },
        ModelId::ResNet152 => DepthProfile {
            kappa: (0.44, 0.85),
            separation: (0.30, 0.64),
            disambiguation: (0.30, 0.54),
            head_bonus: 0.05,
        },
        ModelId::AstBase => DepthProfile {
            kappa: (0.46, 0.83),
            separation: (0.32, 0.62),
            disambiguation: (0.30, 0.50),
            head_bonus: 0.05,
        },
    }
}

fn build(
    id: ModelId,
    dims: Vec<usize>,
    block_weights: Vec<f64>,
    base_latency_ms: f64,
) -> ModelArch {
    let l = dims.len();
    assert!(l >= 2);
    assert_eq!(block_weights.len(), l + 1);
    let prof = profile_for(id);
    let cache_points: Vec<CachePoint> = dims
        .iter()
        .enumerate()
        .map(|(j, &dim)| prof.point(j as f64 / (l - 1) as f64, dim))
        .collect();
    let head = prof.head(*dims.last().unwrap());
    let arch = ModelArch {
        id,
        cache_points,
        head,
        block_weights,
        base_latency_ms,
    };
    arch.validate().expect("zoo model must validate");
    arch
}

/// ResNet-style dims/weights: a stem point plus `blocks_per_stage` residual
/// blocks across four stages. Per-block FLOPs in ResNets are roughly equal
/// across stages (spatial halving compensates channel doubling); the stem
/// and the final pool+fc block are cheaper.
fn resnet(id: ModelId, blocks_per_stage: [usize; 4], base_latency_ms: f64) -> ModelArch {
    let stage_dims = [48usize, 64, 128, 256];
    let mut dims = vec![32]; // stem output
    let mut weights = vec![0.8]; // stem block
    for (s, &n) in blocks_per_stage.iter().enumerate() {
        for _ in 0..n {
            dims.push(stage_dims[s]);
            weights.push(1.0);
        }
    }
    weights.push(0.5); // pool + fc tail
    build(id, dims, weights, base_latency_ms)
}

/// VGG16_BN: 13 conv layers, channel progression 64→512. Early conv layers
/// run at full spatial resolution and dominate compute, hence the
/// decreasing block weights.
pub fn vgg16_bn() -> ModelArch {
    let dims = vec![
        64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512,
    ];
    let weights = vec![
        1.4, 1.4, 1.3, 1.3, 1.2, 1.2, 1.2, 1.0, 1.0, 1.0, 0.8, 0.8, 0.8,
        0.6, // dense layers + softmax tail
    ];
    build(ModelId::Vgg16Bn, dims, weights, 29.94)
}

/// ResNet-50: stem + 3/4/6/3 residual blocks (17 cache points).
pub fn resnet50() -> ModelArch {
    resnet(ModelId::ResNet50, [3, 4, 6, 3], 23.50)
}

/// ResNet-101: stem + 3/4/23/3 residual blocks (34 cache points — the
/// paper's "up to 34 cache layers can be inserted").
pub fn resnet101() -> ModelArch {
    resnet(ModelId::ResNet101, [3, 4, 23, 3], 40.58)
}

/// ResNet-152: stem + 3/8/36/3 residual blocks (51 cache points).
pub fn resnet152() -> ModelArch {
    resnet(ModelId::ResNet152, [3, 8, 36, 3], 62.85)
}

/// AST-Base: 12 transformer blocks of constant width.
pub fn ast_base() -> ModelArch {
    let dims = vec![192; 12];
    // 12 cache points ⇒ 13 blocks: block 0 is patch embedding + the first
    // transformer block, blocks 1–11 are transformer blocks, block 12 is
    // the classification head.
    let mut weights = vec![1.6];
    weights.extend(std::iter::repeat_n(1.0, 11));
    weights.push(0.4);
    build(ModelId::AstBase, dims, weights, 92.0)
}

/// Constructs any zoo model by id.
pub fn model(id: ModelId) -> ModelArch {
    match id {
        ModelId::Vgg16Bn => vgg16_bn(),
        ModelId::ResNet50 => resnet50(),
        ModelId::ResNet101 => resnet101(),
        ModelId::ResNet152 => resnet152(),
        ModelId::AstBase => ast_base(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_point_counts_match_paper() {
        assert_eq!(vgg16_bn().num_cache_points(), 13);
        assert_eq!(resnet50().num_cache_points(), 17);
        assert_eq!(resnet101().num_cache_points(), 34); // paper §III.1
        assert_eq!(resnet152().num_cache_points(), 51);
        assert_eq!(ast_base().num_cache_points(), 12);
    }

    #[test]
    fn all_models_validate() {
        for id in ModelId::all() {
            assert!(model(id).validate().is_ok(), "{:?}", id);
        }
    }

    #[test]
    fn profiles_increase_with_depth() {
        for id in ModelId::all() {
            let m = model(id);
            let first = m.cache_points.first().unwrap();
            let last = m.cache_points.last().unwrap();
            assert!(last.kappa > first.kappa, "{:?}", id);
            assert!(last.separation > first.separation, "{:?}", id);
            assert!(last.disambiguation >= first.disambiguation, "{:?}", id);
            assert!(m.head.kappa >= last.kappa);
        }
    }

    #[test]
    fn deeper_resnets_have_stronger_deep_features() {
        let k50 = resnet50().cache_points.last().unwrap().kappa;
        let k101 = resnet101().cache_points.last().unwrap().kappa;
        let k152 = resnet152().cache_points.last().unwrap().kappa;
        assert!(k50 < k101 && k101 < k152);
    }

    #[test]
    fn base_latencies_match_paper_anchors() {
        assert!((vgg16_bn().base_latency_ms - 29.94).abs() < 1e-9);
        assert!((resnet101().base_latency_ms - 40.58).abs() < 1e-9);
        assert!((resnet152().base_latency_ms - 62.85).abs() < 1e-9);
    }

    #[test]
    fn resnet101_full_cache_size_is_small() {
        // Paper: ~3.2 MB for 34 layers on a 50-class task at full channel
        // widths; our ×8-scaled dims give proportionally ~1/8 of that.
        let m = resnet101();
        let bytes = m.full_cache_bytes(50);
        assert!(bytes > 100_000 && bytes < 2_000_000, "bytes = {bytes}");
    }
}
