//! The semantic feature generator.
//!
//! Produces the per-cache-layer semantic vectors (GAP-pooled intermediate
//! features) that the paper's mechanisms consume, with the geometric
//! properties the evaluation depends on.
//!
//! ## Geometry
//!
//! At every layer `j` the feature space decomposes into a **layer-common
//! direction** `C_j` (generic content statistics — in real CNNs every
//! input activates edge/texture channels, so pooled vectors of *all*
//! classes are strongly correlated) plus per-class **offsets**
//! `h_{i,j} = g_w·G_{group(i),j} + u_w·U_{i,j}` mixing a group direction
//! shared with confusable sibling classes and a unique direction. A class
//! center is `normalize(C_j + s_j · h_{i,j})` where the separation `s_j`
//! grows with depth: cosines between centers are ≈ 0.9+ at shallow layers
//! and spread out deeper — exactly why the paper's discriminative-score
//! thresholds Θ are as small as 0.008–0.035 (Eq. 2 margins are *relative*
//! to large cosines).
//!
//! A frame of class `t` observes
//!
//! ```text
//! v = normalize(C_j + s_j · (sig · φ  +  (1−κ_j) · ν · d · η))
//! ```
//!
//! * `sig = vis(d) · κ_j / κ_head` — class-signal visibility: attenuated
//!   for difficult content and at shallow depths (κ profile),
//! * `φ = (1−m_j)·h'_t + m_j·h'_c` — run-level **ambiguity mixing** toward
//!   a sibling class `c`, disambiguated with depth; residual head-level
//!   mixes `> 0.5` are the full model's classification errors,
//! * `h'` — **client-drifted** offsets (non-IID feature shift, partly
//!   shared across clients — what global cache updates chase),
//! * `η` — unit noise, partly shared across a run (consecutive frames
//!   genuinely resemble each other).

use rand::Rng;
use serde::{Deserialize, Serialize};

use coca_data::Frame;
use coca_math::vector::{axpy, l2_normalize, random_unit};

use coca_sim::SeedTree;

use crate::arch::{CachePoint, ModelArch};
use crate::view::{ClientFeatureView, ClientProfile};

/// Tunable knobs of the feature geometry. Defaults are the calibrated
/// values used by every experiment (see `coca-bench`'s `calibrate` binary
/// and EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Number of classes per confusion group (sibling set).
    pub group_size: usize,
    /// Weight of the group direction inside class offsets.
    pub group_weight: f32,
    /// Weight of the unique direction inside class offsets.
    pub unique_weight: f32,
    /// Global multiplier ν on feature noise.
    pub noise_scale: f32,
    /// Fraction of a frame's noise shared across its run (temporal
    /// correlation of consecutive frames).
    pub run_noise_weight: f32,
    /// Fraction of the noise that is *class-structured*: a per-frame lean
    /// toward a few random classes, consistent across **all** layers. Real
    /// networks propagate ambiguity through depth — a frame that looks a
    /// bit like class b at layer 5 still does at layer 25. Without this
    /// cross-layer correlation every cache layer would be an independent
    /// lottery and ambiguous frames would win a wrong early exit somewhere
    /// with near-certainty.
    pub class_noise_weight: f32,
    /// How many classes a frame's structured noise leans toward.
    pub class_noise_span: usize,
    /// Difficulty at which class-signal visibility starts to attenuate.
    pub visibility_ref: f32,
    /// Exponent of the visibility attenuation `(ref/d)^power`.
    pub visibility_power: f32,
    /// Run difficulty at which class ambiguity begins.
    pub confusion_onset: f32,
    /// Slope of ambiguity mixing weight vs. run difficulty.
    pub confusion_scale: f32,
    /// Cap on the raw mixing weight `m` (1.0 = the content is a pure
    /// sibling look-alike; features stay inside the class manifold).
    pub confusion_max: f32,
    /// Fraction of a layer's disambiguation subtracted from the ambiguity
    /// mixing weight (subtractive depth relief).
    pub ambiguity_relief: f32,
    /// Logit scale of the classifier head (softmax temperature⁻¹).
    pub head_scale: f32,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self {
            group_size: 5,
            group_weight: 0.22,
            unique_weight: 0.93,
            noise_scale: 0.45,
            run_noise_weight: 0.6,
            class_noise_weight: 0.15,
            class_noise_span: 3,
            visibility_ref: 0.50,
            visibility_power: 1.8,
            confusion_onset: 1.30,
            confusion_scale: 8.0,
            confusion_max: 1.00,
            ambiguity_relief: 0.58,
            head_scale: 20.0,
        }
    }
}

/// Ground-truth feature geometry for one (model, dataset) pair.
///
/// Layer indices run `0..=L`: `0..L` are the model's preset cache points,
/// `L` is the virtual classifier-head layer.
#[derive(Debug, Clone)]
pub struct FeatureUniverse {
    cfg: FeatureConfig,
    num_classes: usize,
    /// Per layer: the point spec (dims, κ, separation, disambiguation).
    points: Vec<CachePoint>,
    /// `common[layer]` — the layer-common direction C_j (unit).
    common: Vec<Vec<f32>>,
    /// `offsets[layer][class]` — class offsets h (NOT normalized).
    offsets: Vec<Vec<Vec<f32>>>,
    /// `centers[layer][class]` — precomputed `normalize(C + s·h)`.
    centers: Vec<Vec<Vec<f32>>>,
    /// `ctx_drift[layer][class]` — shared context-drift directions.
    ctx_drift: Vec<Vec<Vec<f32>>>,
    /// Per class: its sibling (same-group) classes, excluding itself.
    siblings: Vec<Vec<usize>>,
    /// κ of the head layer (signal normalizer).
    head_kappa: f32,
    /// Seed node for per-frame/per-client derivations.
    seeds: SeedTree,
}

impl FeatureUniverse {
    /// Builds the universe for `arch` on a task with `num_classes` classes.
    ///
    /// # Panics
    /// Panics if `num_classes < 2` (classification needs alternatives).
    pub fn new(arch: &ModelArch, num_classes: usize, seeds: &SeedTree, cfg: FeatureConfig) -> Self {
        assert!(
            num_classes >= 2,
            "need at least two classes, got {num_classes}"
        );
        let seeds = seeds.child("features");
        let mut points: Vec<CachePoint> = arch.cache_points.clone();
        points.push(arch.head);

        let group_size = cfg.group_size.max(2);
        let num_groups = num_classes.div_ceil(group_size);
        let group_of = |class: usize| class % num_groups;

        // --- Master-space class identities. Class geometry must be
        // CONSISTENT across depth: if class t's direction overlaps class
        // i's at layer 5, it must overlap at layer 25 too — otherwise
        // every cache layer is an independent lottery and a frame of an
        // uncached class will eventually beat the margin test somewhere.
        // Identities live in a master space of dimension D = max layer
        // width; each layer sees them through its own random coordinate
        // subsample (a sparse Johnson–Lindenstrauss map), which preserves
        // inner products in expectation.
        let master_dim = points
            .iter()
            .map(|p| p.dim)
            .max()
            .expect("non-empty layers");
        let mut master_rng = seeds.rng_for("master-space");
        let master_groups: Vec<Vec<f32>> = (0..num_groups)
            .map(|_| random_unit(&mut master_rng, master_dim))
            .collect();
        let master_ids: Vec<Vec<f32>> = (0..num_classes)
            .map(|class| {
                let unique = random_unit(&mut master_rng, master_dim);
                let mut z = vec![0.0f32; master_dim];
                axpy(cfg.group_weight, &master_groups[group_of(class)], &mut z);
                axpy(cfg.unique_weight, &unique, &mut z);
                z
            })
            .collect();
        let master_drift: Vec<Vec<f32>> = (0..num_classes)
            .map(|_| random_unit(&mut master_rng, master_dim))
            .collect();

        let mut common = Vec::with_capacity(points.len());
        let mut offsets = Vec::with_capacity(points.len());
        let mut centers = Vec::with_capacity(points.len());
        let mut ctx_drift = Vec::with_capacity(points.len());
        for (j, p) in points.iter().enumerate() {
            let mut layer_rng = seeds.rng_for_idx("layer", j as u64);
            let dim = p.dim;
            let c_dir = random_unit(&mut layer_rng, dim);
            // Stage view of the master space: a random coordinate
            // subsample with random signs, rescaled to preserve norms.
            // The view is keyed by the layer WIDTH, not the layer index:
            // all same-width layers (a CNN stage) share one view, so class
            // overlaps are identical across a stage — adjacent layers of
            // real networks see near-identical class geometry, and without
            // this the deep stage becomes dozens of independent margin
            // lotteries.
            let mut view_rng = seeds.rng_for_idx("stage-view", dim as u64);
            let mut coords: Vec<usize> = (0..master_dim).collect();
            for i in (1..coords.len()).rev() {
                let k = view_rng.gen_range(0..=i);
                coords.swap(i, k);
            }
            let signs: Vec<f32> = (0..dim)
                .map(|_| if view_rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let rescale = (master_dim as f32 / dim as f32).sqrt();
            let project = |z: &[f32]| -> Vec<f32> {
                (0..dim)
                    .map(|d| signs[d] * z[coords[d]] * rescale)
                    .collect()
            };
            let mut layer_offsets = Vec::with_capacity(num_classes);
            let mut layer_centers = Vec::with_capacity(num_classes);
            let mut layer_drift = Vec::with_capacity(num_classes);
            for class in 0..num_classes {
                let h = project(&master_ids[class]);
                let mut center = c_dir.clone();
                axpy(p.separation, &h, &mut center);
                l2_normalize(&mut center);
                layer_offsets.push(h);
                layer_centers.push(center);
                layer_drift.push(project(&master_drift[class]));
            }
            common.push(c_dir);
            offsets.push(layer_offsets);
            centers.push(layer_centers);
            ctx_drift.push(layer_drift);
        }

        let siblings: Vec<Vec<usize>> = (0..num_classes)
            .map(|c| {
                let mine = group_of(c);
                let sibs: Vec<usize> = (0..num_classes)
                    .filter(|&o| o != c && group_of(o) == mine)
                    .collect();
                if sibs.is_empty() {
                    // Degenerate group: fall back to all other classes.
                    (0..num_classes).filter(|&o| o != c).collect()
                } else {
                    sibs
                }
            })
            .collect();

        Self {
            cfg,
            num_classes,
            head_kappa: arch.head.kappa,
            points,
            common,
            offsets,
            centers,
            ctx_drift,
            siblings,
            seeds,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Index of the virtual head layer (`L`).
    pub fn head_layer(&self) -> usize {
        self.points.len() - 1
    }

    /// Feature dimension at `layer` (`0..=L`).
    pub fn dim(&self, layer: usize) -> usize {
        self.points[layer].dim
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FeatureConfig {
        &self.cfg
    }

    /// Global (model-weight) center of `class` at `layer` — what the
    /// classifier compares against and what initial cache entries hold.
    pub fn global_center(&self, layer: usize, class: usize) -> &[f32] {
        &self.centers[layer][class]
    }

    /// Sibling classes of `class` (confusable alternatives).
    pub fn siblings(&self, class: usize) -> &[usize] {
        &self.siblings[class]
    }

    /// The ambiguity of a run: `(confuser_class, mixing_weight m)`.
    ///
    /// Deterministic per run. `m = 0` means the content is unambiguous.
    pub fn run_confusion(&self, frame: &Frame) -> (usize, f32) {
        let sibs = &self.siblings[frame.class];
        let mut rng = self.seeds.rng_for_idx("confusion", frame.run_seed);
        let confuser = sibs[rng.gen_range(0..sibs.len())];
        let u: f32 = rng.gen_range(0.5..1.0);
        let raw = self.cfg.confusion_scale * (frame.run_difficulty - self.cfg.confusion_onset);
        let m = (raw * u).clamp(0.0, self.cfg.confusion_max);
        (confuser, m)
    }

    /// Raw visibility ratio for a frame of difficulty `d`: `min(ref/d, 1)`.
    ///
    /// The *effective* attenuation is depth-dependent (see
    /// [`Self::signal_strength`]): shallow layers lose hard content almost
    /// entirely, deep layers — whose job is recognition — recover much of
    /// it. This is why the paper's hard samples exit only at deep cache
    /// layers (Fig. 1(b)) yet the full model still classifies most of them.
    pub fn visibility(&self, difficulty: f32) -> f32 {
        (self.cfg.visibility_ref / difficulty.max(1e-6)).min(1.0)
    }

    /// Class-signal strength at `layer` for a frame of difficulty `d`:
    /// `vis^(power·(1−disambiguation_j)) · κ_j/κ_head`.
    pub fn signal_strength(&self, layer: usize, difficulty: f32) -> f32 {
        let p = self.points[layer];
        let q = self.cfg.visibility_power * (1.0 - p.disambiguation);
        self.visibility(difficulty).powf(q.max(0.1)) * (p.kappa / self.head_kappa)
    }

    /// The client-drifted offset h' for `(layer, class)` — the direction a
    /// client's data for that class actually points along.
    fn drifted_offset(&self, layer: usize, class: usize, client: &ClientProfile) -> Vec<f32> {
        let mut h = self.offsets[layer][class].clone();
        if client.drift_mag > 0.0 {
            let shared = &self.ctx_drift[layer][class];
            let shared_w = client.drift_mag * client.drift_shared_frac;
            let indiv_w = client.drift_mag * (1.0 - client.drift_shared_frac);
            axpy(shared_w, shared, &mut h);
            if indiv_w > 0.0 {
                let mut indiv_rng = client
                    .seed
                    .child_idx("drift-class", class as u64)
                    .child_idx("drift-layer", layer as u64)
                    .rng();
                let indiv = random_unit(&mut indiv_rng, h.len());
                axpy(indiv_w, &indiv, &mut h);
            }
        }
        h
    }

    /// The effective (client-drifted) center a client's data is generated
    /// around: `normalize(C + s·h')`. This is the quantity global cache
    /// updates chase (Fig. 2).
    pub fn drifted_center(&self, layer: usize, class: usize, client: &ClientProfile) -> Vec<f32> {
        let p = self.points[layer];
        let h = self.drifted_offset(layer, class, client);
        let mut center = self.common[layer].clone();
        axpy(p.separation, &h, &mut center);
        l2_normalize(&mut center);
        center
    }

    /// Generates the semantic vector observed at `layer` for `frame` on
    /// `client`. `view` memoizes per-client drifted offsets and per-run
    /// noise; passing a fresh view changes nothing but cost.
    pub fn semantic_vector(
        &self,
        frame: &Frame,
        client: &ClientProfile,
        layer: usize,
        view: &mut ClientFeatureView,
    ) -> Vec<f32> {
        let p = self.points[layer];
        let dim = p.dim;

        // Class-signal strength: frame visibility × depth profile.
        let sig = self.signal_strength(layer, frame.difficulty);

        // Run-level ambiguity, disambiguated with depth. Relief is
        // *subtractive*: depth removes a fixed amount of ambiguity, so the
        // winner (true class vs confuser) flips at most once along the
        // depth axis and mid-layer verdicts rarely disagree with the head.
        let (confuser, m) = self.run_confusion(frame);
        let m_layer = (m - self.cfg.ambiguity_relief * p.disambiguation).clamp(0.0, 1.0);

        // φ = (1−m)·h'_t + m·h'_c over drifted offsets (memoized).
        let h_true = view.drifted_center(frame.class, layer, || {
            self.drifted_offset(layer, frame.class, client)
        });
        let mut phi: Vec<f32> = vec![0.0; dim];
        if m_layer > 1e-4 {
            let h_conf = view.drifted_center(confuser, layer, || {
                self.drifted_offset(layer, confuser, client)
            });
            axpy(1.0 - m_layer, &h_true, &mut phi);
            axpy(m_layer, &h_conf, &mut phi);
        } else {
            phi.copy_from_slice(&h_true);
        }

        // Noise: temporally correlated within the run + per-frame part.
        // Each part mixes a class-structured lean (consistent across
        // layers, derived from a layer-independent seed, constant scale)
        // with isotropic noise whose magnitude grows with difficulty.
        // Difficulty must NOT inflate the lean: hard content gets harder to
        // see (visibility) and more ambiguous (m), but it does not acquire
        // stronger false class evidence — otherwise every cache layer
        // becomes a wrong-exit lottery for hard frames.
        let run_noise = view.run_noise(frame.run_seed, layer, || {
            self.noise_component(frame.run_seed, layer, frame.run_difficulty)
        });
        let frame_noise = self.noise_component(frame.frame_seed, layer, frame.difficulty);

        let noise_mag = (1.0 - p.kappa) * self.cfg.noise_scale;
        let rw = self.cfg.run_noise_weight;

        // v = C + s·(sig·φ + noise) — noise lives inside the separation
        // scale so signal-to-noise depends on depth only through κ.
        let mut v = self.common[layer].clone();
        for i in 0..dim {
            let noise = rw * run_noise[i] + (1.0 - rw) * frame_noise[i];
            v[i] += p.separation * (sig * phi[i] + noise_mag * noise);
        }
        l2_normalize(&mut v);
        v
    }

    /// One noise component at `layer` for the entity identified by `seed`
    /// (a run or a frame): `cw · lean + (1−cw) · difficulty · iso`.
    ///
    /// The lean's class identities and weights derive from `seed` WITHOUT
    /// layer salt — the same classes attract this entity's features at
    /// every layer — and its scale is difficulty-independent. The isotropic
    /// part is layer-salted and grows with difficulty (hard content varies
    /// more), but being isotropic it projects onto class-margin directions
    /// only weakly (∝ 1/√dim).
    fn noise_component(&self, seed: u64, layer: usize, difficulty: f32) -> Vec<f32> {
        let dim = self.points[layer].dim;
        let cw = self.cfg.class_noise_weight;
        let mut out = vec![0.0f32; dim];
        if cw > 0.0 {
            let span = self.cfg.class_noise_span.max(1);
            let mut lean_rng = self.seeds.child_idx("noise-lean", seed).rng();
            // √span keeps the lean roughly unit-scale (offsets are ~unit).
            let norm = (span as f32).sqrt();
            for _ in 0..span {
                let class = lean_rng.gen_range(0..self.num_classes);
                let w: f32 = coca_math::vector::standard_normal(&mut lean_rng) / norm;
                axpy(cw * w, &self.offsets[layer][class], &mut out);
            }
        }
        if cw < 1.0 {
            let mut iso_rng = self
                .seeds
                .child_idx("noise-iso", seed)
                .child_idx("l", layer as u64)
                .rng();
            let iso = random_unit(&mut iso_rng, dim);
            axpy((1.0 - cw) * difficulty.min(2.5), &iso, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use coca_data::distribution::uniform_weights;
    use coca_data::{StreamConfig, StreamGenerator};
    use coca_math::cosine;

    fn setup() -> (FeatureUniverse, ClientProfile, ClientFeatureView) {
        let arch = zoo::resnet101();
        let seeds = SeedTree::new(7);
        let uni = FeatureUniverse::new(&arch, 50, &seeds, FeatureConfig::default());
        let client = ClientProfile::new(0, 0.25, 0.7, &seeds);
        let view = ClientFeatureView::new();
        (uni, client, view)
    }

    fn frames(n: usize, seed: u64) -> Vec<Frame> {
        let mut g = StreamGenerator::new(
            StreamConfig::new(uniform_weights(50), 16.0),
            &SeedTree::new(seed),
        );
        g.take(n)
    }

    #[test]
    fn vectors_are_unit_norm() {
        let (uni, client, mut view) = setup();
        for f in frames(20, 1) {
            for layer in [0, 10, uni.head_layer()] {
                let v = uni.semantic_vector(&f, &client, layer, &mut view);
                assert_eq!(v.len(), uni.dim(layer));
                assert!((coca_math::l2_norm(&v) - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn centers_are_compressed_at_shallow_layers() {
        // Real GAP features: cosines between class centers are high at
        // shallow layers and spread out with depth.
        let (uni, _, _) = setup();
        let mean_cos = |layer: usize| -> f64 {
            let mut sum = 0.0;
            let mut n = 0;
            for a in 0..10 {
                for b in (a + 1)..10 {
                    sum += cosine(uni.global_center(layer, a), uni.global_center(layer, b)) as f64;
                    n += 1;
                }
            }
            sum / n as f64
        };
        let shallow = mean_cos(0);
        let deep = mean_cos(33);
        assert!(shallow > 0.9, "shallow center cosine {shallow}");
        assert!(deep < shallow - 0.1, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn deterministic_given_frame_and_client() {
        let (uni, client, mut view) = setup();
        let f = frames(5, 2)[3];
        let a = uni.semantic_vector(&f, &client, 18, &mut view);
        let mut fresh = ClientFeatureView::new();
        let b = uni.semantic_vector(&f, &client, 18, &mut fresh);
        assert_eq!(a, b, "memoized view must not change results");
    }

    #[test]
    fn deep_layers_are_more_discriminative() {
        let (uni, client, mut view) = setup();
        let mean_rel_margin = |layer: usize, view: &mut ClientFeatureView| -> f64 {
            let mut sum = 0.0;
            let fs = frames(300, 3);
            for f in &fs {
                let v = uni.semantic_vector(f, &client, layer, view);
                let own = cosine(&v, uni.global_center(layer, f.class)) as f64;
                let other = (0..uni.num_classes())
                    .filter(|&c| c != f.class)
                    .map(|c| cosine(&v, uni.global_center(layer, c)) as f64)
                    .fold(f64::NEG_INFINITY, f64::max);
                sum += (own - other) / other.abs().max(1e-6);
            }
            sum / fs.len() as f64
        };
        let shallow = mean_rel_margin(0, &mut view);
        let deep = mean_rel_margin(33, &mut view);
        assert!(deep > shallow * 2.0, "shallow {shallow}, deep {deep}");
    }

    #[test]
    fn run_frames_are_correlated() {
        let (uni, client, mut view) = setup();
        let fs = frames(2000, 4);
        let mut within = Vec::new();
        let mut across = Vec::new();
        for w in fs.windows(2) {
            let a = uni.semantic_vector(&w[0], &client, 5, &mut view);
            let b = uni.semantic_vector(&w[1], &client, 5, &mut view);
            let c = cosine(&a, &b) as f64;
            if w[1].run_pos > 0 {
                within.push(c);
            } else {
                across.push(c);
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&within) > mean(&across) + 0.005,
            "within {} across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn drift_moves_data_away_from_global_centers() {
        let arch = zoo::resnet101();
        let seeds = SeedTree::new(8);
        let uni = FeatureUniverse::new(&arch, 50, &seeds, FeatureConfig::default());
        let clean = ClientProfile::new(1, 0.0, 0.7, &seeds);
        let drifted = ClientProfile::new(1, 0.8, 0.7, &seeds);
        let mut view_c = ClientFeatureView::new();
        let mut view_d = ClientFeatureView::new();
        let layer = 30;
        let mut cos_clean = 0.0f64;
        let mut cos_drift = 0.0f64;
        let fs = frames(400, 5);
        for f in &fs {
            let vc = uni.semantic_vector(f, &clean, layer, &mut view_c);
            let vd = uni.semantic_vector(f, &drifted, layer, &mut view_d);
            cos_clean += cosine(&vc, uni.global_center(layer, f.class)) as f64;
            cos_drift += cosine(&vd, uni.global_center(layer, f.class)) as f64;
        }
        assert!(
            cos_clean > cos_drift + 0.5,
            "clean {cos_clean} vs drifted {cos_drift} (sums over {} frames)",
            fs.len()
        );
    }

    #[test]
    fn confusion_is_zero_for_easy_runs_and_positive_for_hard() {
        let (uni, _, _) = setup();
        let mut easy_ms = Vec::new();
        let mut hard_ms = Vec::new();
        for f in frames(5000, 6) {
            let (conf, m) = uni.run_confusion(&f);
            assert_ne!(conf, f.class);
            assert!(uni.siblings(f.class).contains(&conf));
            if f.run_difficulty < 0.55 {
                easy_ms.push(m);
            } else if f.run_difficulty > 1.6 {
                hard_ms.push(m);
            }
        }
        assert!(easy_ms.iter().all(|&m| m < 0.4));
        let hard_mean = hard_ms.iter().map(|&m| m as f64).sum::<f64>() / hard_ms.len() as f64;
        assert!(hard_mean > 0.8, "hard mean m = {hard_mean}");
    }

    #[test]
    fn visibility_attenuates_with_difficulty() {
        let (uni, _, _) = setup();
        assert_eq!(uni.visibility(0.3), 1.0);
        assert_eq!(uni.visibility(0.5), 1.0);
        let v1 = uni.visibility(1.1);
        let v2 = uni.visibility(2.2);
        assert!(v1 < 1.0 && v2 < v1);
        // Depth relieves the attenuation: deep layers recover hard content.
        let shallow = uni.signal_strength(0, 2.0);
        let deep = uni.signal_strength(33, 2.0);
        assert!(deep > shallow, "shallow {shallow} deep {deep}");
    }

    #[test]
    fn shared_drift_is_common_across_clients() {
        // Two clients with fully shared drift see the same drifted center;
        // with fully individual drift they do not.
        let arch = zoo::resnet50();
        let seeds = SeedTree::new(9);
        let uni = FeatureUniverse::new(&arch, 20, &seeds, FeatureConfig::default());
        let a = ClientProfile::new(1, 0.4, 1.0, &seeds);
        let b = ClientProfile::new(2, 0.4, 1.0, &seeds);
        let ca = uni.drifted_center(5, 3, &a);
        let cb = uni.drifted_center(5, 3, &b);
        assert!((cosine(&ca, &cb) - 1.0).abs() < 1e-5);
        let a = ClientProfile::new(1, 0.4, 0.0, &seeds);
        let b = ClientProfile::new(2, 0.4, 0.0, &seeds);
        let ca = uni.drifted_center(5, 3, &a);
        let cb = uni.drifted_center(5, 3, &b);
        assert!(cosine(&ca, &cb) < 0.99999);
    }
}
