//! # coca-model — the DNN inference simulator
//!
//! The paper runs PyTorch models (VGG16_BN, ResNet-50/101/152, AST) on a
//! Jetson TX2. CoCa itself never inspects raw pixels — every decision it
//! makes consumes only three signals:
//!
//! 1. **per-block compute latencies** (how much time a cache hit at layer j
//!    saves),
//! 2. **per-cache-layer semantic vectors** (the global-average-pooled
//!    features matched against cache entries), and
//! 3. **final-softmax confidences** (full-model predictions and the rule-2
//!    collection margin).
//!
//! This crate synthesizes exactly those three signals with the geometry the
//! paper's mechanisms rely on (DESIGN.md §2):
//!
//! * [`arch`]/[`zoo`] — model architectures as block sequences with preset
//!   cache points; per-point feature dimension and depth-dependent signal
//!   strength/separation profiles (deeper ⇒ more discriminative).
//! * [`latency`] — calibrated virtual-time cost model (block compute and
//!   per-entry cache-lookup costs anchored to the paper's measurements).
//! * [`features`] — the semantic feature generator: hierarchically
//!   correlated class centers (confusable siblings), per-client context
//!   drift (non-IID), per-frame ambiguity mixing and temporally correlated
//!   run noise.
//! * [`view`] — per-client memoization of drifted centers and run noise.
//! * [`inference`] — [`ModelRuntime`](inference::ModelRuntime), the façade
//!   the core framework and all baselines drive.
//!
//! Cosine similarities, cache hits and classification outcomes are computed
//! **for real** on `f32` vectors; only the charged time is virtual.

pub mod arch;
pub mod features;
pub mod inference;
pub mod latency;
pub mod view;
pub mod zoo;

pub use arch::{CachePoint, ModelArch, ModelId};
pub use features::{FeatureConfig, FeatureUniverse};
pub use inference::{ModelRuntime, Prediction};
pub use latency::LatencyProfile;
pub use view::{ClientFeatureView, ClientProfile};
