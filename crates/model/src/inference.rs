//! [`ModelRuntime`] — the façade the framework and baselines drive.
//!
//! Bundles the architecture, the calibrated latency profile and the feature
//! universe for one (model, dataset) pair, and implements the full-model
//! classifier head.

use serde::{Deserialize, Serialize};

use coca_data::{DatasetSpec, Frame};
use coca_math::softmax::{softmax_inplace, top2_margin};
use coca_math::{cosine, top1};
use coca_sim::{SeedTree, SimDuration};

use crate::arch::{ModelArch, ModelId};
use crate::features::{FeatureConfig, FeatureUniverse};
use crate::latency::LatencyProfile;
use crate::view::{ClientFeatureView, ClientProfile};
use crate::zoo;

/// Outcome of a full (uncached) inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted class (argmax of the softmax output).
    pub class: usize,
    /// Full softmax probability vector.
    pub probs: Vec<f32>,
    /// Whether the prediction matches the frame's ground truth.
    pub correct: bool,
    /// `prob₁ − prob₂`, the paper's rule-2 collection margin.
    pub margin: f32,
}

/// A ready-to-run simulated model on a specific dataset.
#[derive(Debug, Clone)]
pub struct ModelRuntime {
    arch: ModelArch,
    latency: LatencyProfile,
    universe: FeatureUniverse,
    dataset: DatasetSpec,
}

impl ModelRuntime {
    /// Builds the runtime with default feature configuration.
    pub fn new(id: ModelId, dataset: &DatasetSpec, seeds: &SeedTree) -> Self {
        Self::with_config(id, dataset, seeds, FeatureConfig::default())
    }

    /// Builds the runtime with an explicit feature configuration (used by
    /// calibration and ablation experiments).
    pub fn with_config(
        id: ModelId,
        dataset: &DatasetSpec,
        seeds: &SeedTree,
        cfg: FeatureConfig,
    ) -> Self {
        let arch = zoo::model(id);
        let latency = LatencyProfile::new(&arch, dataset.input_cost_factor);
        let universe = FeatureUniverse::new(&arch, dataset.num_classes, seeds, cfg);
        Self {
            arch,
            latency,
            universe,
            dataset: dataset.clone(),
        }
    }

    /// The architecture.
    pub fn arch(&self) -> &ModelArch {
        &self.arch
    }

    /// The latency cost model.
    pub fn latency(&self) -> &LatencyProfile {
        &self.latency
    }

    /// The feature universe.
    pub fn universe(&self) -> &FeatureUniverse {
        &self.universe
    }

    /// The dataset this runtime was built for.
    pub fn dataset(&self) -> &DatasetSpec {
        &self.dataset
    }

    /// Number of preset cache points `L`.
    pub fn num_cache_points(&self) -> usize {
        self.arch.num_cache_points()
    }

    /// Number of task classes.
    pub fn num_classes(&self) -> usize {
        self.universe.num_classes()
    }

    /// Semantic-vector dimension at cache point `j`.
    pub fn feature_dim(&self, j: usize) -> usize {
        self.arch.cache_points[j].dim
    }

    /// Byte size of one cache entry at point `j`.
    pub fn entry_bytes(&self, j: usize) -> usize {
        self.arch.entry_bytes(j)
    }

    /// The semantic vector observed at cache point `j` for this frame.
    ///
    /// # Panics
    /// Panics if `j` is not a preset cache point.
    pub fn semantic_vector(
        &self,
        frame: &Frame,
        client: &ClientProfile,
        j: usize,
        view: &mut ClientFeatureView,
    ) -> Vec<f32> {
        assert!(j < self.num_cache_points(), "cache point {j} out of range");
        self.universe.semantic_vector(frame, client, j, view)
    }

    /// Runs the full model on `frame` and returns its prediction.
    ///
    /// Deterministic per (frame, client): repeated calls agree, so cache
    /// baselines and CoCa can be compared on identical streams.
    pub fn classify(
        &self,
        frame: &Frame,
        client: &ClientProfile,
        view: &mut ClientFeatureView,
    ) -> Prediction {
        let head = self.universe.head_layer();
        let v = self.universe.semantic_vector(frame, client, head, view);
        let scale = self.universe.config().head_scale;
        let mut logits: Vec<f32> = (0..self.num_classes())
            .map(|c| scale * cosine(&v, self.universe.global_center(head, c)))
            .collect();
        softmax_inplace(&mut logits);
        let class = top1(&logits).expect("non-empty class set");
        let margin = top2_margin(&logits);
        Prediction {
            class,
            correct: class == frame.class,
            probs: logits,
            margin,
        }
    }

    // ----- virtual-time accounting (delegates to the latency profile) ----

    /// Full no-cache compute time.
    pub fn full_compute(&self) -> SimDuration {
        self.latency.full_compute()
    }

    /// Compute time to arrive at cache point `j`.
    pub fn compute_to_point(&self, j: usize) -> SimDuration {
        self.latency.compute_to_point(j)
    }

    /// Model compute saved by a hit at point `j` (the paper's Υ_j).
    pub fn saved_if_hit_at(&self, j: usize) -> SimDuration {
        self.latency.saved_if_hit_at(j)
    }

    /// Cost of one lookup at point `j` over `entries` cached classes.
    pub fn lookup_cost(&self, j: usize, entries: usize) -> SimDuration {
        self.latency.lookup_cost(self.feature_dim(j), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::distribution::uniform_weights;
    use coca_data::{StreamConfig, StreamGenerator};

    fn runtime(id: ModelId, classes: usize) -> (ModelRuntime, ClientProfile) {
        let dataset = DatasetSpec::ucf101().subset(classes);
        let seeds = SeedTree::new(21);
        let rt = ModelRuntime::new(id, &dataset, &seeds);
        let client = ClientProfile::new(0, 0.25, 0.7, &seeds);
        (rt, client)
    }

    fn stream(classes: usize, n: usize, seed: u64) -> Vec<Frame> {
        let mut g = StreamGenerator::new(
            StreamConfig::new(uniform_weights(classes), 20.0),
            &SeedTree::new(seed),
        );
        g.take(n)
    }

    fn accuracy(rt: &ModelRuntime, client: &ClientProfile, frames: &[Frame]) -> f64 {
        let mut view = ClientFeatureView::new();
        let correct = frames
            .iter()
            .filter(|f| rt.classify(f, client, &mut view).correct)
            .count();
        correct as f64 / frames.len() as f64
    }

    #[test]
    fn resnet101_accuracy_is_near_paper_anchor() {
        // Paper: ResNet101 on UCF101-50 = 80.56 %. The feature geometry is
        // calibrated to land near that; accept a generous band. Headline
        // accuracy tracks the stream's hard-run share, which is noisy per
        // stream seed (a 4000-frame stream holds only ~200 runs), so
        // average over a few independent streams.
        let (rt, client) = runtime(ModelId::ResNet101, 50);
        let seeds = [31u64, 32, 33];
        let acc = seeds
            .iter()
            .map(|&s| accuracy(&rt, &client, &stream(50, 4000, s)))
            .sum::<f64>()
            / seeds.len() as f64;
        assert!((0.74..=0.88).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn deeper_models_are_no_worse_and_more_confident() {
        // With the near-binary ambiguity channel, headline accuracy is
        // driven by the hard-run share for every model; depth shows up as
        // non-inferiority plus systematically larger correct-prediction
        // margins (cleaner, better-separated deep features).
        let frames = stream(50, 4000, 32);
        let (r50, c50) = runtime(ModelId::ResNet50, 50);
        let (r152, c152) = runtime(ModelId::ResNet152, 50);
        let a50 = accuracy(&r50, &c50, &frames);
        let a152 = accuracy(&r152, &c152, &frames);
        assert!(a152 >= a50 - 0.01, "resnet152 {a152} vs resnet50 {a50}");
        let mean_margin = |rt: &ModelRuntime, client: &ClientProfile| -> f64 {
            let mut view = ClientFeatureView::new();
            let mut sum = 0.0;
            let mut n = 0u32;
            for f in &frames {
                let p = rt.classify(f, client, &mut view);
                if p.correct {
                    sum += p.margin as f64;
                    n += 1;
                }
            }
            sum / n as f64
        };
        let m50 = mean_margin(&r50, &c50);
        let m152 = mean_margin(&r152, &c152);
        assert!(m152 > m50, "margin resnet152 {m152} vs resnet50 {m50}");
    }

    #[test]
    fn classification_is_deterministic() {
        let (rt, client) = runtime(ModelId::Vgg16Bn, 20);
        let f = stream(20, 10, 33)[7];
        let mut v1 = ClientFeatureView::new();
        let mut v2 = ClientFeatureView::new();
        let a = rt.classify(&f, &client, &mut v1);
        let b = rt.classify(&f, &client, &mut v2);
        assert_eq!(a.class, b.class);
        assert_eq!(a.probs, b.probs);
    }

    #[test]
    fn probs_are_a_distribution_and_margin_matches() {
        let (rt, client) = runtime(ModelId::AstBase, 10);
        let mut view = ClientFeatureView::new();
        for f in stream(10, 50, 34) {
            let p = rt.classify(&f, &client, &mut view);
            let sum: f32 = p.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(p.margin >= 0.0 && p.margin <= 1.0);
            assert_eq!(p.class, top1(&p.probs).unwrap());
        }
    }

    #[test]
    fn easy_runs_classify_correctly() {
        let (rt, client) = runtime(ModelId::ResNet101, 50);
        let mut view = ClientFeatureView::new();
        let frames = stream(50, 3000, 35);
        let easy: Vec<&Frame> = frames.iter().filter(|f| f.run_difficulty < 0.6).collect();
        assert!(easy.len() > 100);
        let correct = easy
            .iter()
            .filter(|f| rt.classify(f, &client, &mut view).correct)
            .count();
        let acc = correct as f64 / easy.len() as f64;
        assert!(acc > 0.97, "easy accuracy {acc}");
    }

    #[test]
    fn errors_mostly_confuse_siblings() {
        let (rt, client) = runtime(ModelId::ResNet101, 50);
        let mut view = ClientFeatureView::new();
        let mut err = 0usize;
        let mut sib_err = 0usize;
        for f in stream(50, 6000, 36) {
            let p = rt.classify(&f, &client, &mut view);
            if !p.correct {
                err += 1;
                if rt.universe().siblings(f.class).contains(&p.class) {
                    sib_err += 1;
                }
            }
        }
        assert!(err > 50, "need errors to measure ({err})");
        let frac = sib_err as f64 / err as f64;
        assert!(frac > 0.8, "sibling-error fraction {frac}");
    }

    #[test]
    fn time_accounting_is_consistent() {
        let (rt, _) = runtime(ModelId::ResNet101, 50);
        let l = rt.num_cache_points();
        assert_eq!(
            rt.compute_to_point(l - 1) + rt.saved_if_hit_at(l - 1),
            rt.full_compute()
        );
        assert!(rt.lookup_cost(0, 50) < rt.lookup_cost(l - 1, 50));
        assert!(rt.entry_bytes(0) < rt.entry_bytes(l - 1));
    }
}
