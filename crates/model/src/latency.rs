//! The calibrated virtual-time cost model.
//!
//! Two anchors from the paper fix every constant here:
//!
//! * Edge-Only (no cache) latency per model — e.g. ResNet101 on UCF101
//!   inputs costs 40.58 ms (Table I); block latencies distribute that total
//!   according to the architecture's relative block weights, scaled by the
//!   dataset's input-cost factor.
//! * Lookup cost — with **all 34** ResNet101 cache layers active and the
//!   full 50-class UCF101 subset cached, total lookup time is **56.22 %**
//!   of the no-cache latency (paper §III.1). A lookup at one layer costs a
//!   fixed base (pooling + bookkeeping) plus a per-entry term proportional
//!   to the layer's feature dimension (one cosine per cached class).

use coca_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::arch::ModelArch;

/// Anchor: fraction of ResNet101's no-cache latency spent on lookups when
/// all 34 layers hold 50-class entries (paper §III.1).
pub const RESNET101_FULL_LOOKUP_FRACTION: f64 = 0.5622;

/// Fixed per-layer lookup overhead in ms (pooling the feature map into the
/// semantic vector + scoring bookkeeping).
pub const LOOKUP_BASE_MS: f64 = 0.05;

/// Per-entry lookup cost in ms for a 128-dimensional entry, derived from
/// the ResNet101 anchor; see [`per_entry_ms_at_dim128`] for the derivation
/// test.
pub const PER_ENTRY_MS_AT_DIM128: f64 = 0.013_03;

/// Reference dimension for [`PER_ENTRY_MS_AT_DIM128`].
pub const REF_DIM: f64 = 128.0;

/// Per-model, per-dataset virtual-time costs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Latency of each of the `L + 1` blocks.
    blocks: Vec<SimDuration>,
    /// Cumulative compute: `prefix[j]` = blocks `0..=j` (arriving at cache
    /// point `j` costs `prefix[j]`; full inference costs `prefix[L]`).
    prefix: Vec<SimDuration>,
}

impl LatencyProfile {
    /// Builds the profile for `arch` with inputs scaled by
    /// `input_cost_factor` (1.0 = the UCF101 anchor).
    pub fn new(arch: &ModelArch, input_cost_factor: f64) -> Self {
        assert!(
            input_cost_factor > 0.0,
            "input cost factor must be positive"
        );
        let weight_sum: f64 = arch.block_weights.iter().sum();
        let total_ms = arch.base_latency_ms * input_cost_factor;
        let blocks: Vec<SimDuration> = arch
            .block_weights
            .iter()
            .map(|w| SimDuration::from_millis_f64(total_ms * w / weight_sum))
            .collect();
        let mut prefix = Vec::with_capacity(blocks.len());
        let mut acc = SimDuration::ZERO;
        for &b in &blocks {
            acc += b;
            prefix.push(acc);
        }
        Self { blocks, prefix }
    }

    /// Number of compute blocks (`L + 1`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Latency of block `j`.
    pub fn block(&self, j: usize) -> SimDuration {
        self.blocks[j]
    }

    /// Compute cost to *arrive at* cache point `j` (blocks `0..=j`).
    pub fn compute_to_point(&self, j: usize) -> SimDuration {
        self.prefix[j]
    }

    /// Full no-cache compute (all `L + 1` blocks).
    pub fn full_compute(&self) -> SimDuration {
        *self.prefix.last().expect("at least one block")
    }

    /// Model compute saved by a hit at cache point `j` — the paper's Υ_j
    /// ("saved inference time … considering model computation time only").
    pub fn saved_if_hit_at(&self, j: usize) -> SimDuration {
        self.full_compute() - self.prefix[j]
    }

    /// Cost of one cache lookup at a point of dimension `dim` holding
    /// `entries` cached classes.
    pub fn lookup_cost(&self, dim: usize, entries: usize) -> SimDuration {
        SimDuration::from_millis_f64(lookup_cost_ms(dim, entries))
    }
}

/// Lookup cost formula in milliseconds, exposed for planners (the server's
/// ACA latency estimates use the same formula clients are charged).
pub fn lookup_cost_ms(dim: usize, entries: usize) -> f64 {
    LOOKUP_BASE_MS + PER_ENTRY_MS_AT_DIM128 * entries as f64 * dim as f64 / REF_DIM
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn block_latencies_sum_to_anchor() {
        let arch = zoo::resnet101();
        let p = LatencyProfile::new(&arch, 1.0);
        assert_eq!(p.num_blocks(), 35);
        // Per-block ns rounding bounds the total error by L/2 nanoseconds.
        assert!((p.full_compute().as_millis_f64() - 40.58).abs() < 1e-3);
        let sum: SimDuration = (0..p.num_blocks()).map(|j| p.block(j)).sum();
        // Prefix accumulates the same nanoseconds exactly.
        assert_eq!(sum, p.full_compute());
    }

    #[test]
    fn input_cost_factor_scales_total() {
        let arch = zoo::resnet101();
        let p = LatencyProfile::new(&arch, 44.87 / 40.58);
        assert!((p.full_compute().as_millis_f64() - 44.87).abs() < 0.01);
    }

    #[test]
    fn saved_time_decreases_with_depth() {
        let arch = zoo::resnet152();
        let p = LatencyProfile::new(&arch, 1.0);
        let l = arch.num_cache_points();
        for j in 1..l {
            assert!(p.saved_if_hit_at(j) < p.saved_if_hit_at(j - 1));
        }
        // Hitting at the first point saves almost everything.
        assert!(p.saved_if_hit_at(0).as_millis_f64() > 0.9 * p.full_compute().as_millis_f64());
    }

    /// The derivation behind [`PER_ENTRY_MS_AT_DIM128`]: with all 34
    /// ResNet101 layers active and 50 classes cached, total lookup cost
    /// must be ≈ 56.22 % of the 40.58 ms no-cache latency.
    #[test]
    fn per_entry_ms_at_dim128() {
        let arch = zoo::resnet101();
        let total_lookup_ms: f64 = arch
            .cache_points
            .iter()
            .map(|p| lookup_cost_ms(p.dim, 50))
            .sum();
        let frac = total_lookup_ms / 40.58;
        assert!(
            (frac - RESNET101_FULL_LOOKUP_FRACTION).abs() < 0.01,
            "lookup fraction {frac} vs anchor {RESNET101_FULL_LOOKUP_FRACTION}"
        );
    }

    #[test]
    fn lookup_cost_scales_with_entries_and_dim() {
        assert!(lookup_cost_ms(128, 100) > lookup_cost_ms(128, 10));
        assert!(lookup_cost_ms(256, 50) > lookup_cost_ms(64, 50));
        // Zero entries: only the base remains.
        assert!((lookup_cost_ms(128, 0) - LOOKUP_BASE_MS).abs() < 1e-12);
    }
}
