//! Aligned plain-text and Markdown table rendering.
//!
//! The experiment binaries print the same rows the paper's tables report;
//! this module keeps that output readable without pulling in a TUI crate.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row is padded or truncated to the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for rows of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders as an aligned plain-text table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!(" {:<width$} ", c, width = w))
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(out, "{line}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "**{}**\n", self.title);
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with `digits` decimal places — the standard cell format
/// used across experiment binaries.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{:.*}", digits, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "Lat.(ms)", "Acc.(%)"]);
        t.row(&["CoCa".into(), "23.05".into(), "75.73".into()]);
        t.row(&["Edge-Only".into(), "29.94".into(), "78.12".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("CoCa"));
        // Alignment: every data line has the same length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(!s.contains("==")); // no title line
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("T", &["x", "y"]);
        t.row_display(&[1.5, 2.5]);
        let md = t.render_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1.5 | 2.5 |"));
    }

    #[test]
    fn fmt_f_controls_precision() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(40.0, 1), "40.0");
    }
}
