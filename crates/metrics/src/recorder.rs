//! Latency, accuracy and cache-hit recorders.

use coca_math::{OnlineStats, P2Quantile};
use coca_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Streaming latency statistics (mean/min/max + p50/p95/p99 estimates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyRecorder {
    stats: OnlineStats,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self {
            stats: OnlineStats::new(),
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let ms = d.as_millis_f64();
        self.stats.push(ms);
        self.p50.push(ms);
        self.p95.push(ms);
        self.p99.push(ms);
    }

    /// Mean latency in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        self.stats.mean()
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Estimated median in milliseconds.
    pub fn p50_ms(&self) -> Option<f64> {
        self.p50.estimate()
    }

    /// Estimated 95th percentile in milliseconds.
    pub fn p95_ms(&self) -> Option<f64> {
        self.p95.estimate()
    }

    /// Estimated 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> Option<f64> {
        self.p99.estimate()
    }

    /// Maximum observed latency in milliseconds.
    pub fn max_ms(&self) -> Option<f64> {
        self.stats.max()
    }

    /// Underlying mean/variance accumulator.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }
}

/// Counting accuracy recorder.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AccuracyRecorder {
    correct: u64,
    total: u64,
}

impl AccuracyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, correct: bool) {
        self.total += 1;
        if correct {
            self.correct += 1;
        }
    }

    /// Accuracy in [0, 1] (0.0 when empty).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Accuracy in percent.
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy() * 100.0
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Correct predictions recorded.
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Merges another recorder's counts.
    pub fn merge(&mut self, other: &AccuracyRecorder) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Per-cache-layer hit bookkeeping.
///
/// Layer indices refer to the model's *preset* cache-layer positions
/// (0-based); a sample that reaches the classifier head without any hit
/// counts as a miss.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HitRecorder {
    /// `hits[j]` = samples that exited at cache layer `j`.
    hits: Vec<u64>,
    /// `correct[j]` = exits at layer `j` whose class was the true label.
    correct: Vec<u64>,
    misses: u64,
    miss_correct: u64,
}

impl HitRecorder {
    /// Recorder for a model with `num_layers` preset cache layers.
    pub fn new(num_layers: usize) -> Self {
        Self {
            hits: vec![0; num_layers],
            correct: vec![0; num_layers],
            misses: 0,
            miss_correct: 0,
        }
    }

    /// Records a cache hit at `layer` (whether the returned class was
    /// correct is tracked separately for the paper's "hit accuracy").
    pub fn record_hit(&mut self, layer: usize, correct: bool) {
        if layer >= self.hits.len() {
            self.hits.resize(layer + 1, 0);
            self.correct.resize(layer + 1, 0);
        }
        self.hits[layer] += 1;
        if correct {
            self.correct[layer] += 1;
        }
    }

    /// Records a full inference (cache miss end-to-end).
    pub fn record_miss(&mut self, correct: bool) {
        self.misses += 1;
        if correct {
            self.miss_correct += 1;
        }
    }

    /// Total samples observed.
    pub fn total(&self) -> u64 {
        self.hits.iter().sum::<u64>() + self.misses
    }

    /// Overall hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits.iter().sum::<u64>() as f64 / total as f64
        }
    }

    /// Fraction of *all* samples that exited at `layer` (the paper's
    /// per-layer hit ratio in Fig. 1(b)).
    pub fn layer_hit_ratio(&self, layer: usize) -> f64 {
        let total = self.total();
        if total == 0 || layer >= self.hits.len() {
            0.0
        } else {
            self.hits[layer] as f64 / total as f64
        }
    }

    /// Accuracy of the samples that exited at `layer` (`None` if no exits).
    pub fn layer_hit_accuracy(&self, layer: usize) -> Option<f64> {
        if layer >= self.hits.len() || self.hits[layer] == 0 {
            None
        } else {
            Some(self.correct[layer] as f64 / self.hits[layer] as f64)
        }
    }

    /// Accuracy over all cache hits (`None` if no hits).
    pub fn hit_accuracy(&self) -> Option<f64> {
        let hits: u64 = self.hits.iter().sum();
        if hits == 0 {
            None
        } else {
            Some(self.correct.iter().sum::<u64>() as f64 / hits as f64)
        }
    }

    /// Number of cache layers tracked.
    pub fn num_layers(&self) -> usize {
        self.hits.len()
    }

    /// Raw per-layer hit counts.
    pub fn hits_per_layer(&self) -> &[u64] {
        &self.hits
    }

    /// Full inferences recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Merges another recorder (layer counts align by index).
    pub fn merge(&mut self, other: &HitRecorder) {
        if other.hits.len() > self.hits.len() {
            self.hits.resize(other.hits.len(), 0);
            self.correct.resize(other.correct.len(), 0);
        }
        for (i, (&h, &c)) in other.hits.iter().zip(&other.correct).enumerate() {
            self.hits[i] += h;
            self.correct[i] += c;
        }
        self.misses += other.misses;
        self.miss_correct += other.miss_correct;
    }
}

/// One run's end-to-end summary: what every experiment table reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Per-frame end-to-end inference latency.
    pub latency: LatencyRecorder,
    /// Overall classification accuracy.
    pub accuracy: AccuracyRecorder,
    /// Cache-hit structure.
    pub hits: HitRecorder,
    /// Server-side sojourn (queue wait + merge compute) of this client's
    /// end-of-round uploads — the per-client share of server upload load.
    pub upload: LatencyRecorder,
}

impl RunSummary {
    /// Summary for a model with `num_layers` preset cache layers.
    pub fn new(num_layers: usize) -> Self {
        Self {
            latency: LatencyRecorder::new(),
            accuracy: AccuracyRecorder::new(),
            hits: HitRecorder::new(num_layers),
            upload: LatencyRecorder::new(),
        }
    }

    /// Merges a per-client summary into a global one.
    ///
    /// ## Latency-quantile contract
    ///
    /// Counting state (accuracy, hits, the latency *moments* — count /
    /// mean / min / max) merges **exactly**. The P² quantile sketches do
    /// not compose: two sketches cannot be combined into the sketch a
    /// single pass over the union would have produced. The contract is
    /// therefore:
    ///
    /// * if one side is empty, the merged summary carries the non-empty
    ///   side's sketches verbatim (exact — the union *is* that side);
    /// * otherwise the merged `p50/p95/p99` remain **`self`'s** estimates
    ///   and must be treated as per-shard approximations, not fleet
    ///   quantiles.
    ///
    /// Callers that need true cross-client quantiles must record through
    /// a single recorder on the per-frame path (what the engine's global
    /// `EngineReport::latency` does) or use the exactly-mergeable
    /// [`LatencyHistogram`](crate::LatencyHistogram), which trades ≤1/64
    /// relative bucketing error for exact merges at any fan-in.
    pub fn merge(&mut self, other: &RunSummary) {
        self.accuracy.merge(&other.accuracy);
        self.hits.merge(&other.hits);
        merge_latency(&mut self.latency, &other.latency);
        merge_latency(&mut self.upload, &other.upload);
    }
}

/// Merges `other` into `dst` under the quantile contract documented on
/// [`RunSummary::merge`]: moments exactly, sketches adopted wholesale only
/// when `dst` has seen no data (previously an empty `dst` silently
/// *dropped* `other`'s sketches, reporting `None` quantiles for a
/// non-empty merge).
fn merge_latency(dst: &mut LatencyRecorder, other: &LatencyRecorder) {
    if dst.count() == 0 {
        *dst = other.clone();
        return;
    }
    let mut moments = *dst.stats();
    moments.merge(other.stats());
    *dst.stats_mut() = moments;
}

impl LatencyRecorder {
    /// Mutable access to the moments accumulator (used by summary merging).
    pub fn stats_mut(&mut self) -> &mut OnlineStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_recorder_tracks_mean_and_quantiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100u64 {
            r.record(SimDuration::from_millis(i));
        }
        assert_eq!(r.count(), 100);
        assert!((r.mean_ms() - 50.5).abs() < 1e-9);
        let p50 = r.p50_ms().unwrap();
        assert!((p50 - 50.0).abs() < 3.0, "p50 {p50}");
        let p99 = r.p99_ms().unwrap();
        assert!(p99 > 95.0, "p99 {p99}");
        assert_eq!(r.max_ms(), Some(100.0));
    }

    #[test]
    fn accuracy_recorder_counts() {
        let mut a = AccuracyRecorder::new();
        assert_eq!(a.accuracy(), 0.0);
        for i in 0..10 {
            a.record(i % 4 != 0);
        }
        assert_eq!(a.total(), 10);
        assert_eq!(a.correct(), 7);
        assert!((a.accuracy_pct() - 70.0).abs() < 1e-9);
        let mut b = AccuracyRecorder::new();
        b.record(true);
        b.merge(&a);
        assert_eq!(b.total(), 11);
        assert_eq!(b.correct(), 8);
    }

    #[test]
    fn hit_recorder_layer_bookkeeping() {
        let mut h = HitRecorder::new(3);
        h.record_hit(0, true);
        h.record_hit(0, false);
        h.record_hit(2, true);
        h.record_miss(true);
        assert_eq!(h.total(), 4);
        assert!((h.hit_ratio() - 0.75).abs() < 1e-9);
        assert!((h.layer_hit_ratio(0) - 0.5).abs() < 1e-9);
        assert_eq!(h.layer_hit_accuracy(0), Some(0.5));
        assert_eq!(h.layer_hit_accuracy(1), None);
        assert_eq!(h.layer_hit_accuracy(2), Some(1.0));
        assert!((h.hit_accuracy().unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(h.misses(), 1);
    }

    #[test]
    fn hit_recorder_grows_on_out_of_range_layer() {
        let mut h = HitRecorder::new(1);
        h.record_hit(5, true);
        assert_eq!(h.num_layers(), 6);
        assert_eq!(h.layer_hit_ratio(5), 1.0);
    }

    #[test]
    fn hit_recorder_merge_aligns_layers() {
        let mut a = HitRecorder::new(2);
        a.record_hit(0, true);
        let mut b = HitRecorder::new(4);
        b.record_hit(3, false);
        b.record_miss(false);
        a.merge(&b);
        assert_eq!(a.num_layers(), 4);
        assert_eq!(a.total(), 3);
        assert_eq!(a.hits_per_layer(), &[1, 0, 0, 1]);
    }

    #[test]
    fn merging_into_an_empty_summary_keeps_quantiles() {
        // Regression: an empty `self` used to drop `other`'s quantile
        // sketches entirely, reporting `None` after a non-empty merge.
        let mut other = RunSummary::new(1);
        for i in 1..=100u64 {
            other.latency.record(SimDuration::from_millis(i));
            other.upload.record(SimDuration::from_millis(i * 2));
        }
        let mut total = RunSummary::new(1);
        total.merge(&other);
        assert_eq!(total.latency.count(), 100);
        let p50 = total.latency.p50_ms().expect("adopted sketch");
        assert!((p50 - other.latency.p50_ms().unwrap()).abs() < 1e-12);
        assert_eq!(total.upload.p99_ms(), other.upload.p99_ms());
        // A second, non-empty merge keeps exact moments.
        total.merge(&other);
        assert_eq!(total.latency.count(), 200);
        assert_eq!(total.latency.max_ms(), Some(100.0));
    }

    #[test]
    fn run_summary_merge_combines_counts() {
        let mut a = RunSummary::new(2);
        a.latency.record(SimDuration::from_millis(10));
        a.accuracy.record(true);
        a.hits.record_hit(0, true);
        let mut b = RunSummary::new(2);
        b.latency.record(SimDuration::from_millis(30));
        b.accuracy.record(false);
        b.hits.record_miss(false);
        a.merge(&b);
        assert_eq!(a.accuracy.total(), 2);
        assert_eq!(a.hits.total(), 2);
        assert!((a.latency.stats().mean() - 20.0).abs() < 1e-9);
    }
}
