//! A fixed-bin, exactly-mergeable latency histogram for fleet-scale runs.
//!
//! The default [`LatencyRecorder`](crate::LatencyRecorder) keeps exact
//! moments plus P² quantile sketches — O(1) per observation, but the
//! sketches do not compose across recorders (see the contract on
//! [`RunSummary::merge`](crate::recorder::RunSummary::merge)). At 10⁵–10⁶
//! clients the fleet experiments instead want a *mergeable* distribution:
//! [`LatencyHistogram`] buckets nanosecond durations HDR-style (log₂ major
//! buckets × 64 linear sub-buckets, ≤ 1/64 ≈ 1.6 % relative error), so
//!
//! * recording is a shift/mask plus one counter increment — deterministic,
//!   no floating point;
//! * merging is element-wise `u64` addition — **exact** at any fan-in and
//!   any merge order;
//! * quantiles are deterministic bucket lower bounds — the same answer on
//!   every host, every run, every sharding of the same observations.
//!
//! The exact recorder stays the default and the record-regeneration
//! reference; the histogram is the opt-in streaming mode behind
//! `MetricsConfig::latency_histogram`.

use coca_sim::SimDuration;

/// Sub-bucket resolution bits: 64 linear sub-buckets per power of two.
const SUB_BITS: u32 = 6;
/// Sub-buckets per major (power-of-two) bucket.
const SUBS: u64 = 1 << SUB_BITS;
/// Total buckets: values `< 64` ns get exact unit buckets (one major
/// group), then one 64-wide group per remaining leading-bit position.
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBS as usize;

/// Deterministic log-linear histogram over `u64` nanosecond durations.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    /// Exact nanosecond sum — `u128` so 2⁶⁴ observations of u64 values
    /// cannot overflow; the mean stays exact.
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a nanosecond value: identity below 64, then
/// `(msb-group, next 6 bits)`.
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns < SUBS {
        return ns as usize;
    }
    let msb = 63 - ns.leading_zeros();
    let group = (msb - SUB_BITS + 1) as u64;
    ((group << SUB_BITS) | ((ns >> (msb - SUB_BITS)) & (SUBS - 1))) as usize
}

/// Inclusive lower bound (ns) of bucket `idx` — the inverse of
/// [`bucket_of`] up to sub-bucket truncation.
#[inline]
fn lower_bound_ns(idx: usize) -> u64 {
    let group = (idx as u64) >> SUB_BITS;
    let sub = (idx as u64) & (SUBS - 1);
    if group == 0 {
        sub
    } else {
        (SUBS + sub) << (group - 1)
    }
}

impl LatencyHistogram {
    /// An empty histogram (~30 KiB, fixed).
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one **wall-clock** duration (`std::time::Duration`, e.g.
    /// an `Instant::elapsed()`), saturating at `u64::MAX` ns (~584 years)
    /// — the load generator's per-request path, no hand conversion.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Median in milliseconds ([`Self::quantile_ms`] at q = 0.5).
    pub fn p50(&self) -> Option<f64> {
        self.quantile_ms(0.5)
    }

    /// 99th percentile in milliseconds ([`Self::quantile_ms`] at 0.99).
    pub fn p99(&self) -> Option<f64> {
        self.quantile_ms(0.99)
    }

    /// 99.9th percentile in milliseconds ([`Self::quantile_ms`] at
    /// 0.999) — the load generator's headline tail.
    pub fn p999(&self) -> Option<f64> {
        self.quantile_ms(0.999)
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean in milliseconds (0.0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_ns / self.count as u128) as f64 / 1.0e6
        }
    }

    /// Exact maximum in milliseconds.
    pub fn max_ms(&self) -> Option<f64> {
        (self.count > 0).then(|| self.max_ns as f64 / 1.0e6)
    }

    /// Deterministic `q`-quantile in milliseconds: the lower bound of the
    /// bucket holding the `⌈q·count⌉`-th smallest observation (so the true
    /// value lies within one sub-bucket, ≤ 1/64 relative, above it).
    /// `None` when empty or `q` is not in `(0, 1]`.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(lower_bound_ns(idx) as f64 / 1.0e6);
            }
        }
        unreachable!("rank ≤ count must be reached by the cumulative scan")
    }

    /// Merges `other` into `self` — element-wise integer addition, exact
    /// at any fan-in and independent of merge order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_monotone_and_bounded() {
        let mut last = 0usize;
        for ns in (0..2_000u64).chain((0..64).map(|i| 1u64 << (i.min(63)))) {
            let b = bucket_of(ns);
            assert!(b < BUCKETS, "bucket {b} out of range for {ns}");
            let lb = lower_bound_ns(b);
            assert!(lb <= ns, "lower bound {lb} above value {ns}");
            // Relative error: value < lb + lb/64 + 1 (sub-bucket width).
            assert!(
                ns - lb <= (lb >> SUB_BITS) + (lb == ns) as u64
                    || ns < 64
                    || ns - lb <= lb / 64 + 1
            );
            if ns > 0 {
                assert!(bucket_of(ns) >= last.min(bucket_of(ns)), "monotone");
            }
            last = b;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_values_below_64ns() {
        for ns in 0..64u64 {
            assert_eq!(lower_bound_ns(bucket_of(ns)), ns);
        }
    }

    #[test]
    fn mean_and_quantiles_are_deterministic() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        // Exact integer mean: sum = 500500 µs over 1000 obs.
        assert!((h.mean_ms() - 0.5005).abs() < 1e-9);
        let p50 = h.quantile_ms(0.5).unwrap();
        assert!((p50 - 0.5).abs() / 0.5 < 1.0 / 64.0 + 1e-9, "p50 {p50}");
        let p99 = h.quantile_ms(0.99).unwrap();
        assert!((p99 - 0.99).abs() / 0.99 < 1.0 / 64.0 + 1e-9, "p99 {p99}");
        assert_eq!(h.max_ms(), Some(1.0));
        assert!(h.quantile_ms(0.0).is_none());
        assert!(h.quantile_ms(1.5).is_none());
    }

    #[test]
    fn record_duration_matches_record_bucket_for_bucket() {
        let mut sim = LatencyHistogram::new();
        let mut wall = LatencyHistogram::new();
        for ns in [0u64, 1, 63, 64, 999, 1_000_000, 7_777_777_777] {
            sim.record(SimDuration::from_nanos(ns));
            wall.record_duration(std::time::Duration::from_nanos(ns));
        }
        assert_eq!(sim.counts, wall.counts);
        assert_eq!(sim.sum_ns, wall.sum_ns);
        assert_eq!(sim.max_ms(), wall.max_ms());
        // Beyond-u64 wall durations saturate instead of wrapping.
        let mut h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::MAX);
        assert_eq!(h.max_ns, u64::MAX);
    }

    #[test]
    fn convenience_quantiles_delegate_to_the_generic_path() {
        let mut h = LatencyHistogram::new();
        assert!(h.p50().is_none() && h.p99().is_none() && h.p999().is_none());
        for i in 1..=10_000u64 {
            h.record_duration(std::time::Duration::from_micros(i));
        }
        assert_eq!(h.p50(), h.quantile_ms(0.5));
        assert_eq!(h.p99(), h.quantile_ms(0.99));
        assert_eq!(h.p999(), h.quantile_ms(0.999));
        let (p50, p99, p999) = (h.p50().unwrap(), h.p99().unwrap(), h.p999().unwrap());
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(
            (p999 - 9.99).abs() / 9.99 < 1.0 / 64.0 + 1e-9,
            "p999 {p999}"
        );
    }

    #[test]
    fn merge_equals_single_pass_for_any_split() {
        let obs: Vec<u64> = (0..500u64).map(|i| i * i * 37 + 13).collect();
        let mut whole = LatencyHistogram::new();
        for &ns in &obs {
            whole.record(SimDuration::from_nanos(ns));
        }
        for split in [1usize, 7, 250, 499] {
            let (a, b) = obs.split_at(split);
            let mut ha = LatencyHistogram::new();
            let mut hb = LatencyHistogram::new();
            for &ns in a {
                ha.record(SimDuration::from_nanos(ns));
            }
            for &ns in b {
                hb.record(SimDuration::from_nanos(ns));
            }
            ha.merge(&hb);
            assert_eq!(ha.count(), whole.count());
            assert_eq!(ha.sum_ns, whole.sum_ns);
            assert_eq!(ha.counts, whole.counts);
            for q in [0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(ha.quantile_ms(q), whole.quantile_ms(q), "q={q}");
            }
        }
    }
}
