//! Serializable experiment records.
//!
//! Every experiment binary writes a JSON record alongside its printed table
//! so EXPERIMENTS.md can reference machine-readable numbers and reruns can
//! be diffed.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A machine-readable record of one experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig7"` or `"table2"`.
    pub id: String,
    /// Human-readable one-liner.
    pub title: String,
    /// Free-form parameter map (model, dataset, seeds, thresholds …).
    pub params: Map<String, Value>,
    /// Result rows; each row is a flat map of column → value.
    pub rows: Vec<Map<String, Value>>,
}

impl ExperimentRecord {
    /// A new empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            params: Map::new(),
            rows: Vec::new(),
        }
    }

    /// Sets one parameter.
    pub fn param(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        self.params.insert(key.to_string(), value.into());
        self
    }

    /// Appends one result row from `(column, value)` pairs.
    pub fn push_row(&mut self, cells: &[(&str, Value)]) -> &mut Self {
        let mut row = Map::new();
        for (k, v) in cells {
            row.insert(k.to_string(), v.clone());
        }
        self.rows.push(row);
        self
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ExperimentRecord is always serializable")
    }

    /// Writes `<dir>/<id>.json`, creating `dir` if needed. Returns the path.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Loads a record back from a JSON file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn round_trips_through_json() {
        let mut r = ExperimentRecord::new("tab1", "hot-spot class sweep");
        r.param("model", "resnet101").param("seed", 42);
        r.push_row(&[
            ("classes", json!(50)),
            ("lat_ms", json!(30.53)),
            ("acc", json!(80.08)),
        ]);
        let text = r.to_json();
        let back: ExperimentRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back.id, "tab1");
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0]["classes"], json!(50));
        assert_eq!(back.params["seed"], json!(42));
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join("coca-metrics-test");
        let mut r = ExperimentRecord::new("fig8", "replacement policies");
        r.push_row(&[("cache_size", json!(30)), ("lat_ms", json!(31.2))]);
        let path = r.save(&dir).unwrap();
        let back = ExperimentRecord::load(&path).unwrap();
        assert_eq!(back.id, "fig8");
        assert_eq!(back.rows[0]["cache_size"], json!(30));
        let _ = std::fs::remove_file(path);
    }
}
