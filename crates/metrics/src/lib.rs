//! # coca-metrics — measurement plumbing
//!
//! Everything the evaluation harness needs to turn simulated inference runs
//! into the tables and series the paper reports:
//!
//! * [`recorder`] — latency / accuracy / per-layer hit recorders built on
//!   `coca-math` online statistics.
//! * [`histogram`] — a fixed-bin log-linear latency histogram whose merges
//!   are exact integer adds: the streaming-metrics mode fleet-scale runs
//!   use where P² sketches cannot be combined across shards.
//! * [`table`] — aligned ASCII (and Markdown) table rendering for the
//!   experiment binaries.
//! * [`record`] — serializable experiment records (`results/*.json`) that
//!   EXPERIMENTS.md cites.
//! * [`windowed`] — per-interval (virtual-time window) summaries for the
//!   dynamic-scenario experiments, where drift effects only show up as a
//!   time series.

pub mod histogram;
pub mod record;
pub mod recorder;
pub mod table;
pub mod windowed;

pub use histogram::LatencyHistogram;
pub use record::ExperimentRecord;
pub use recorder::{AccuracyRecorder, HitRecorder, LatencyRecorder, RunSummary};
pub use table::Table;
pub use windowed::{WindowStats, WindowedSummary};
