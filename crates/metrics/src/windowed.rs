//! Windowed (per-interval) run summaries.
//!
//! Aggregate numbers hide dynamics: a popularity shift halfway through a
//! run depresses the hit rate *for a while*, then the collaborative cache
//! recovers — exactly the effect the dynamic-scenario experiments need to
//! make visible. [`WindowedSummary`] buckets per-frame observations into
//! fixed-width virtual-time windows so hit-rate / latency / accuracy can
//! be reported as a time series.

use serde::{Deserialize, Serialize};

/// Aggregates of one virtual-time window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Frames completed inside the window.
    pub frames: u64,
    /// Frames whose prediction matched the ground truth.
    pub correct: u64,
    /// Frames answered by a cache hit (any layer).
    pub hits: u64,
    /// Sum of end-to-end frame latencies (ms) — divide by `frames`.
    pub latency_sum_ms: f64,
}

impl WindowStats {
    /// Cache hit ratio within the window (0.0 when empty).
    pub fn hit_ratio(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.hits as f64 / self.frames as f64
        }
    }

    /// Accuracy in percent within the window (0.0 when empty).
    pub fn accuracy_pct(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.correct as f64 / self.frames as f64 * 100.0
        }
    }

    /// Mean frame latency in ms within the window (0.0 when empty).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.latency_sum_ms / self.frames as f64
        }
    }
}

/// Per-interval summary over virtual time: the run's elapsed time tiles
/// into half-open windows, window `i` covering `[i·window_ms,
/// (i+1)·window_ms)`. Frames are bucketed by their completion instant;
/// a frame completing **exactly on a window boundary** (`at_ms == n ·
/// window_ms`) counts toward the window it executed in — the one the
/// boundary instant *terminates* (`n − 1`), not the one it opens. That
/// pins the convention so a run whose duration is an exact multiple of
/// the width spans exactly `duration / window_ms` windows instead of
/// growing a spurious trailing window covering time after the run ended.
/// (Instant 0 has no preceding window and lands in window 0.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedSummary {
    window_ms: f64,
    windows: Vec<WindowStats>,
}

impl WindowedSummary {
    /// An empty summary with the given window width (ms).
    ///
    /// # Panics
    /// Panics if `window_ms` is not positive and finite.
    pub fn new(window_ms: f64) -> Self {
        assert!(
            window_ms > 0.0 && window_ms.is_finite(),
            "window width must be positive, got {window_ms}"
        );
        Self {
            window_ms,
            windows: Vec::new(),
        }
    }

    /// Hard cap on the bucket vector (1 M windows ≈ 32 MB): observations
    /// beyond it fold into the final bucket instead of growing the vector
    /// unboundedly. Reached only by degenerate window/eventtime
    /// combinations — `ScenarioSpec::validate` bounds event instants
    /// well below this for any sane `metrics_window_ms`.
    pub const MAX_WINDOWS: usize = 1 << 20;

    /// Records one completed frame at virtual instant `at_ms`.
    pub fn record(&mut self, at_ms: f64, latency_ms: f64, correct: bool, hit: bool) {
        // `⌈t/w⌉ − 1` attributes a boundary-exact completion to the
        // window it terminates (see the type docs); for interior instants
        // it equals the plain `⌊t/w⌋` bucket. The old `⌊t/w⌋` assignment
        // pushed `t == n·w` into window `n`, so a run of duration exactly
        // `n·w` spanned `n + 1` windows.
        let idx = ((at_ms.max(0.0) / self.window_ms).ceil() as usize)
            .saturating_sub(1)
            .min(Self::MAX_WINDOWS - 1);
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, WindowStats::default());
        }
        let w = &mut self.windows[idx];
        w.frames += 1;
        if correct {
            w.correct += 1;
        }
        if hit {
            w.hits += 1;
        }
        w.latency_sum_ms += latency_ms;
    }

    /// The window width in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// The windows, index 0 first. Trailing windows always contain at
    /// least one frame; interior windows may be empty (e.g. while every
    /// client waits out a slow link).
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Number of windows spanned so far.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Merges another summary (same window width) into this one.
    ///
    /// # Panics
    /// Panics on window-width mismatch.
    pub fn merge(&mut self, other: &WindowedSummary) {
        assert!(
            (self.window_ms - other.window_ms).abs() < 1e-9,
            "cannot merge windowed summaries of different widths"
        );
        if other.windows.len() > self.windows.len() {
            self.windows
                .resize(other.windows.len(), WindowStats::default());
        }
        for (dst, src) in self.windows.iter_mut().zip(&other.windows) {
            dst.frames += src.frames;
            dst.correct += src.correct;
            dst.hits += src.hits;
            dst.latency_sum_ms += src.latency_sum_ms;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_land_in_their_completion_window() {
        let mut s = WindowedSummary::new(100.0);
        s.record(10.0, 5.0, true, true);
        s.record(99.9, 15.0, false, false);
        s.record(150.0, 20.0, true, true);
        s.record(350.0, 30.0, true, false);
        assert_eq!(s.len(), 4);
        let w = s.windows();
        assert_eq!(w[0].frames, 2);
        assert_eq!(w[1].frames, 1);
        assert_eq!(w[2].frames, 0);
        assert_eq!(w[3].frames, 1);
        assert!((w[0].mean_latency_ms() - 10.0).abs() < 1e-9);
        assert!((w[0].hit_ratio() - 0.5).abs() < 1e-9);
        assert!((w[0].accuracy_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_exact_completions_terminate_their_window() {
        // A run whose every frame completes exactly on a boundary — the
        // degenerate case the ⌈t/w⌉−1 assignment exists for. Duration
        // 300 ms at 100 ms windows must span exactly 3 windows, not 4.
        let mut s = WindowedSummary::new(100.0);
        s.record(100.0, 1.0, true, true);
        s.record(200.0, 1.0, true, false);
        s.record(300.0, 1.0, false, true);
        assert_eq!(s.len(), 3, "no spurious trailing window");
        for w in s.windows() {
            assert_eq!(w.frames, 1);
        }
        // Instant 0 has no preceding window: it lands in window 0.
        let mut z = WindowedSummary::new(100.0);
        z.record(0.0, 1.0, true, true);
        assert_eq!(z.len(), 1);
        assert_eq!(z.windows()[0].frames, 1);
        // Interior instants keep the plain ⌊t/w⌋ bucket.
        let mut i = WindowedSummary::new(100.0);
        i.record(100.0 + 1e-9, 1.0, true, true);
        assert_eq!(i.len(), 2);
        assert_eq!(i.windows()[1].frames, 1);
    }

    #[test]
    fn empty_windows_report_zero() {
        let w = WindowStats::default();
        assert_eq!(w.hit_ratio(), 0.0);
        assert_eq!(w.accuracy_pct(), 0.0);
        assert_eq!(w.mean_latency_ms(), 0.0);
        assert!(WindowedSummary::new(50.0).is_empty());
    }

    #[test]
    fn merge_aligns_windows() {
        let mut a = WindowedSummary::new(100.0);
        a.record(50.0, 10.0, true, true);
        let mut b = WindowedSummary::new(100.0);
        b.record(150.0, 20.0, false, false);
        b.record(50.0, 30.0, true, false);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.windows()[0].frames, 2);
        assert_eq!(a.windows()[1].frames, 1);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_width_mismatch() {
        let mut a = WindowedSummary::new(100.0);
        a.merge(&WindowedSummary::new(200.0));
    }

    #[test]
    fn far_future_observations_fold_into_the_capped_bucket() {
        let mut s = WindowedSummary::new(1.0);
        // An absurd completion instant must not allocate beyond the cap.
        s.record(1.0e18, 5.0, true, true);
        assert_eq!(s.len(), WindowedSummary::MAX_WINDOWS);
        assert_eq!(s.windows()[WindowedSummary::MAX_WINDOWS - 1].frames, 1);
    }

    #[test]
    fn round_trips_through_json() {
        let mut s = WindowedSummary::new(250.0);
        s.record(100.0, 12.5, true, false);
        s.record(600.0, 7.5, false, true);
        let text = serde_json::to_string(&s).unwrap();
        let back: WindowedSummary = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
