//! Numerically stable softmax and probability margins.
//!
//! The paper's rule-2 sample-collection test (§IV.C) inspects the final
//! softmax output of a *missed* inference: the sample is absorbed into the
//! cache-update table when `prob₁ − prob₂ > Δ`.

/// In-place numerically stable softmax. An empty slice is a no-op.
pub fn softmax_inplace(logits: &mut [f32]) {
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in logits.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in logits.iter_mut() {
            *x /= sum;
        }
    }
}

/// Softmax into a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = logits.to_vec();
    softmax_inplace(&mut out);
    out
}

/// The paper's confidence margin: `prob₁ − prob₂`, the gap between the two
/// largest probabilities. Returns `prob₁` itself for single-element input
/// and 0.0 for empty input.
pub fn top2_margin(probs: &[f32]) -> f32 {
    match probs.len() {
        0 => 0.0,
        1 => probs[0],
        _ => {
            let (mut best, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
            for &p in probs {
                if p > best {
                    second = best;
                    best = p;
                } else if p > second {
                    second = p;
                }
            }
            best - second
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
        // Very large magnitudes must not produce NaN.
        let c = softmax(&[1e30, -1e30]);
        assert!(c.iter().all(|x| x.is_finite()));
        assert!((c[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn margin_finds_top_two() {
        assert!((top2_margin(&[0.7, 0.2, 0.1]) - 0.5).abs() < 1e-6);
        assert!((top2_margin(&[0.1, 0.2, 0.7]) - 0.5).abs() < 1e-6);
        assert_eq!(top2_margin(&[]), 0.0);
        assert_eq!(top2_margin(&[0.4]), 0.4);
    }

    #[test]
    fn uniform_distribution_has_zero_margin() {
        let p = softmax(&[0.0; 10]);
        assert!(top2_margin(&p).abs() < 1e-7);
    }
}
