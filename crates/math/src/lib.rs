//! # coca-math — numeric kernels
//!
//! Small, dependency-light numeric building blocks shared by the whole
//! reproduction:
//!
//! * [`vector`] — f32 vector kernels: dot products, L2 normalization, cosine
//!   similarity (the heart of the semantic-cache lookup), random unit
//!   vectors, centroids.
//! * [`stats`] — Welford online mean/variance, exponential moving averages.
//! * [`quantile`] — the P² streaming quantile estimator (latency
//!   percentiles without retaining samples).
//! * [`softmax`] — numerically stable softmax and top-2 probability margin
//!   (the paper's rule-2 sample-collection test `prob₁ − prob₂ > Δ`).
//! * [`topk`] — index-returning top-1/top-2/top-k selection.
//! * [`pca`] — top-k principal components by power iteration (Fig. 2's
//!   projection substitute for t-SNE).
//! * [`cluster`] — silhouette score and intra/inter-class cosine statistics
//!   (Fig. 2's quantitative clustering evidence).

pub mod cluster;
pub mod pca;
pub mod quantile;
pub mod softmax;
pub mod stats;
pub mod topk;
pub mod vector;

pub use quantile::P2Quantile;
pub use stats::{Ewma, OnlineStats};
pub use topk::{top1, top2, top_k_indices};
pub use vector::{cosine, dot, l2_norm, l2_normalize, l2_normalized, mean_vector, random_unit};
