//! # coca-math — numeric kernels
//!
//! Small, dependency-light numeric building blocks shared by the whole
//! reproduction:
//!
//! * [`vector`] — f32 vector kernels: dot products, L2 normalization, cosine
//!   similarity, random unit vectors, centroids.
//! * [`matrix`] — fused, deterministic scoring kernels over contiguous
//!   row-major buffers: [`dot_unit`], [`matrix::score_top2`] (Eq. 1/2 in one
//!   pass), [`matrix::knn_k`] (H-kNN ranking), [`matrix::assign_nearest`]
//!   (k-means E-step) — the heart of every similarity hot path.
//! * [`store`] — [`VectorStore`], the dimension-checked contiguous storage
//!   those kernels scan (32-byte aligned via [`aligned`]).
//! * [`quant`] — [`QuantizedStore`] (i8 per-row scale / IEEE binary16)
//!   for the wire and global-table representation; dequantize-on-read
//!   into the f32 kernels.
//! * `simd` (feature `simd`) — explicit AVX2 kernel twins with runtime
//!   dispatch, bit-identical to the scalar path.
//! * [`mask`] — [`OccupancyBitmap`] (packed per-slot presence bits over a
//!   dense store) and the bitmap-backed [`SlotMap`]: the occupancy layer
//!   of the columnar server-side tables.
//! * [`stats`] — Welford online mean/variance, exponential moving averages.
//! * [`quantile`] — the P² streaming quantile estimator (latency
//!   percentiles without retaining samples).
//! * [`softmax`] — numerically stable softmax and top-2 probability margin
//!   (the paper's rule-2 sample-collection test `prob₁ − prob₂ > Δ`).
//! * [`topk`] — index-returning top-1/top-2/top-k selection.
//! * [`pca`] — top-k principal components by power iteration (Fig. 2's
//!   projection substitute for t-SNE).
//! * [`cluster`] — silhouette score and intra/inter-class cosine statistics
//!   (Fig. 2's quantitative clustering evidence).

pub mod aligned;
pub mod cluster;
pub mod mask;
pub mod matrix;
pub mod pca;
pub mod quant;
pub mod quantile;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
pub mod softmax;
pub mod stats;
pub mod store;
pub mod topk;
pub mod vector;

pub use aligned::AlignedF32;
pub use mask::{OccupancyBitmap, SlotMap};
pub use matrix::{
    dot_unit, merge_weighted_row, merge_weighted_rows, simd_active, ScoreScratch, Top2,
};
pub use quant::{snap_row, Precision, QuantizedStore};
pub use quantile::P2Quantile;
pub use stats::{Ewma, OnlineStats};
pub use store::VectorStore;
pub use topk::{top1, top2, top_k_indices};
pub use vector::{
    cosine, dot, is_unit, l2_norm, l2_normalize, l2_normalized, mean_vector, random_unit,
};
