//! Fused, deterministic scoring kernels over contiguous row-major buffers.
//!
//! These are the inner loops behind every similarity hot path of the
//! reproduction: CoCa's per-layer Eq. 1/2 scoring, FoggyCache's H-kNN
//! candidate ranking and the k-means assignment step. They operate on a
//! flat `data` slice holding `data.len() / dim` rows of dimension `dim`
//! (see [`crate::store::VectorStore`] for the dimension-checked handle).
//!
//! ## Determinism policy
//!
//! Every kernel accumulates with a **fixed-width 8-lane unroll** and a
//! **fixed summation order** (lanes reduced pairwise, then the tail in
//! index order). The result is therefore bit-identical run-to-run and
//! across thread counts — parallel sweeps stay reproducible — and within
//! `1e-5` of the scalar reference implementations in [`reference`]
//! (property-tested in `tests/proptest_kernels.rs`). Ties in every
//! selection kernel break toward the earlier row / smaller tag, matching
//! the scalar reference exactly.

/// Fixed unroll width of every kernel (see the module docs).
pub const UNROLL: usize = 8;

/// True iff the dispatched kernels currently run the explicit AVX2 path
/// (the `simd` feature is compiled in *and* the CPU supports AVX2).
/// Either way the outputs are bit-identical; this only reports which
/// implementation executes.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        crate::simd::avx2_enabled()
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Dispatches `$avx2(args)` when the AVX2 path is active, else
/// `$scalar(args)`. Both produce bit-identical results (see
/// `crate::simd`); benches and the parity proptests call the
/// [`scalar`] module directly to compare.
macro_rules! dispatch {
    ($scalar:path, $avx2:path, $($arg:expr),* $(,)?) => {{
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if crate::simd::avx2_enabled() {
            // SAFETY: `avx2_enabled()` just verified the CPU feature.
            return unsafe { $avx2($($arg),*) };
        }
        $scalar($($arg),*)
    }};
}

/// Norm-free dot product for **unit vectors**: callers uphold the
/// unit-norm contract at insertion time (a `debug_assert` there, not a
/// per-lookup renormalization), so `dot_unit(a, b)` *is* the cosine
/// similarity. Fixed 8-lane accumulation; deterministic. (A dual-chain
/// 16-wide variant was tried and measured *slower* — the single 8-lane
/// pattern is what the auto-vectorizer maps cleanly onto one SIMD
/// accumulator.)
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot_unit(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(scalar::dot_unit, crate::simd::avx2::dot_unit, a, b)
}

/// Reusable accumulator scratch for [`score_top2`] (paper Eq. 1 state).
///
/// Replaces the per-frame `acc`/`acc_set` vector allocations of the seed
/// lookup: the buffers live for the client's lifetime and an epoch stamp
/// makes "not yet scored this frame" an O(1) test instead of an
/// O(classes) clear.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    acc: Vec<f32>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl ScoreScratch {
    /// An empty scratch; sized lazily by [`ScoreScratch::begin`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new frame over a class universe of `num_classes`:
    /// accumulated scores from the previous frame become invisible without
    /// touching the buffers.
    pub fn begin(&mut self, num_classes: usize) {
        if self.acc.len() < num_classes {
            self.acc.resize(num_classes, 0.0);
            self.stamp.resize(num_classes, 0);
        }
        self.epoch += 1;
    }

    /// The accumulated score of `class` this frame (0 if not yet scored).
    #[inline]
    pub fn accumulated(&self, class: usize) -> f32 {
        if self.stamp[class] == self.epoch {
            self.acc[class]
        } else {
            0.0
        }
    }

    #[inline]
    pub(crate) fn store(&mut self, class: usize, value: f32) {
        self.acc[class] = value;
        self.stamp[class] = self.epoch;
    }
}

/// Best and runner-up accumulated class scores of one layer scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Top2 {
    /// `(class, A)` with the largest accumulated score (earliest row wins
    /// ties); `None` for an empty layer.
    pub best: Option<(usize, f32)>,
    /// The runner-up, `None` when the layer holds fewer than two entries.
    pub second: Option<(usize, f32)>,
}

/// One fused pass over a layer's entries (paper Eq. 1 + the Eq. 2
/// operands): for each row `r` of `data`, scores `C = dot_unit(query,
/// row)`, accumulates `A = C + alpha · A_prev` into `scratch`, and tracks
/// the two leading accumulated classes. `classes[r]` is row `r`'s class
/// id; ids must be unique within one call.
///
/// Call [`ScoreScratch::begin`] once per frame, then this once per
/// activated layer — accumulation across layers flows through the scratch.
///
/// # Panics
/// Panics if `classes.len() · dim != data.len()` or (for a non-empty
/// layer) `query.len() != dim`.
pub fn score_top2(
    data: &[f32],
    dim: usize,
    query: &[f32],
    classes: &[usize],
    alpha: f32,
    scratch: &mut ScoreScratch,
) -> Top2 {
    dispatch!(
        scalar::score_top2,
        crate::simd::avx2::score_top2,
        data,
        dim,
        query,
        classes,
        alpha,
        scratch,
    )
}

/// Top-`k` rows by similarity (H-kNN candidate ranking): scores every
/// `(row, tag)` candidate with [`dot_unit`] and returns the `k` highest as
/// `(similarity, tag)`, similarity-descending, smaller tag on ties.
///
/// # Panics
/// Panics if a candidate row is out of range or (for a non-empty candidate
/// set) `query.len() != dim`.
pub fn knn_k(
    data: &[f32],
    dim: usize,
    query: &[f32],
    candidates: &[(u32, u32)],
    k: usize,
) -> Vec<(f32, u32)> {
    dispatch!(
        scalar::knn_k,
        crate::simd::avx2::knn_k,
        data,
        dim,
        query,
        candidates,
        k,
    )
}

/// Nearest row by similarity (the k-means E-step): `(row, similarity)` of
/// the row with the largest [`dot_unit`] against `query`, earliest row on
/// ties. `None` for an empty buffer.
///
/// # Panics
/// Panics if `data.len()` is not a multiple of `dim`, or (for a non-empty
/// buffer) `query.len() != dim`.
pub fn assign_nearest(data: &[f32], dim: usize, query: &[f32]) -> Option<(usize, f32)> {
    dispatch!(
        scalar::assign_nearest,
        crate::simd::avx2::assign_nearest,
        data,
        dim,
        query,
    )
}

/// One fused Eq. 4 merge + renormalize over a single row:
/// `e ← normalize(w_old·e + w_new·u)`, returning the pre-normalization
/// norm. The merged values and the norm's sum-of-squares are produced in
/// **one pass** with the same fixed 4-accumulator reduction order as
/// [`crate::vector::dot`], and the rounding sequence mirrors the seed
/// `scale(w_old, e)` → `axpy(w_new, u, e)` → `l2_normalize(e)` path
/// **bit for bit** — that equivalence is the no-behavioral-drift
/// contract of the columnar server tables (see `coca-core::global`).
/// A zero (or denormal-tiny) merged row is left unnormalized, exactly as
/// [`crate::vector::l2_normalize`] leaves it.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn merge_weighted_row(e: &mut [f32], u: &[f32], w_old: f32, w_new: f32) -> f32 {
    dispatch!(
        scalar::merge_weighted_row,
        crate::simd::avx2::merge_weighted_row,
        e,
        u,
        w_old,
        w_new,
    )
}

/// Batched [`merge_weighted_row`] over a contiguous destination buffer:
/// for each `i`, merges source row `src_rows[i]` of `src` into
/// destination row `dst_rows[i]` of `dst` with weights `w_old[i]` /
/// `w_new[i]`. This is the per-layer Eq. 4 pass of the columnar global
/// cache table — one call merges a whole upload layer.
///
/// # Panics
/// Panics on ragged buffers, length-mismatched job slices or
/// out-of-range rows.
pub fn merge_weighted_rows(
    dst: &mut [f32],
    dim: usize,
    dst_rows: &[usize],
    src: &[f32],
    src_rows: &[usize],
    w_old: &[f32],
    w_new: &[f32],
) {
    dispatch!(
        scalar::merge_weighted_rows,
        crate::simd::avx2::merge_weighted_rows,
        dst,
        dim,
        dst_rows,
        src,
        src_rows,
        w_old,
        w_new,
    )
}

/// The scalar 8-lane kernels — the canonical implementations every
/// dispatcher falls back to and the bit-identity reference for the AVX2
/// path (`tests/proptest_simd.rs` pins them equal; the microbenches call
/// these directly for scalar-vs-SIMD rows). Always compiled.
pub mod scalar {
    use super::{ScoreScratch, Top2, UNROLL};

    /// Scalar [`super::dot_unit`]: fixed 8-lane unroll + pairwise tree.
    pub fn dot_unit(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot_unit: length mismatch {} vs {}",
            a.len(),
            b.len()
        );
        let split = a.len() - a.len() % UNROLL;
        let (a_main, a_tail) = a.split_at(split);
        let (b_main, b_tail) = b.split_at(split);
        let mut lanes = [0.0f32; UNROLL];
        for (ca, cb) in a_main.chunks_exact(UNROLL).zip(b_main.chunks_exact(UNROLL)) {
            lanes[0] += ca[0] * cb[0];
            lanes[1] += ca[1] * cb[1];
            lanes[2] += ca[2] * cb[2];
            lanes[3] += ca[3] * cb[3];
            lanes[4] += ca[4] * cb[4];
            lanes[5] += ca[5] * cb[5];
            lanes[6] += ca[6] * cb[6];
            lanes[7] += ca[7] * cb[7];
        }
        // Pairwise lane reduction: one fixed tree, independent of dim.
        let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        for (x, y) in a_tail.iter().zip(b_tail) {
            sum += x * y;
        }
        sum
    }

    /// Scalar [`super::score_top2`].
    pub fn score_top2(
        data: &[f32],
        dim: usize,
        query: &[f32],
        classes: &[usize],
        alpha: f32,
        scratch: &mut ScoreScratch,
    ) -> Top2 {
        assert_eq!(
            classes.len() * dim,
            data.len(),
            "score_top2: shape mismatch"
        );
        let mut best: Option<(usize, f32)> = None;
        let mut second: Option<(usize, f32)> = None;
        if classes.is_empty() {
            return Top2 { best, second };
        }
        for (row, &class) in data.chunks_exact(dim).zip(classes) {
            let c = dot_unit(query, row);
            let a = c + alpha * scratch.accumulated(class);
            scratch.store(class, a);
            match best {
                Some((_, bv)) if a <= bv => match second {
                    Some((_, sv)) if a <= sv => {}
                    _ => second = Some((class, a)),
                },
                _ => {
                    second = best;
                    best = Some((class, a));
                }
            }
        }
        Top2 { best, second }
    }

    /// Scalar [`super::knn_k`].
    pub fn knn_k(
        data: &[f32],
        dim: usize,
        query: &[f32],
        candidates: &[(u32, u32)],
        k: usize,
    ) -> Vec<(f32, u32)> {
        let mut scored: Vec<(f32, u32)> = candidates
            .iter()
            .map(|&(row, tag)| {
                let start = row as usize * dim;
                (dot_unit(query, &data[start..start + dim]), tag)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored
    }

    /// Scalar [`super::assign_nearest`].
    pub fn assign_nearest(data: &[f32], dim: usize, query: &[f32]) -> Option<(usize, f32)> {
        if data.is_empty() {
            return None;
        }
        assert_eq!(data.len() % dim, 0, "assign_nearest: ragged buffer");
        let mut best: Option<(usize, f32)> = None;
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let sim = dot_unit(query, row);
            match best {
                Some((_, bv)) if sim <= bv => {}
                _ => best = Some((i, sim)),
            }
        }
        best
    }

    /// Scalar [`super::merge_weighted_row`]: fused merge + renormalize
    /// with the fixed 4-accumulator order (bit-identical to the seed
    /// scale → axpy → l2_normalize sequence).
    pub fn merge_weighted_row(e: &mut [f32], u: &[f32], w_old: f32, w_new: f32) -> f32 {
        assert_eq!(
            e.len(),
            u.len(),
            "merge_weighted_row: length mismatch {} vs {}",
            e.len(),
            u.len()
        );
        let split = e.len() - e.len() % 4;
        let (e_main, e_tail) = e.split_at_mut(split);
        let (u_main, u_tail) = u.split_at(split);
        let mut acc = [0.0f32; 4];
        for (ec, uc) in e_main.chunks_exact_mut(4).zip(u_main.chunks_exact(4)) {
            let m0 = w_old * ec[0] + w_new * uc[0];
            let m1 = w_old * ec[1] + w_new * uc[1];
            let m2 = w_old * ec[2] + w_new * uc[2];
            let m3 = w_old * ec[3] + w_new * uc[3];
            ec[0] = m0;
            ec[1] = m1;
            ec[2] = m2;
            ec[3] = m3;
            acc[0] += m0 * m0;
            acc[1] += m1 * m1;
            acc[2] += m2 * m2;
            acc[3] += m3 * m3;
        }
        let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
        for (ei, &ui) in e_tail.iter_mut().zip(u_tail) {
            let m = w_old * *ei + w_new * ui;
            *ei = m;
            sum += m * m;
        }
        let norm = sum.sqrt();
        if norm > f32::MIN_POSITIVE {
            let inv = 1.0 / norm;
            for x in e.iter_mut() {
                *x *= inv;
            }
        }
        norm
    }

    /// Scalar [`super::merge_weighted_rows`].
    pub fn merge_weighted_rows(
        dst: &mut [f32],
        dim: usize,
        dst_rows: &[usize],
        src: &[f32],
        src_rows: &[usize],
        w_old: &[f32],
        w_new: &[f32],
    ) {
        assert!(
            dst.len().is_multiple_of(dim.max(1)) && src.len().is_multiple_of(dim.max(1)),
            "merge_weighted_rows: ragged buffers"
        );
        assert!(
            dst_rows.len() == src_rows.len()
                && dst_rows.len() == w_old.len()
                && dst_rows.len() == w_new.len(),
            "merge_weighted_rows: job slices must be parallel"
        );
        for i in 0..dst_rows.len() {
            let d = dst_rows[i] * dim;
            let s = src_rows[i] * dim;
            merge_weighted_row(&mut dst[d..d + dim], &src[s..s + dim], w_old[i], w_new[i]);
        }
    }
}

/// Scalar reference implementations of every fused kernel: plain
/// left-to-right summation, no unrolling, no shared accumulator state.
/// The property tests pin the fused kernels to these within `1e-5`.
pub mod reference {
    use super::{ScoreScratch, Top2};

    /// Plain left-to-right dot product.
    pub fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot_ref: length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Scalar twin of [`super::score_top2`] over explicit rows.
    pub fn score_top2_ref(
        rows: &[Vec<f32>],
        query: &[f32],
        classes: &[usize],
        alpha: f32,
        scratch: &mut ScoreScratch,
    ) -> Top2 {
        assert_eq!(rows.len(), classes.len(), "score_top2_ref: shape mismatch");
        let mut best: Option<(usize, f32)> = None;
        let mut second: Option<(usize, f32)> = None;
        for (row, &class) in rows.iter().zip(classes) {
            let c = dot_ref(query, row);
            let a = c + alpha * scratch.accumulated(class);
            scratch.store(class, a);
            match best {
                Some((_, bv)) if a <= bv => match second {
                    Some((_, sv)) if a <= sv => {}
                    _ => second = Some((class, a)),
                },
                _ => {
                    second = best;
                    best = Some((class, a));
                }
            }
        }
        Top2 { best, second }
    }

    /// Scalar twin of [`super::knn_k`] over explicit rows.
    pub fn knn_k_ref(
        rows: &[Vec<f32>],
        query: &[f32],
        candidates: &[(u32, u32)],
        k: usize,
    ) -> Vec<(f32, u32)> {
        let mut scored: Vec<(f32, u32)> = candidates
            .iter()
            .map(|&(row, tag)| (dot_ref(query, &rows[row as usize]), tag))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored
    }

    /// Scalar twin of [`super::assign_nearest`] over explicit rows.
    pub fn assign_nearest_ref(rows: &[Vec<f32>], query: &[f32]) -> Option<(usize, f32)> {
        let mut best: Option<(usize, f32)> = None;
        for (i, row) in rows.iter().enumerate() {
            let sim = dot_ref(query, row);
            match best {
                Some((_, bv)) if sim <= bv => {}
                _ => best = Some((i, sim)),
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_unit_matches_reference_on_odd_dims() {
        for dim in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let a: Vec<f32> = (0..dim)
                .map(|i| ((i * 37 + 5) % 11) as f32 * 0.1 - 0.5)
                .collect();
            let b: Vec<f32> = (0..dim)
                .map(|i| ((i * 13 + 3) % 7) as f32 * 0.2 - 0.6)
                .collect();
            let fused = dot_unit(&a, &b);
            let naive = reference::dot_ref(&a, &b);
            assert!(
                (fused - naive).abs() < 1e-4,
                "dim {dim}: {fused} vs {naive}"
            );
        }
    }

    #[test]
    fn dot_unit_is_deterministic() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32).cos()).collect();
        assert_eq!(dot_unit(&a, &b).to_bits(), dot_unit(&a, &b).to_bits());
    }

    #[test]
    fn scratch_epochs_isolate_frames() {
        let mut s = ScoreScratch::new();
        s.begin(4);
        s.store(2, 0.7);
        assert_eq!(s.accumulated(2), 0.7);
        assert_eq!(s.accumulated(0), 0.0);
        s.begin(4);
        assert_eq!(s.accumulated(2), 0.0, "new frame must not see old scores");
    }

    #[test]
    fn score_top2_accumulates_across_layers() {
        // One class cached at two "layers": the second scan must decay-add.
        let dim = 2;
        let row = [1.0f32, 0.0];
        let q = [1.0f32, 0.0];
        let mut s = ScoreScratch::new();
        s.begin(3);
        let t1 = score_top2(&row, dim, &q, &[1], 0.5, &mut s);
        assert_eq!(t1.best, Some((1, 1.0)));
        assert_eq!(t1.second, None);
        let t2 = score_top2(&row, dim, &q, &[1], 0.5, &mut s);
        assert_eq!(t2.best, Some((1, 1.5)), "A = C + α·A_prev");
    }

    #[test]
    fn score_top2_orders_best_and_second() {
        let dim = 2;
        #[rustfmt::skip]
        let data = [
            1.0f32, 0.0, // class 5: sim 1.0 vs q
            0.0, 1.0,    // class 7: sim 0.0
            0.8, 0.6,    // class 9: sim 0.8
        ];
        let q = [1.0f32, 0.0];
        let mut s = ScoreScratch::new();
        s.begin(10);
        let t = score_top2(&data, dim, &q, &[5, 7, 9], 0.9, &mut s);
        assert_eq!(t.best.unwrap().0, 5);
        assert_eq!(t.second.unwrap().0, 9);
    }

    #[test]
    fn knn_k_ranks_and_breaks_ties_by_tag() {
        let dim = 2;
        #[rustfmt::skip]
        let data = [
            1.0f32, 0.0,
            0.0, 1.0,
            1.0, 0.0, // duplicate of row 0
        ];
        let q = [1.0f32, 0.0];
        let cands = [(0u32, 10u32), (1, 11), (2, 9)];
        let top = knn_k(&data, dim, &q, &cands, 2);
        assert_eq!(top.len(), 2);
        // Rows 0 and 2 tie at sim 1.0; smaller tag (9) first.
        assert_eq!(top[0].1, 9);
        assert_eq!(top[1].1, 10);
    }

    #[test]
    fn merge_weighted_row_is_bit_identical_to_scale_axpy_normalize() {
        use crate::vector::{axpy, l2_normalize, scale};
        for dim in [1usize, 3, 4, 7, 8, 13, 64, 129] {
            let e0: Vec<f32> = (0..dim)
                .map(|i| ((i * 31 + 7) % 17) as f32 * 0.11 - 0.9)
                .collect();
            let u: Vec<f32> = (0..dim)
                .map(|i| ((i * 13 + 5) % 19) as f32 * 0.07 - 0.6)
                .collect();
            let (w_old, w_new) = (0.99f32 * 0.3, 0.7f32);
            // Seed path: three separate passes.
            let mut seed = e0.clone();
            scale(w_old, &mut seed);
            axpy(w_new, &u, &mut seed);
            let seed_norm = l2_normalize(&mut seed);
            // Fused path.
            let mut fused = e0.clone();
            let norm = merge_weighted_row(&mut fused, &u, w_old, w_new);
            assert_eq!(norm.to_bits(), seed_norm.to_bits(), "dim {dim}");
            for (a, b) in fused.iter().zip(&seed) {
                assert_eq!(a.to_bits(), b.to_bits(), "dim {dim}");
            }
        }
    }

    #[test]
    fn merge_weighted_row_leaves_tiny_rows_unnormalized() {
        let mut e = vec![0.0f32; 5];
        let u = vec![0.0f32; 5];
        assert_eq!(merge_weighted_row(&mut e, &u, 0.5, 0.5), 0.0);
        assert!(e.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn merge_weighted_rows_batches_disjoint_jobs() {
        let dim = 3;
        let mut dst = vec![
            1.0f32, 0.0, 0.0, // row 0
            0.0, 1.0, 0.0, // row 1
        ];
        let src = vec![0.0f32, 0.0, 1.0];
        let mut expect0 = dst[0..3].to_vec();
        let mut expect1 = dst[3..6].to_vec();
        merge_weighted_row(&mut expect0, &src, 0.4, 0.6);
        merge_weighted_row(&mut expect1, &src, 0.9, 0.1);
        merge_weighted_rows(
            &mut dst,
            dim,
            &[0, 1],
            &src,
            &[0, 0],
            &[0.4, 0.9],
            &[0.6, 0.1],
        );
        assert_eq!(&dst[0..3], expect0.as_slice());
        assert_eq!(&dst[3..6], expect1.as_slice());
    }

    #[test]
    fn assign_nearest_picks_earliest_on_ties() {
        let dim = 2;
        let data = [0.0f32, 1.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(assign_nearest(&data, dim, &[1.0, 0.0]), Some((1, 1.0)));
        assert_eq!(assign_nearest(&[], dim, &[1.0, 0.0]), None);
    }
}
