//! [`AlignedF32`] — a growable f32 buffer whose allocation is 32-byte
//! aligned.
//!
//! [`crate::store::VectorStore`] keeps its flat row-major buffer in one of
//! these so the AVX2 kernels behind the `simd` feature can use aligned
//! 256-bit loads on the main loop (rows whose byte offset is a multiple of
//! 32 — any row when `dim % 8 == 0`). Alignment never changes results:
//! the kernels fall back to unaligned loads per call, bit-identically —
//! this is purely a load-port optimization.
//!
//! The API is the small slice of `Vec<f32>` the store actually uses;
//! everything else comes through `Deref<Target = [f32]>`.

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Allocation alignment in bytes (one AVX2 register).
pub const BUF_ALIGN: usize = 32;

/// A 32-byte-aligned growable `f32` buffer.
pub struct AlignedF32 {
    ptr: NonNull<f32>,
    len: usize,
    cap: usize,
}

// The buffer exclusively owns its allocation of plain f32s.
unsafe impl Send for AlignedF32 {}
unsafe impl Sync for AlignedF32 {}

impl AlignedF32 {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Self {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// An empty buffer with room for `cap` floats.
    pub fn with_capacity(cap: usize) -> Self {
        let mut b = Self::new();
        if cap > 0 {
            b.grow_to(cap);
        }
        b
    }

    /// A buffer of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        let mut b = Self::with_capacity(len);
        // Zero bytes are 0.0f32.
        unsafe { std::ptr::write_bytes(b.ptr.as_ptr(), 0, len) };
        b.len = len;
        b
    }

    /// A buffer holding a copy of `s`.
    pub fn from_slice(s: &[f32]) -> Self {
        let mut b = Self::with_capacity(s.len());
        b.extend_from_slice(s);
        b
    }

    fn layout(cap: usize) -> Layout {
        Layout::from_size_align(
            cap.checked_mul(4).expect("AlignedF32: capacity overflow"),
            BUF_ALIGN,
        )
        .expect("AlignedF32: invalid layout")
    }

    fn grow_to(&mut self, min_cap: usize) {
        debug_assert!(min_cap > self.cap);
        let new_cap = min_cap.max(self.cap * 2).max(8);
        let layout = Self::layout(new_cap);
        let raw = unsafe { alloc(layout) } as *mut f32;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        if self.len > 0 {
            unsafe { std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), ptr.as_ptr(), self.len) };
        }
        if self.cap > 0 {
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
        self.ptr = ptr;
        self.cap = new_cap;
    }

    /// Number of floats held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the buffer holds no floats.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in floats.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a copy of `s`.
    pub fn extend_from_slice(&mut self, s: &[f32]) {
        let need = self.len + s.len();
        if need > self.cap {
            self.grow_to(need);
        }
        unsafe {
            std::ptr::copy_nonoverlapping(s.as_ptr(), self.ptr.as_ptr().add(self.len), s.len())
        };
        self.len = need;
    }

    /// Shortens to `len` floats (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
        }
    }

    /// Drops every float (capacity kept).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The contents as a slice.
    pub fn as_slice(&self) -> &[f32] {
        self
    }
}

impl Drop for AlignedF32 {
    fn drop(&mut self) {
        if self.cap > 0 {
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.cap)) };
        }
    }
}

impl Deref for AlignedF32 {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedF32 {
    fn deref_mut(&mut self) -> &mut [f32] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Default for AlignedF32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AlignedF32 {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl PartialEq for AlignedF32 {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for AlignedF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self[..], f)
    }
}

impl From<&[f32]> for AlignedF32 {
    fn from(s: &[f32]) -> Self {
        Self::from_slice(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_32_byte_aligned() {
        for n in [1usize, 7, 8, 9, 100] {
            let b = AlignedF32::zeros(n);
            assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0, "len {n}");
            assert_eq!(b.len(), n);
            assert!(b.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn alignment_survives_growth() {
        let mut b = AlignedF32::new();
        for i in 0..100 {
            b.extend_from_slice(&[i as f32, (i + 1) as f32, (i + 2) as f32]);
            assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0, "after push {i}");
        }
        assert_eq!(b.len(), 300);
        assert_eq!(b[3], 1.0);
    }

    #[test]
    fn vec_like_operations() {
        let mut b = AlignedF32::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&b[1..3], &[2.0, 3.0]);
        b[0] = 9.0;
        b.truncate(2);
        assert_eq!(b.as_slice(), &[9.0, 2.0]);
        b.truncate(10); // no-op
        assert_eq!(b.len(), 2);
        let c = b.clone();
        assert_eq!(b, c);
        b.clear();
        assert!(b.is_empty());
        assert!(b.capacity() >= 2);
        assert_ne!(b, c);
        assert_eq!(format!("{c:?}"), "[9.0, 2.0]");
        let d: AlignedF32 = (&[0.5f32, 0.25][..]).into();
        assert_eq!(d.as_slice(), &[0.5, 0.25]);
        assert_eq!(AlignedF32::default().len(), 0);
    }

    #[test]
    fn with_capacity_reserves() {
        let b = AlignedF32::with_capacity(64);
        assert_eq!(b.len(), 0);
        assert!(b.capacity() >= 64);
    }
}
