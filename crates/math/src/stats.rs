//! Online statistics: Welford mean/variance and exponential moving averages.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable and O(1) per observation; used for latency and
/// accuracy accumulation across millions of simulated frames.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average with fixed smoothing factor.
///
/// `alpha` is the weight of the newest observation: `y ← α·x + (1−α)·y`.
/// Used for the client's running per-layer hit-ratio estimates uploaded to
/// the server (ACA inputs R).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// New EWMA with smoothing factor `alpha` in (0, 1].
    ///
    /// # Panics
    /// Panics if `alpha` is outside (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "Ewma alpha must be in (0,1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Feeds one observation; the first observation initializes the average.
    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current average, or `default` if nothing was observed yet.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Current average, if any observation arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn ewma_tracks_steps() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(0.7), 0.7);
        e.push(1.0);
        assert_eq!(e.value(), Some(1.0));
        e.push(0.0);
        assert_eq!(e.value(), Some(0.5));
        e.push(0.0);
        assert_eq!(e.value(), Some(0.25));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }
}
