//! Quantized vector storage for the data that *moves*: wire frames and
//! global-table layers.
//!
//! The fused kernels stay f32 — quantized rows are **dequantized on
//! read** into the existing kernels. Two codecs:
//!
//! * **i8 with a per-row scale** — 4× smaller than f32 (plus 4 bytes of
//!   scale per row). Codes are `round(x / scale)` clamped to ±127 with
//!   `scale = max|x| / 127`; a quantize→dequantize round trip moves each
//!   element by at most half a step (`≤ max|x| / 254`, property-tested).
//! * **f16 (IEEE 754 binary16)** — 2× smaller, hand-rolled conversion
//!   with round-to-nearest-even (no external crates; the vendored shim
//!   policy). Relative error ≤ 2⁻¹¹ for normal values.
//!
//! Quantization is **opt-in and explicit**: `Precision::F32` is the
//! default everywhere and the committed-record reference. A value that
//! has been quantized and dequantized re-quantizes to the same codes
//! (snapping is idempotent), which is what lets a sender transmit
//! *snapped* f32 values while pricing the link at the quantized width.

use serde::{Deserialize, Serialize};

use crate::store::VectorStore;

/// Storage precision of a wire frame or global-table layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// Dense f32 — the default and the record-regeneration reference.
    #[default]
    F32,
    /// IEEE 754 binary16, round-to-nearest-even (2× smaller).
    F16,
    /// i8 codes with one f32 scale per row (≈4× smaller).
    I8,
}

impl Precision {
    /// Parses the `COCA_PRECISION`-style label (`"f32"`, `"f16"`, `"i8"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Self::F32),
            "f16" => Some(Self::F16),
            "i8" => Some(Self::I8),
            _ => None,
        }
    }

    /// The lower-case label (`"f32"` / `"f16"` / `"i8"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::F16 => "f16",
            Self::I8 => "i8",
        }
    }

    /// Payload bytes of `rows` rows of dimension `dim` at this
    /// precision (i8 carries one f32 scale per row).
    pub fn payload_bytes(self, rows: usize, dim: usize) -> usize {
        match self {
            Self::F32 => rows * dim * 4,
            Self::F16 => rows * dim * 2,
            Self::I8 => rows * (dim + 4),
        }
    }
}

// ------------------------------------------------------------ f16 codec ----

/// f32 → IEEE 754 binary16 bits, round-to-nearest-even.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp = (b >> 23) & 0xff;
    let man = b & 0x007f_ffff;
    if exp == 0xff {
        // Inf stays Inf; any NaN becomes the canonical quiet NaN.
        return if man == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00
        };
    }
    let unbiased = exp as i32 - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → Inf
    }
    if unbiased >= -14 {
        // Normal half: 10 mantissa bits survive; RNE on the 13 dropped.
        let mut out = (((unbiased + 15) as u16) << 10) | (man >> 13) as u16;
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && out & 1 == 1) {
            out += 1; // a carry correctly rolls into the exponent
        }
        return sign | out;
    }
    if unbiased >= -25 {
        // Subnormal half: shift the hidden bit into range, RNE.
        let full = man | 0x0080_0000;
        let shift = (13 + (-14 - unbiased)) as u32;
        let mut out = (full >> shift) as u16;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && out & 1 == 1) {
            out += 1;
        }
        return sign | out;
    }
    sign // underflow → signed zero
}

/// IEEE 754 binary16 bits → f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign32 = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = (h & 0x03ff) as u32;
    if exp == 0 {
        // Subnormal or zero: man · 2⁻²⁴, exact in f32.
        let mag = man as f32 * (1.0 / 16_777_216.0);
        return if sign32 != 0 { -mag } else { mag };
    }
    if exp == 0x1f {
        return f32::from_bits(sign32 | 0x7f80_0000 | (man << 13));
    }
    f32::from_bits(sign32 | ((exp as u32 + 112) << 23) | (man << 13))
}

// ------------------------------------------------------------- i8 codec ----

/// Per-row i8 scale: `max|x| / 127`, 0 for an all-zero (or all-NaN) row.
pub fn i8_row_scale(row: &[f32]) -> f32 {
    let mut max_abs = 0.0f32;
    for &x in row {
        let a = x.abs();
        if a > max_abs {
            max_abs = a; // NaN never compares greater
        }
    }
    max_abs / 127.0
}

/// Quantizes one element against a row scale (`round`, saturating; a
/// zero scale or NaN input maps to code 0).
#[inline]
pub fn i8_quantize(x: f32, scale: f32) -> i8 {
    if scale <= 0.0 {
        return 0;
    }
    (x / scale).round() as i8 // `as` saturates to ±127/−128, NaN → 0
}

/// Dequantizes one i8 code.
#[inline]
pub fn i8_dequantize(code: i8, scale: f32) -> f32 {
    code as f32 * scale
}

// ------------------------------------------------------ QuantizedStore ----

/// Codec-specific payload of a [`QuantizedStore`].
#[derive(Debug, Clone, PartialEq)]
enum Payload {
    I8 { codes: Vec<i8>, scales: Vec<f32> },
    F16 { bits: Vec<u16> },
}

/// Row-major storage of equal-dimension vectors at reduced precision —
/// the wire/global-table twin of [`VectorStore`]. Rows quantize on
/// write and dequantize on read; kernels never see the codes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedStore {
    dim: usize,
    rows: usize,
    payload: Payload,
}

impl QuantizedStore {
    /// An empty store at the given precision.
    ///
    /// # Panics
    /// Panics if `dim` is 0 or `precision` is [`Precision::F32`] (dense
    /// f32 lives in [`VectorStore`]).
    pub fn new(dim: usize, precision: Precision) -> Self {
        assert!(dim > 0, "QuantizedStore: dim must be positive");
        let payload = match precision {
            Precision::F32 => panic!("QuantizedStore: use VectorStore for f32"),
            Precision::I8 => Payload::I8 {
                codes: Vec::new(),
                scales: Vec::new(),
            },
            Precision::F16 => Payload::F16 { bits: Vec::new() },
        };
        Self {
            dim,
            rows: 0,
            payload,
        }
    }

    /// A store of `rows` zero rows (a zero row has code 0 / scale 0).
    pub fn zeros(dim: usize, rows: usize, precision: Precision) -> Self {
        let mut s = Self::new(dim, precision);
        s.rows = rows;
        match &mut s.payload {
            Payload::I8 { codes, scales } => {
                codes.resize(rows * dim, 0);
                scales.resize(rows, 0.0);
            }
            Payload::F16 { bits } => bits.resize(rows * dim, 0),
        }
        s
    }

    /// Quantizes every row of `src` at the given precision.
    ///
    /// # Panics
    /// Panics if `src` has an unset dimension while holding rows, or
    /// `precision` is F32.
    pub fn quantize(src: &VectorStore, precision: Precision) -> Self {
        let dim = if src.dim() == 0 { 1 } else { src.dim() };
        let mut s = Self::new(dim, precision);
        for row in src.iter_rows() {
            s.push_row(row);
        }
        s
    }

    /// Row dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True iff the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The codec this store uses (never F32).
    pub fn precision(&self) -> Precision {
        match self.payload {
            Payload::I8 { .. } => Precision::I8,
            Payload::F16 { .. } => Precision::F16,
        }
    }

    /// Bytes occupied by the quantized payload.
    pub fn bytes(&self) -> usize {
        self.precision().payload_bytes(self.rows, self.dim)
    }

    /// Appends a row; returns its index.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn push_row(&mut self, row: &[f32]) -> usize {
        assert_eq!(
            row.len(),
            self.dim,
            "QuantizedStore: row dim {} vs store dim {}",
            row.len(),
            self.dim
        );
        match &mut self.payload {
            Payload::I8 { codes, scales } => {
                let scale = i8_row_scale(row);
                scales.push(scale);
                codes.extend(row.iter().map(|&x| i8_quantize(x, scale)));
            }
            Payload::F16 { bits } => bits.extend(row.iter().map(|&x| f32_to_f16_bits(x))),
        }
        self.rows += 1;
        self.rows - 1
    }

    /// Overwrites row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the dimension mismatches.
    pub fn set_row(&mut self, i: usize, row: &[f32]) {
        assert!(i < self.rows, "QuantizedStore: row {i} out of range");
        assert_eq!(
            row.len(),
            self.dim,
            "QuantizedStore: row dim {} vs store dim {}",
            row.len(),
            self.dim
        );
        let start = i * self.dim;
        match &mut self.payload {
            Payload::I8 { codes, scales } => {
                let scale = i8_row_scale(row);
                scales[i] = scale;
                for (c, &x) in codes[start..start + self.dim].iter_mut().zip(row) {
                    *c = i8_quantize(x, scale);
                }
            }
            Payload::F16 { bits } => {
                for (b, &x) in bits[start..start + self.dim].iter_mut().zip(row) {
                    *b = f32_to_f16_bits(x);
                }
            }
        }
    }

    /// Dequantizes row `i` into `out`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or `out.len() != dim`.
    pub fn dequantize_row_into(&self, i: usize, out: &mut [f32]) {
        assert!(i < self.rows, "QuantizedStore: row {i} out of range");
        assert_eq!(out.len(), self.dim, "QuantizedStore: bad output length");
        let start = i * self.dim;
        match &self.payload {
            Payload::I8 { codes, scales } => {
                let scale = scales[i];
                for (o, &c) in out.iter_mut().zip(&codes[start..start + self.dim]) {
                    *o = i8_dequantize(c, scale);
                }
            }
            Payload::F16 { bits } => {
                for (o, &b) in out.iter_mut().zip(&bits[start..start + self.dim]) {
                    *o = f16_bits_to_f32(b);
                }
            }
        }
    }

    /// Dequantizes row `i` into a fresh vector.
    pub fn dequantize_row(&self, i: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.dequantize_row_into(i, &mut out);
        out
    }

    /// Dequantizes the given rows, in order, into a fresh [`VectorStore`]
    /// (the gather `extract` path of a quantized table layer).
    pub fn dequantize_rows(&self, rows: &[usize]) -> VectorStore {
        let mut out = VectorStore::with_capacity(self.dim, rows.len());
        let mut tmp = vec![0.0; self.dim];
        for &r in rows {
            self.dequantize_row_into(r, &mut tmp);
            out.push_row(&tmp);
        }
        out
    }

    /// Dequantizes every row into a fresh [`VectorStore`].
    pub fn dequantize(&self) -> VectorStore {
        let all: Vec<usize> = (0..self.rows).collect();
        self.dequantize_rows(&all)
    }
}

/// Snaps `row` onto the representable grid of `precision` in place:
/// quantize → dequantize. A no-op for [`Precision::F32`]. Snapping is
/// idempotent, so a snapped row re-encodes to identical codes — the
/// sender can keep f32 buffers while the link prices quantized bytes.
pub fn snap_row(row: &mut [f32], precision: Precision) {
    match precision {
        Precision::F32 => {}
        Precision::F16 => {
            for x in row.iter_mut() {
                *x = f16_bits_to_f32(f32_to_f16_bits(*x));
            }
        }
        Precision::I8 => {
            let scale = i8_row_scale(row);
            for x in row.iter_mut() {
                *x = i8_dequantize(i8_quantize(*x, scale), scale);
            }
        }
    }
}

// Manual serde: the payload enum carries parallel flat buffers the
// derive shims cannot express.
impl Serialize for QuantizedStore {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("dim".into(), Serialize::to_value(&self.dim));
        m.insert("rows".into(), Serialize::to_value(&self.rows));
        m.insert("precision".into(), Serialize::to_value(&self.precision()));
        match &self.payload {
            Payload::I8 { codes, scales } => {
                m.insert("codes".into(), Serialize::to_value(codes));
                m.insert("scales".into(), Serialize::to_value(scales));
            }
            Payload::F16 { bits } => {
                m.insert("bits".into(), Serialize::to_value(bits));
            }
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for QuantizedStore {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let serde::Value::Object(m) = v else {
            return Err(serde::Error::custom(format!(
                "expected object for QuantizedStore, got {}",
                v.kind()
            )));
        };
        let dim: usize = serde::__field(m, "dim")?;
        let rows: usize = serde::__field(m, "rows")?;
        let precision: Precision = serde::__field(m, "precision")?;
        if dim == 0 {
            return Err(serde::Error::custom("QuantizedStore: dim must be positive"));
        }
        let payload = match precision {
            Precision::F32 => {
                return Err(serde::Error::custom("QuantizedStore: f32 payload"));
            }
            Precision::I8 => {
                let codes: Vec<i8> = serde::__field(m, "codes")?;
                let scales: Vec<f32> = serde::__field(m, "scales")?;
                if codes.len() != rows * dim || scales.len() != rows {
                    return Err(serde::Error::custom("QuantizedStore: ragged i8 payload"));
                }
                // Per-row scale invariant: `max|x| / 127` is always finite
                // and non-negative, and a zero scale can only accompany an
                // all-zero row (dequantizing nonzero codes by a zero scale
                // would silently erase the row; a NaN/inf scale would
                // poison every downstream kernel).
                for (r, &s) in scales.iter().enumerate() {
                    if !s.is_finite() || s < 0.0 {
                        return Err(serde::Error::custom(format!(
                            "QuantizedStore: row {r} scale {s} is not a finite non-negative max-abs/127"
                        )));
                    }
                    if s == 0.0 && codes[r * dim..(r + 1) * dim].iter().any(|&c| c != 0) {
                        return Err(serde::Error::custom(format!(
                            "QuantizedStore: row {r} has nonzero codes under a zero scale"
                        )));
                    }
                }
                Payload::I8 { codes, scales }
            }
            Precision::F16 => {
                let bits: Vec<u16> = serde::__field(m, "bits")?;
                if bits.len() != rows * dim {
                    return Err(serde::Error::custom("QuantizedStore: ragged f16 payload"));
                }
                Payload::F16 { bits }
            }
        };
        Ok(Self { dim, rows, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_labels_and_bytes() {
        assert_eq!(Precision::parse("f16"), Some(Precision::F16));
        assert_eq!(Precision::parse("nope"), None);
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::F32.payload_bytes(3, 8), 96);
        assert_eq!(Precision::F16.payload_bytes(3, 8), 48);
        assert_eq!(Precision::I8.payload_bytes(3, 8), 36);
        assert_eq!(Precision::I8.label(), "i8");
    }

    #[test]
    fn f16_round_trips_exactly_representable_values() {
        for x in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            65504.0,
            -65504.0,
            6.1035156e-5,
        ] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn f16_handles_specials() {
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7c00);
        assert_eq!(f32_to_f16_bits(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f32_to_f16_bits(1e9), 0x7c00, "overflow saturates to Inf");
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16_bits(1e-10), 0, "underflow to zero");
        assert_eq!(f32_to_f16_bits(-1e-10), 0x8000, "signed underflow");
        // Smallest subnormal: 2^-24.
        let tiny = 5.9604645e-8f32;
        assert_eq!(f32_to_f16_bits(tiny), 1);
        assert_eq!(f16_bits_to_f32(1), tiny);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next half;
        // RNE keeps the even mantissa (1.0).
        assert_eq!(f32_to_f16_bits(1.0 + 0.00048828125), 0x3c00);
        // 1 + 3·2^-11 is halfway between odd 1+2^-10 and even 1+2^-9.
        assert_eq!(f32_to_f16_bits(1.0 + 3.0 * 0.00048828125), 0x3c02);
        // Just above halfway rounds up.
        assert_eq!(f32_to_f16_bits(1.0 + 0.0005), 0x3c01);
    }

    #[test]
    fn f16_relative_error_bound() {
        for i in 0..2000 {
            let x = (i as f32 * 0.7369).sin() * 10.0;
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!(
                (back - x).abs() <= x.abs() * (1.0 / 2048.0) + 1e-7,
                "{x} -> {back}"
            );
        }
    }

    #[test]
    fn i8_codec_bounds_and_edge_cases() {
        let row = [0.3f32, -0.9, 0.05, 0.9];
        let scale = i8_row_scale(&row);
        assert!((scale - 0.9 / 127.0).abs() < 1e-9);
        for &x in &row {
            let err = (i8_dequantize(i8_quantize(x, scale), scale) - x).abs();
            assert!(err <= scale * 0.5 + 1e-7, "{x}: err {err}");
        }
        assert_eq!(i8_quantize(1.0, 0.0), 0, "zero scale");
        assert_eq!(i8_quantize(f32::NAN, 0.1), 0, "NaN saturates to 0");
        assert_eq!(i8_quantize(1e9, 0.1), 127, "saturating cast");
        assert_eq!(i8_row_scale(&[0.0, 0.0]), 0.0);
        assert_eq!(i8_row_scale(&[f32::NAN, 0.5]), 0.5 / 127.0);
    }

    #[test]
    fn snap_is_idempotent() {
        for precision in [Precision::F16, Precision::I8] {
            let mut row: Vec<f32> = (0..37).map(|i| ((i * 17) as f32 * 0.31).sin()).collect();
            snap_row(&mut row, precision);
            let once = row.clone();
            snap_row(&mut row, precision);
            for (a, b) in row.iter().zip(&once) {
                assert_eq!(a.to_bits(), b.to_bits(), "{precision:?}");
            }
        }
        let mut row = vec![0.123_456_79f32];
        snap_row(&mut row, Precision::F32);
        assert_eq!(row[0], 0.123_456_79);
    }

    #[test]
    fn snapped_rows_requantize_to_identical_codes() {
        let row: Vec<f32> = (0..64).map(|i| ((i * 7) as f32 * 0.13).cos()).collect();
        let mut store = QuantizedStore::new(64, Precision::I8);
        store.push_row(&row);
        let snapped = store.dequantize_row(0);
        let mut store2 = QuantizedStore::new(64, Precision::I8);
        store2.push_row(&snapped);
        assert_eq!(store.dequantize_row(0), store2.dequantize_row(0));
        assert_eq!(store, store2);
    }

    #[test]
    fn store_round_trip_both_codecs() {
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|r| {
                (0..16)
                    .map(|i| ((r * 16 + i) as f32 * 0.17).sin())
                    .collect()
            })
            .collect();
        let dense = VectorStore::from_rows(&rows);
        for precision in [Precision::I8, Precision::F16] {
            let q = QuantizedStore::quantize(&dense, precision);
            assert_eq!(q.rows(), 5);
            assert_eq!(q.dim(), 16);
            assert_eq!(q.precision(), precision);
            assert!(q.bytes() < dense.bytes());
            let back = q.dequantize();
            assert_eq!(back.rows(), 5);
            for (orig, rec) in dense.iter_rows().zip(back.iter_rows()) {
                let bound = match precision {
                    Precision::I8 => i8_row_scale(orig) * 0.5 + 1e-7,
                    _ => 1e-3,
                };
                for (a, b) in orig.iter().zip(rec) {
                    assert!((a - b).abs() <= bound, "{precision:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn set_row_and_gather() {
        let mut q = QuantizedStore::zeros(4, 3, Precision::I8);
        assert!(q.dequantize_row(1).iter().all(|&x| x == 0.0));
        q.set_row(1, &[0.5, -0.5, 0.25, 0.0]);
        let picked = q.dequantize_rows(&[1, 0]);
        assert_eq!(picked.rows(), 2);
        assert!((picked.row(0)[0] - 0.5).abs() < 0.01);
        assert_eq!(picked.row(1), &[0.0, 0.0, 0.0, 0.0]);
        assert!(!q.is_empty());
        assert!(QuantizedStore::new(4, Precision::F16).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let rows = [[0.6f32, 0.8, 0.0], [-0.5, 0.5, 0.5]];
        let dense = VectorStore::from_rows(&rows);
        for precision in [Precision::I8, Precision::F16] {
            let q = QuantizedStore::quantize(&dense, precision);
            let json = serde_json::to_string(&q).unwrap();
            let back: QuantizedStore = serde_json::from_str(&json).unwrap();
            assert_eq!(back, q, "{precision:?}");
        }
        assert!(serde_json::from_str::<QuantizedStore>(
            "{\"dim\":2,\"rows\":3,\"precision\":\"I8\",\"codes\":[1],\"scales\":[0.1]}"
        )
        .is_err());
        assert!(serde_json::from_str::<QuantizedStore>(
            "{\"dim\":0,\"rows\":0,\"precision\":\"F16\",\"bits\":[]}"
        )
        .is_err());
    }

    #[test]
    fn i8_scale_invariants_are_validated() {
        // NaN / negative / infinite scales are typed errors, not panics.
        for bad in ["NaN", "-0.5", "1e999"] {
            let json = format!(
                "{{\"dim\":2,\"rows\":1,\"precision\":\"I8\",\"codes\":[1,2],\"scales\":[{bad}]}}"
            );
            assert!(
                serde_json::from_str::<QuantizedStore>(&json).is_err(),
                "scale {bad} must be rejected"
            );
        }
        // A zero scale with nonzero codes would erase the row on read.
        assert!(serde_json::from_str::<QuantizedStore>(
            "{\"dim\":2,\"rows\":1,\"precision\":\"I8\",\"codes\":[1,0],\"scales\":[0.0]}"
        )
        .is_err());
        // A zero scale over an all-zero row is the legitimate empty-row
        // encoding and must keep round-tripping.
        let ok: QuantizedStore = serde_json::from_str(
            "{\"dim\":2,\"rows\":1,\"precision\":\"I8\",\"codes\":[0,0],\"scales\":[0.0]}",
        )
        .unwrap();
        assert_eq!(ok.dequantize_row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "use VectorStore for f32")]
    fn f32_payload_rejected() {
        QuantizedStore::new(4, Precision::F32);
    }
}
