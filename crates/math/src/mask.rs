//! Occupancy tracking over contiguous stores: [`OccupancyBitmap`] and the
//! bitmap-backed [`SlotMap`].
//!
//! The columnar server-side tables keep **dense** row storage (one
//! [`crate::store::VectorStore`] row per logical slot, zero-filled until
//! populated) and mark which slots actually hold data in a packed `u64`
//! bitmap. Presence tests, population counts and ordered iteration over
//! populated slots are then word-at-a-time operations instead of
//! per-slot `Option` discriminant chasing.

use serde::{Deserialize, Serialize};

/// A fixed-length packed bitmap: one bit per slot of a dense table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyBitmap {
    /// Packed bits, little-endian within each word (bit `i` lives at
    /// `words[i / 64] >> (i % 64)`).
    words: Vec<u64>,
    /// Number of addressable bits.
    len: usize,
}

impl OccupancyBitmap {
    /// An all-clear bitmap over `len` slots.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of addressable slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the bitmap addresses no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, i: usize) {
        assert!(i < self.len, "OccupancyBitmap: bit {i} of {}", self.len);
    }

    /// Whether slot `i` is occupied.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.check(i);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Marks slot `i` occupied; returns true iff it was clear before.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        self.check(i);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was_clear = *w & mask == 0;
        *w |= mask;
        was_clear
    }

    /// Clears slot `i`; returns true iff it was occupied before.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        self.check(i);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was_set = *w & mask != 0;
        *w &= !mask;
        was_set
    }

    /// Clears every slot.
    pub fn clear_all(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of occupied slots (word-at-a-time popcount).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the occupied slot indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// The packed words (serde and diagnostics).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl Serialize for OccupancyBitmap {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("len".into(), Serialize::to_value(&self.len));
        m.insert("words".into(), Serialize::to_value(&self.words));
        serde::Value::Object(m)
    }
}

impl Deserialize for OccupancyBitmap {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Object(m) => {
                let len: usize = serde::__field(m, "len")?;
                let words: Vec<u64> = serde::__field(m, "words")?;
                if words.len() != len.div_ceil(64) {
                    return Err(serde::Error::custom(format!(
                        "OccupancyBitmap: {} words for {len} bits",
                        words.len()
                    )));
                }
                // Ghost bits beyond `len` would corrupt count_ones.
                if !len.is_multiple_of(64) {
                    if let Some(&last) = words.last() {
                        if last >> (len % 64) != 0 {
                            return Err(serde::Error::custom(
                                "OccupancyBitmap: set bits beyond len".to_string(),
                            ));
                        }
                    }
                }
                Ok(Self { words, len })
            }
            other => Err(serde::Error::custom(format!(
                "expected object for OccupancyBitmap, got {}",
                other.kind()
            ))),
        }
    }
}

/// Sentinel row value for an id with no slot.
const NO_SLOT: u32 = u32::MAX;

/// An id → row slot map backed by a dense vector plus an
/// [`OccupancyBitmap`] of live ids.
///
/// Replaces `HashMap<u32, u32>` bookkeeping where ids are allocated by a
/// monotone counter (FoggyCache sample stores): lookups are one indexed
/// load, liveness is one bit test, and iteration over live ids is
/// bitmap-ordered (ascending) — deterministic without sorting.
///
/// Memory is O(largest id ever inserted) — 4 bytes per allocated id plus
/// one bit — and never shrinks. That is a deliberate trade: the callers
/// break ties (LRU victims, kNN tags) by id, so recycling freed ids
/// through a free list would reorder those deterministic tie-breaks and
/// perturb replay-identical runs. Ids stay monotone; the map pays a word
/// per id ever issued.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    /// `row_of[id]` — the row of `id`, or [`NO_SLOT`].
    row_of: Vec<u32>,
    /// Live ids.
    live: OccupancyBitmap,
    len: usize,
}

impl SlotMap {
    /// An empty map; grows as ids are inserted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no id is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow_to(&mut self, id: u32) {
        let need = id as usize + 1;
        if need > self.row_of.len() {
            // Amortized O(1): Vec::resize grows capacity geometrically.
            self.row_of.resize(need, NO_SLOT);
        }
        if need > self.live.len() {
            // The bitmap is pre-grown to the next power of two, so this
            // rebuild runs O(log max_id) times over a map's lifetime —
            // not once per monotone insert.
            let mut live = OccupancyBitmap::new(need.next_power_of_two().max(64));
            for i in self.live.iter_ones() {
                live.set(i);
            }
            self.live = live;
        }
    }

    /// Maps `id` to `row` (inserting or overwriting).
    pub fn insert(&mut self, id: u32, row: u32) {
        assert_ne!(row, NO_SLOT, "SlotMap: row sentinel in use");
        self.grow_to(id);
        if self.live.set(id as usize) {
            self.len += 1;
        }
        self.row_of[id as usize] = row;
    }

    /// The row of `id`, if live.
    #[inline]
    pub fn get(&self, id: u32) -> Option<u32> {
        let i = id as usize;
        (i < self.row_of.len() && self.live.get(i)).then(|| self.row_of[i])
    }

    /// Removes `id`, returning its row if it was live.
    pub fn remove(&mut self, id: u32) -> Option<u32> {
        let i = id as usize;
        if i < self.row_of.len() && self.live.clear(i) {
            self.len -= 1;
            let row = self.row_of[i];
            self.row_of[i] = NO_SLOT;
            Some(row)
        } else {
            None
        }
    }

    /// Iterates live `(id, row)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.live
            .iter_ones()
            .filter(|&i| i < self.row_of.len())
            .map(|i| (i as u32, self.row_of[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_clear_count() {
        let mut b = OccupancyBitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0), "second set reports already-occupied");
        assert!(b.set(64));
        assert!(b.set(129));
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert!(b.clear(64));
        assert!(!b.clear(64));
        assert_eq!(b.count_ones(), 2);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "bit 8")]
    fn bitmap_bounds_panic() {
        let b = OccupancyBitmap::new(8);
        b.get(8);
    }

    #[test]
    fn bitmap_serde_round_trips_and_validates() {
        let mut b = OccupancyBitmap::new(70);
        b.set(3);
        b.set(69);
        let json = serde_json::to_string(&b).unwrap();
        let back: OccupancyBitmap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        // Wrong word count and ghost bits are rejected.
        assert!(serde_json::from_str::<OccupancyBitmap>("{\"len\":70,\"words\":[0]}").is_err());
        assert!(serde_json::from_str::<OccupancyBitmap>(
            "{\"len\":3,\"words\":[16]}" // bit 4 set beyond len 3
        )
        .is_err());
    }

    #[test]
    fn slot_map_grows_bitmap_geometrically() {
        // Regression: monotone inserts must not rebuild the bitmap per
        // id — it is pre-grown to the next power of two.
        let mut m = SlotMap::new();
        for id in 0..1000u32 {
            m.insert(id, id);
        }
        assert_eq!(m.live.len(), 1024, "bitmap pre-grown, not exact-fit");
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(999), Some(999));
    }

    #[test]
    fn slot_map_insert_get_remove() {
        let mut m = SlotMap::new();
        assert!(m.is_empty());
        m.insert(5, 0);
        m.insert(200, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(5), Some(0));
        assert_eq!(m.get(6), None);
        m.insert(5, 7); // overwrite keeps len
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(5), Some(7));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(5, 7), (200, 1)]);
        assert_eq!(m.remove(5), Some(7));
        assert_eq!(m.remove(5), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), None);
    }
}
