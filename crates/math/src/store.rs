//! [`VectorStore`] — contiguous row-major f32 storage with a
//! dimension-checked handle.
//!
//! Every similarity hot path of the reproduction used to scan
//! `Vec<Vec<f32>>` rows — one heap allocation and one pointer chase per
//! entry. A `VectorStore` keeps all rows in **one flat buffer** so the
//! fused kernels of [`crate::matrix`] stream through cache lines, and its
//! handle enforces that every row shares one dimension (the first pushed
//! row fixes it).
//!
//! Serialization is a **flat-buffer encode** — `{"dim": d, "data":
//! [...]}` — so a serialized cache layer ships one flat array instead of
//! nested per-row arrays.

use serde::{Deserialize, Serialize};

use crate::aligned::AlignedF32;
use crate::matrix::{self, ScoreScratch, Top2};

/// Contiguous row-major storage of equal-dimension f32 vectors.
///
/// The buffer is 32-byte aligned ([`AlignedF32`]) so the AVX2 kernels
/// behind the `simd` feature take aligned loads whenever `dim % 8 == 0`;
/// alignment is invisible to results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VectorStore {
    /// Row dimension; 0 while the store has never held a row.
    dim: usize,
    /// Row-major flat buffer, `rows · dim` long.
    data: AlignedF32,
}

impl VectorStore {
    /// An empty store whose dimension is fixed by the first pushed row.
    pub fn empty() -> Self {
        Self::default()
    }

    /// An empty store with the dimension fixed up front.
    ///
    /// # Panics
    /// Panics if `dim` is 0.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "VectorStore: dim must be positive");
        Self {
            dim,
            data: AlignedF32::new(),
        }
    }

    /// An empty store with the dimension fixed and capacity reserved for
    /// `rows` rows (gather-style extraction pre-sizes its output).
    ///
    /// # Panics
    /// Panics if `dim` is 0.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "VectorStore: dim must be positive");
        Self {
            dim,
            data: AlignedF32::with_capacity(dim * rows),
        }
    }

    /// A store of `rows` zero-filled rows — the dense backing of an
    /// occupancy-bitmap table (unpopulated slots stay zero).
    ///
    /// # Panics
    /// Panics if `dim` is 0.
    pub fn zeros(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "VectorStore: dim must be positive");
        Self {
            dim,
            data: AlignedF32::zeros(dim * rows),
        }
    }

    /// Builds a store from explicit rows (they must share one length).
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        let mut s = Self::empty();
        for r in rows {
            s.push_row(r.as_ref());
        }
        s
    }

    /// Row dimension (0 iff the store never held a row).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True iff the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied by the rows (dense f32).
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Row `i` as a mutable slice (in-place decay-add updates).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.dim;
        &mut self.data[start..start + self.dim]
    }

    /// Gather-style extraction: copies the given rows, in order, into a
    /// fresh pre-sized store — one `memcpy` per row, no per-row
    /// allocations (the columnar `extract` hot path).
    ///
    /// # Panics
    /// Panics if any row is out of range or the store holds no rows.
    pub fn extract_rows(&self, rows: &[usize]) -> VectorStore {
        assert!(self.dim > 0, "extract_rows: store dimension unset");
        let mut out = VectorStore::with_capacity(self.dim, rows.len());
        for &r in rows {
            let start = r * self.dim;
            out.data
                .extend_from_slice(&self.data[start..start + self.dim]);
        }
        out
    }

    /// Iterates the rows in order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        // `chunks_exact(0)` panics, so an unset-dimension (empty) store
        // iterates over a chunk size of 1 — zero chunks either way.
        self.data.chunks_exact(self.dim.max(1))
    }

    /// The flat row-major buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// The flat row-major buffer, mutably (batched in-place kernels).
    pub fn as_flat_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Appends a row, fixing the store dimension on first use; returns the
    /// new row's index.
    ///
    /// # Panics
    /// Panics on a dimension mismatch or an empty row.
    pub fn push_row(&mut self, row: &[f32]) -> usize {
        if self.dim == 0 {
            assert!(!row.is_empty(), "VectorStore: cannot push an empty row");
            self.dim = row.len();
        } else {
            assert_eq!(
                row.len(),
                self.dim,
                "VectorStore: row dim {} vs store dim {}",
                row.len(),
                self.dim
            );
        }
        self.data.extend_from_slice(row);
        self.rows() - 1
    }

    /// Overwrites row `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or the dimension mismatches.
    pub fn set_row(&mut self, i: usize, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.dim,
            "VectorStore: row dim {} vs store dim {}",
            row.len(),
            self.dim
        );
        let start = i * self.dim;
        self.data[start..start + self.dim].copy_from_slice(row);
    }

    /// Removes row `i` by moving the last row into its slot (O(dim)).
    /// Returns the index of the row that moved into `i`, if any.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn swap_remove_row(&mut self, i: usize) -> Option<usize> {
        let last = self
            .rows()
            .checked_sub(1)
            .expect("swap_remove on empty store");
        assert!(i <= last, "VectorStore: row {i} out of range ({last} max)");
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(tail);
        }
        self.data.truncate(last * self.dim);
        (i != last).then_some(last)
    }

    /// Drops every row (the dimension is kept).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    // ------------------------------------------------- fused kernels ----

    /// One fused Eq. 1/2 pass over the store (see [`matrix::score_top2`]).
    pub fn score_top2(
        &self,
        query: &[f32],
        classes: &[usize],
        alpha: f32,
        scratch: &mut ScoreScratch,
    ) -> Top2 {
        matrix::score_top2(&self.data, self.dim, query, classes, alpha, scratch)
    }

    /// Top-`k` candidate rows by similarity (see [`matrix::knn_k`]).
    pub fn knn_k(&self, query: &[f32], candidates: &[(u32, u32)], k: usize) -> Vec<(f32, u32)> {
        matrix::knn_k(&self.data, self.dim, query, candidates, k)
    }

    /// Nearest row by similarity (see [`matrix::assign_nearest`]).
    pub fn assign_nearest(&self, query: &[f32]) -> Option<(usize, f32)> {
        matrix::assign_nearest(&self.data, self.dim, query)
    }
}

// Flat-buffer wire shape; the derive shims cannot express it, so the
// traits are implemented by hand.
impl Serialize for VectorStore {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("dim".into(), Serialize::to_value(&self.dim));
        m.insert("data".into(), Serialize::to_value(self.data.as_slice()));
        serde::Value::Object(m)
    }
}

impl Deserialize for VectorStore {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Object(m) => {
                let dim: usize = serde::__field(m, "dim")?;
                let data: Vec<f32> = serde::__field(m, "data")?;
                if dim == 0 && !data.is_empty() {
                    return Err(serde::Error::custom("VectorStore: data without a dim"));
                }
                if dim > 0 && !data.len().is_multiple_of(dim) {
                    return Err(serde::Error::custom(format!(
                        "VectorStore: {} floats is not a multiple of dim {dim}",
                        data.len()
                    )));
                }
                Ok(Self {
                    dim,
                    data: AlignedF32::from_slice(&data),
                })
            }
            other => Err(serde::Error::custom(format!(
                "expected object for VectorStore, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> VectorStore {
        VectorStore::from_rows(&[[1.0f32, 0.0], [0.0, 1.0], [0.6, 0.8]])
    }

    #[test]
    fn push_fixes_dimension() {
        let mut s = VectorStore::empty();
        assert_eq!(s.dim(), 0);
        assert_eq!(s.push_row(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.bytes(), 12);
    }

    #[test]
    #[should_panic(expected = "row dim")]
    fn ragged_push_panics() {
        let mut s = VectorStore::new(2);
        s.push_row(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn set_and_swap_remove() {
        let mut s = store3();
        s.set_row(1, &[0.5, 0.5]);
        assert_eq!(s.row(1), &[0.5, 0.5]);
        // Removing the middle row moves the last row into its slot.
        assert_eq!(s.swap_remove_row(1), Some(2));
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(1), &[0.6, 0.8]);
        // Removing the last row moves nothing.
        assert_eq!(s.swap_remove_row(1), None);
        assert_eq!(s.rows(), 1);
    }

    #[test]
    fn zeros_row_mut_and_extract_rows() {
        let mut s = VectorStore::zeros(2, 3);
        assert_eq!(s.rows(), 3);
        assert!(s.as_flat().iter().all(|&x| x == 0.0));
        s.row_mut(1).copy_from_slice(&[0.5, 0.5]);
        assert_eq!(s.row(1), &[0.5, 0.5]);
        let picked = s.extract_rows(&[1, 0, 1]);
        assert_eq!(picked.rows(), 3);
        assert_eq!(picked.row(0), &[0.5, 0.5]);
        assert_eq!(picked.row(1), &[0.0, 0.0]);
        assert_eq!(picked.row(2), &[0.5, 0.5]);
        let with_cap = VectorStore::with_capacity(2, 8);
        assert_eq!(with_cap.rows(), 0);
        assert_eq!(with_cap.dim(), 2);
    }

    #[test]
    fn rows_iterate_in_order() {
        let s = store3();
        let rows: Vec<&[f32]> = s.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[0.6, 0.8]);
        assert!(VectorStore::empty().iter_rows().next().is_none());
    }

    #[test]
    fn serde_flat_round_trip() {
        let s = store3();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"dim\":2"), "flat encode: {json}");
        let back: VectorStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let empty: VectorStore =
            serde_json::from_str(&serde_json::to_string(&VectorStore::empty()).unwrap()).unwrap();
        assert_eq!(empty.rows(), 0);
    }

    #[test]
    fn serde_rejects_ragged_buffers() {
        assert!(serde_json::from_str::<VectorStore>("{\"dim\":3,\"data\":[1.0,2.0]}").is_err());
        assert!(serde_json::from_str::<VectorStore>("{\"dim\":0,\"data\":[1.0]}").is_err());
    }

    #[test]
    fn fused_methods_delegate() {
        let s = store3();
        let mut scratch = ScoreScratch::new();
        scratch.begin(3);
        let t = s.score_top2(&[1.0, 0.0], &[0, 1, 2], 0.9, &mut scratch);
        assert_eq!(t.best.unwrap().0, 0);
        assert_eq!(t.second.unwrap().0, 2);
        assert_eq!(s.assign_nearest(&[0.0, 1.0]), Some((1, 1.0)));
        let top = s.knn_k(&[1.0, 0.0], &[(0, 0), (1, 1), (2, 2)], 2);
        assert_eq!(top[0].1, 0);
        assert_eq!(top[1].1, 2);
    }
}
