//! Explicit AVX2 implementations of the fused kernels, behind the `simd`
//! cargo feature with runtime dispatch.
//!
//! ## Bit-identity contract
//!
//! Every function in [`avx2`] produces **bit-identical** output to its
//! scalar twin in [`crate::matrix::scalar`] — the committed records and
//! the determinism contract survive with SIMD enabled. Three rules make
//! that true:
//!
//! 1. **No FMA.** The scalar path rounds after the multiply and again
//!    after the add; a fused multiply-add rounds once. We always emit
//!    separate `_mm256_mul_ps` + `_mm256_add_ps`, even though the host
//!    has FMA units.
//! 2. **Same accumulation pattern.** The scalar `dot_unit` keeps 8
//!    independent lane accumulators and reduces them through one fixed
//!    pairwise tree; one `__m256` accumulator *is* those 8 lanes, and we
//!    extract and reduce them through the identical tree. The scalar
//!    `merge_weighted_row` keeps 4 accumulators fed one 4-chunk at a
//!    time in index order; we compute two chunks per iteration 8-wide
//!    (elementwise, so order-free) but fold the squared halves into one
//!    128-bit accumulator **low half first**, replicating the scalar
//!    chunk order exactly, and reduce left-to-right like the scalar
//!    code.
//! 3. **Same tails.** Remainder elements run the scalar loop in index
//!    order.
//!
//! Alignment never changes results: `dot_unit` picks `_mm256_load_ps`
//! only when both pointers are 32-byte aligned (true for
//! [`crate::store::VectorStore`] rows whenever `dim % 8 == 0`, thanks to
//! [`crate::aligned::AlignedF32`]) and falls back to `_mm256_loadu_ps`
//! otherwise — the loaded values, and therefore the arithmetic, are the
//! same either way.
//!
//! `tests/proptest_simd.rs` pins every kernel here bit-identical to the
//! scalar path over odd dims, tail-only inputs and unaligned sub-slices.

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached runtime AVX2 probe: 0 = unknown, 1 = absent, 2 = present.
static AVX2_STATE: AtomicU8 = AtomicU8::new(0);

/// True iff the running CPU supports AVX2 (probed once, then cached).
#[inline]
pub fn avx2_enabled() -> bool {
    match AVX2_STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            AVX2_STATE.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// AVX2 twins of the [`crate::matrix`] kernels.
///
/// # Safety
/// Every function requires AVX2 at runtime — callers must check
/// [`avx2_enabled`] (the dispatchers in `matrix.rs` do).
pub mod avx2 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use crate::matrix::{ScoreScratch, Top2, UNROLL};

    /// AVX2 [`crate::matrix::scalar::dot_unit`]: one `__m256`
    /// accumulator holds the 8 scalar lanes; mul-then-add (no FMA) and
    /// the identical pairwise reduction tree keep it bit-identical.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_unit(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot_unit: length mismatch {} vs {}",
            a.len(),
            b.len()
        );
        let split = a.len() - a.len() % UNROLL;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        if (pa as usize).is_multiple_of(32) && (pb as usize).is_multiple_of(32) {
            while i < split {
                let va = _mm256_load_ps(pa.add(i));
                let vb = _mm256_load_ps(pb.add(i));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                i += UNROLL;
            }
        } else {
            while i < split {
                let va = _mm256_loadu_ps(pa.add(i));
                let vb = _mm256_loadu_ps(pb.add(i));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
                i += UNROLL;
            }
        }
        let mut lanes = [0.0f32; UNROLL];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        // The scalar kernel's fixed pairwise tree, verbatim.
        let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        for k in split..a.len() {
            sum += a.get_unchecked(k) * b.get_unchecked(k);
        }
        sum
    }

    /// AVX2 [`crate::matrix::scalar::score_top2`]: identical control
    /// flow with the AVX2 dot inlined per row.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn score_top2(
        data: &[f32],
        dim: usize,
        query: &[f32],
        classes: &[usize],
        alpha: f32,
        scratch: &mut ScoreScratch,
    ) -> Top2 {
        assert_eq!(
            classes.len() * dim,
            data.len(),
            "score_top2: shape mismatch"
        );
        let mut best: Option<(usize, f32)> = None;
        let mut second: Option<(usize, f32)> = None;
        if classes.is_empty() {
            return Top2 { best, second };
        }
        for (row, &class) in data.chunks_exact(dim).zip(classes) {
            let c = dot_unit(query, row);
            let a = c + alpha * scratch.accumulated(class);
            scratch.store(class, a);
            match best {
                Some((_, bv)) if a <= bv => match second {
                    Some((_, sv)) if a <= sv => {}
                    _ => second = Some((class, a)),
                },
                _ => {
                    second = best;
                    best = Some((class, a));
                }
            }
        }
        Top2 { best, second }
    }

    /// AVX2 [`crate::matrix::scalar::knn_k`].
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn knn_k(
        data: &[f32],
        dim: usize,
        query: &[f32],
        candidates: &[(u32, u32)],
        k: usize,
    ) -> Vec<(f32, u32)> {
        let mut scored: Vec<(f32, u32)> = candidates
            .iter()
            .map(|&(row, tag)| {
                let start = row as usize * dim;
                (dot_unit(query, &data[start..start + dim]), tag)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored
    }

    /// AVX2 [`crate::matrix::scalar::assign_nearest`].
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn assign_nearest(data: &[f32], dim: usize, query: &[f32]) -> Option<(usize, f32)> {
        if data.is_empty() {
            return None;
        }
        assert_eq!(data.len() % dim, 0, "assign_nearest: ragged buffer");
        let mut best: Option<(usize, f32)> = None;
        for (i, row) in data.chunks_exact(dim).enumerate() {
            let sim = dot_unit(query, row);
            match best {
                Some((_, bv)) if sim <= bv => {}
                _ => best = Some((i, sim)),
            }
        }
        best
    }

    /// AVX2 [`crate::matrix::scalar::merge_weighted_row`].
    ///
    /// The merged values are elementwise (`m = w_old·e + w_new·u`, one
    /// rounding per op, no FMA) so computing them 8-wide is exact; the
    /// norm accumulator is the scalar kernel's 4-lane state, fed low
    /// half before high half so the chunk order matches, then reduced
    /// **left-to-right** exactly like the scalar code (which does not
    /// use the pairwise tree here).
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn merge_weighted_row(e: &mut [f32], u: &[f32], w_old: f32, w_new: f32) -> f32 {
        assert_eq!(
            e.len(),
            u.len(),
            "merge_weighted_row: length mismatch {} vs {}",
            e.len(),
            u.len()
        );
        let n = e.len();
        let split = n - n % 4;
        let pe = e.as_mut_ptr();
        let pu = u.as_ptr();
        let wo8 = _mm256_set1_ps(w_old);
        let wn8 = _mm256_set1_ps(w_new);
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        // Two scalar 4-chunks per iteration: merged values are
        // elementwise, and the squared low half folds into `acc` before
        // the high half — the scalar chunk-k-then-chunk-k+1 order.
        while i + 8 <= split {
            let m = _mm256_add_ps(
                _mm256_mul_ps(wo8, _mm256_loadu_ps(pe.add(i))),
                _mm256_mul_ps(wn8, _mm256_loadu_ps(pu.add(i))),
            );
            _mm256_storeu_ps(pe.add(i), m);
            let sq = _mm256_mul_ps(m, m);
            acc = _mm_add_ps(acc, _mm256_castps256_ps128(sq));
            acc = _mm_add_ps(acc, _mm256_extractf128_ps::<1>(sq));
            i += 8;
        }
        if i < split {
            let m = _mm_add_ps(
                _mm_mul_ps(_mm256_castps256_ps128(wo8), _mm_loadu_ps(pe.add(i))),
                _mm_mul_ps(_mm256_castps256_ps128(wn8), _mm_loadu_ps(pu.add(i))),
            );
            _mm_storeu_ps(pe.add(i), m);
            acc = _mm_add_ps(acc, _mm_mul_ps(m, m));
            i += 4;
        }
        debug_assert_eq!(i, split);
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
        // Left-to-right, exactly like the scalar kernel.
        let mut sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for k in split..n {
            let m = w_old * *pe.add(k) + w_new * *pu.add(k);
            *pe.add(k) = m;
            sum += m * m;
        }
        let norm = sum.sqrt();
        if norm > f32::MIN_POSITIVE {
            let inv = 1.0 / norm;
            let inv8 = _mm256_set1_ps(inv);
            let mut k = 0;
            while k + 8 <= n {
                _mm256_storeu_ps(pe.add(k), _mm256_mul_ps(_mm256_loadu_ps(pe.add(k)), inv8));
                k += 8;
            }
            while k < n {
                *pe.add(k) *= inv;
                k += 1;
            }
        }
        norm
    }

    /// Two-row interleaved [`merge_weighted_row`]: each row's arithmetic
    /// — merge values, norm-accumulator chunk order, left-to-right lane
    /// reduction, tail, normalize — is the single-row kernel's sequence
    /// **bit for bit**; only the instruction schedule interleaves, so the
    /// two rows' serial norm-accumulator dependency chains (the
    /// single-row bottleneck: one `_mm_add_ps` per 4 elements, latency
    /// bound, identical under SSE and AVX2) overlap in the pipeline.
    /// Rows are independent, so interleaving cannot change results.
    ///
    /// # Safety
    /// Requires AVX2; `ea`/`eb` must not alias.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn merge_weighted_row_x2(
        ea: &mut [f32],
        ua: &[f32],
        woa: f32,
        wna: f32,
        eb: &mut [f32],
        ub: &[f32],
        wob: f32,
        wnb: f32,
    ) -> (f32, f32) {
        debug_assert_eq!(ea.len(), ua.len());
        debug_assert_eq!(eb.len(), ub.len());
        debug_assert_eq!(ea.len(), eb.len());
        let n = ea.len();
        let split = n - n % 4;
        let pea = ea.as_mut_ptr();
        let pua = ua.as_ptr();
        let peb = eb.as_mut_ptr();
        let pub_ = ub.as_ptr();
        let woa8 = _mm256_set1_ps(woa);
        let wna8 = _mm256_set1_ps(wna);
        let wob8 = _mm256_set1_ps(wob);
        let wnb8 = _mm256_set1_ps(wnb);
        let mut acca = _mm_setzero_ps();
        let mut accb = _mm_setzero_ps();
        let mut i = 0;
        while i + 8 <= split {
            let ma = _mm256_add_ps(
                _mm256_mul_ps(woa8, _mm256_loadu_ps(pea.add(i))),
                _mm256_mul_ps(wna8, _mm256_loadu_ps(pua.add(i))),
            );
            _mm256_storeu_ps(pea.add(i), ma);
            let mb = _mm256_add_ps(
                _mm256_mul_ps(wob8, _mm256_loadu_ps(peb.add(i))),
                _mm256_mul_ps(wnb8, _mm256_loadu_ps(pub_.add(i))),
            );
            _mm256_storeu_ps(peb.add(i), mb);
            let sqa = _mm256_mul_ps(ma, ma);
            let sqb = _mm256_mul_ps(mb, mb);
            acca = _mm_add_ps(acca, _mm256_castps256_ps128(sqa));
            acca = _mm_add_ps(acca, _mm256_extractf128_ps::<1>(sqa));
            accb = _mm_add_ps(accb, _mm256_castps256_ps128(sqb));
            accb = _mm_add_ps(accb, _mm256_extractf128_ps::<1>(sqb));
            i += 8;
        }
        if i < split {
            let ma = _mm_add_ps(
                _mm_mul_ps(_mm256_castps256_ps128(woa8), _mm_loadu_ps(pea.add(i))),
                _mm_mul_ps(_mm256_castps256_ps128(wna8), _mm_loadu_ps(pua.add(i))),
            );
            _mm_storeu_ps(pea.add(i), ma);
            acca = _mm_add_ps(acca, _mm_mul_ps(ma, ma));
            let mb = _mm_add_ps(
                _mm_mul_ps(_mm256_castps256_ps128(wob8), _mm_loadu_ps(peb.add(i))),
                _mm_mul_ps(_mm256_castps256_ps128(wnb8), _mm_loadu_ps(pub_.add(i))),
            );
            _mm_storeu_ps(peb.add(i), mb);
            accb = _mm_add_ps(accb, _mm_mul_ps(mb, mb));
            i += 4;
        }
        debug_assert_eq!(i, split);
        let mut lanes = [0.0f32; 4];
        _mm_storeu_ps(lanes.as_mut_ptr(), acca);
        let mut suma = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        _mm_storeu_ps(lanes.as_mut_ptr(), accb);
        let mut sumb = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        for k in split..n {
            let ma = woa * *pea.add(k) + wna * *pua.add(k);
            *pea.add(k) = ma;
            suma += ma * ma;
            let mb = wob * *peb.add(k) + wnb * *pub_.add(k);
            *peb.add(k) = mb;
            sumb += mb * mb;
        }
        let norm_a = suma.sqrt();
        let norm_b = sumb.sqrt();
        // Per-row guarded normalize, exactly like the single-row kernel
        // (a zero/denormal-tiny merged row stays unnormalized).
        for (p, norm) in [(pea, norm_a), (peb, norm_b)] {
            if norm > f32::MIN_POSITIVE {
                let inv = 1.0 / norm;
                let inv8 = _mm256_set1_ps(inv);
                let mut k = 0;
                while k + 8 <= n {
                    _mm256_storeu_ps(p.add(k), _mm256_mul_ps(_mm256_loadu_ps(p.add(k)), inv8));
                    k += 8;
                }
                while k < n {
                    *p.add(k) *= inv;
                    k += 1;
                }
            }
        }
        (norm_a, norm_b)
    }

    /// AVX2 [`crate::matrix::scalar::merge_weighted_rows`].
    ///
    /// Jobs run pairwise-interleaved through [`merge_weighted_row_x2`]
    /// when the pair's destination rows differ (independent rows, so the
    /// per-row arithmetic — and therefore the output — is unchanged; the
    /// two norm-accumulator chains overlap instead of serializing). A
    /// pair writing the same destination row, and a trailing odd job,
    /// fall back to the single-row kernel in job order.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn merge_weighted_rows(
        dst: &mut [f32],
        dim: usize,
        dst_rows: &[usize],
        src: &[f32],
        src_rows: &[usize],
        w_old: &[f32],
        w_new: &[f32],
    ) {
        assert!(
            dst.len().is_multiple_of(dim.max(1)) && src.len().is_multiple_of(dim.max(1)),
            "merge_weighted_rows: ragged buffers"
        );
        assert!(
            dst_rows.len() == src_rows.len()
                && dst_rows.len() == w_old.len()
                && dst_rows.len() == w_new.len(),
            "merge_weighted_rows: job slices must be parallel"
        );
        let jobs = dst_rows.len();
        let mut i = 0;
        while i + 1 < jobs {
            if dst_rows[i] == dst_rows[i + 1] {
                let d = dst_rows[i] * dim;
                let s = src_rows[i] * dim;
                merge_weighted_row(&mut dst[d..d + dim], &src[s..s + dim], w_old[i], w_new[i]);
                i += 1;
                continue;
            }
            let da = dst_rows[i] * dim;
            let db = dst_rows[i + 1] * dim;
            let sa = src_rows[i] * dim;
            let sb = src_rows[i + 1] * dim;
            assert!(
                da + dim <= dst.len() && db + dim <= dst.len(),
                "merge_weighted_rows: destination row out of range"
            );
            // Distinct rows of one buffer: disjoint, so the two &mut
            // slices are sound.
            let pd = dst.as_mut_ptr();
            let ea = core::slice::from_raw_parts_mut(pd.add(da), dim);
            let eb = core::slice::from_raw_parts_mut(pd.add(db), dim);
            merge_weighted_row_x2(
                ea,
                &src[sa..sa + dim],
                w_old[i],
                w_new[i],
                eb,
                &src[sb..sb + dim],
                w_old[i + 1],
                w_new[i + 1],
            );
            i += 2;
        }
        if i < jobs {
            let d = dst_rows[i] * dim;
            let s = src_rows[i] * dim;
            merge_weighted_row(&mut dst[d..d + dim], &src[s..s + dim], w_old[i], w_new[i]);
        }
    }
}
