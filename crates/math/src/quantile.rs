//! The P² (piecewise-parabolic) streaming quantile estimator.
//!
//! Jain & Chlamtac, CACM 1985. Estimates a single quantile in O(1) memory —
//! the experiment harness tracks p50/p95/p99 latency across hundreds of
//! thousands of simulated frames without retaining them.

use serde::{Deserialize, Serialize};

/// Streaming estimator for one quantile `q`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far (first five buffer into `heights`).
    count: usize,
}

impl P2Quantile {
    /// New estimator for quantile `q` in (0, 1).
    ///
    /// # Panics
    /// Panics if `q` is outside (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Convenience: a median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Locate the cell containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers via parabolic (fallback: linear) formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_right = self.positions[i + 1] - self.positions[i];
            let step_left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && step_right > 1.0) || (d <= -1.0 && step_left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let h = &self.heights;
        let p = &self.positions;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate. For fewer than five observations, falls back to the
    /// exact quantile of the buffered values. Returns `None` when empty.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut buf = self.heights[..n].to_vec();
                buf.sort_by(|a, b| a.total_cmp(b));
                let rank = (self.q * (n - 1) as f64).round() as usize;
                Some(buf[rank.min(n - 1)])
            }
            _ => Some(self.heights[2]),
        }
    }

    /// Observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(mut xs: Vec<f64>, q: f64) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[((xs.len() - 1) as f64 * q).round() as usize]
    }

    #[test]
    fn median_of_uniform_is_near_half() {
        let mut est = P2Quantile::median();
        let mut rng = SmallRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..20_000).map(|_| rng.gen::<f64>()).collect();
        for &x in &xs {
            est.push(x);
        }
        let truth = exact_quantile(xs, 0.5);
        assert!((est.estimate().unwrap() - truth).abs() < 0.02);
    }

    #[test]
    fn p95_of_skewed_distribution() {
        let mut est = P2Quantile::new(0.95);
        let mut rng = SmallRng::seed_from_u64(2);
        // Log-normal-ish: exp of normal.
        let xs: Vec<f64> = (0..50_000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-9..1.0);
                let v: f64 = rng.gen_range(0.0..1.0);
                let n = (-2.0f64 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
                n.exp()
            })
            .collect();
        for &x in &xs {
            est.push(x);
        }
        let truth = exact_quantile(xs, 0.95);
        let got = est.estimate().unwrap();
        assert!(
            (got - truth).abs() / truth < 0.1,
            "got {got}, truth {truth}"
        );
    }

    #[test]
    fn small_counts_fall_back_to_exact() {
        let mut est = P2Quantile::median();
        assert_eq!(est.estimate(), None);
        est.push(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.push(1.0);
        est.push(2.0);
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn rejects_bad_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
