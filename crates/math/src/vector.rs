//! f32 vector kernels.
//!
//! These are the hot path of the reproduction: every simulated inference
//! performs one cosine similarity per cached class per activated cache layer
//! (paper Eq. (1)). Kernels take plain slices so callers can store vectors
//! however they like (rows of a table, `Vec<f32>`, boxed slices).

use rand::Rng;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    // Four accumulators give the optimizer freedom to vectorize without
    // changing the result much; exactness is not required here.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        sum += a[j] * b[j];
    }
    sum
}

/// Euclidean norm.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Normalizes `v` to unit L2 norm in place. A zero (or denormal-tiny) vector
/// is left untouched — the caller decides how to treat degenerate entries.
///
/// Returns the original norm.
pub fn l2_normalize(v: &mut [f32]) -> f32 {
    let n = l2_norm(v);
    if n > f32::MIN_POSITIVE {
        let inv = 1.0 / n;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
    n
}

/// Returns a unit-normalized copy of `v` (zero vectors come back unchanged).
pub fn l2_normalized(v: &[f32]) -> Vec<f32> {
    let mut out = v.to_vec();
    l2_normalize(&mut out);
    out
}

/// Cosine similarity for **general** (possibly non-unit) vectors. Zero
/// vectors yield 0.0 (maximally non-committal) rather than NaN so
/// downstream ranking logic stays total.
///
/// This recomputes both L2 norms on every call; the similarity hot paths
/// uphold a unit-norm contract at insertion time (see [`is_unit`]) and
/// call the norm-free [`dot_unit`] instead.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f32::MIN_POSITIVE || nb <= f32::MIN_POSITIVE {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// True iff `v` is unit-norm within `tol` — the insertion-time contract
/// (`debug_assert!(is_unit(..))`) that lets every lookup use [`dot_unit`]
/// without renormalizing. A zero vector also passes: degenerate entries
/// (e.g. a whitened feature parallel to the centering direction) score 0
/// under `dot_unit`, exactly what [`cosine`] returned for them.
#[inline]
pub fn is_unit(v: &[f32], tol: f32) -> bool {
    let n = l2_norm(v);
    n <= f32::MIN_POSITIVE || (n - 1.0).abs() < tol
}

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// Scales `v` by `alpha` in place.
pub fn scale(alpha: f32, v: &mut [f32]) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Samples a uniformly distributed unit vector of dimension `dim` (Gaussian
/// components, then normalized).
pub fn random_unit<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f32> {
    assert!(dim > 0, "random_unit: dim must be positive");
    loop {
        let mut v: Vec<f32> = (0..dim).map(|_| standard_normal(rng)).collect();
        if l2_normalize(&mut v) > 1e-6 {
            return v;
        }
        // Astronomically unlikely; resample to preserve the unit-norm
        // postcondition.
    }
}

/// One standard normal sample via Box–Muller (keeps us off rand_distr).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Element-wise mean of a non-empty set of equal-length vectors.
///
/// # Panics
/// Panics if `vectors` is empty or lengths differ.
pub fn mean_vector(vectors: &[&[f32]]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "mean_vector: empty input");
    let dim = vectors[0].len();
    let mut mean = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "mean_vector: ragged input");
        axpy(1.0, v, &mut mean);
    }
    scale(1.0 / vectors.len() as f32, &mut mean);
    mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = l2_normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-6);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        assert!((v[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0; 8];
        assert_eq!(l2_normalize(&mut v), 0.0);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn is_unit_accepts_units_and_zero() {
        assert!(is_unit(&[0.6, 0.8], 1e-3));
        assert!(is_unit(&[0.0, 0.0], 1e-3), "zero vector is degenerate-ok");
        assert!(!is_unit(&[0.6, 0.9], 1e-3));
        let mut v = vec![0.3f32; 37];
        l2_normalize(&mut v);
        assert!(is_unit(&v, 1e-3));
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn random_unit_is_unit_and_deterministic() {
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        let a = random_unit(&mut r1, 64);
        let b = random_unit(&mut r2, 64);
        assert_eq!(a, b);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn high_dim_random_units_are_nearly_orthogonal() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = random_unit(&mut rng, 512);
        let b = random_unit(&mut rng, 512);
        assert!(cosine(&a, &b).abs() < 0.2, "cos = {}", cosine(&a, &b));
    }

    #[test]
    fn mean_vector_averages() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let m = mean_vector(&[&a, &b]);
        assert_eq!(m, vec![0.5, 0.5]);
    }

    #[test]
    fn axpy_and_scale() {
        let x = [1.0f32, 2.0];
        let mut y = [10.0f32, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }
}
