//! Top-k principal components by power iteration with deflation.
//!
//! Fig. 2 of the paper uses t-SNE to show that global cache updates pull
//! cached semantic centers toward the true per-class sample centers. The
//! reproduction substitutes a deterministic 2-D PCA projection (see
//! DESIGN.md §2): power iteration on the covariance Gram matrix is exact
//! enough for a scatter projection and has no stochastic layout.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::vector::{axpy, dot, l2_norm, l2_normalize, random_unit, scale};

/// Result of a PCA fit: `k` orthonormal components and the data mean.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Orthonormal principal axes, strongest first.
    pub components: Vec<Vec<f32>>,
    /// Mean vector subtracted before projection.
    pub mean: Vec<f32>,
    /// Eigenvalue estimate (variance) per component.
    pub eigenvalues: Vec<f32>,
}

impl Pca {
    /// Fits `k` principal components to `rows` (each a `dim`-length sample)
    /// using `iters` power iterations per component.
    ///
    /// Deterministic: the starting vectors come from a fixed seed.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[&[f32]], k: usize, iters: usize) -> Pca {
        assert!(!rows.is_empty(), "Pca::fit: empty input");
        let dim = rows[0].len();
        for r in rows {
            assert_eq!(r.len(), dim, "Pca::fit: ragged input");
        }
        let mut mean = vec![0.0f32; dim];
        for r in rows {
            axpy(1.0, r, &mut mean);
        }
        scale(1.0 / rows.len() as f32, &mut mean);

        // Centered copies — covariance-vector products then need only dots.
        let centered: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().zip(&mean).map(|(x, m)| x - m).collect())
            .collect();

        let mut rng = SmallRng::seed_from_u64(0xC0CA_07CA);
        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut eigenvalues = Vec::with_capacity(k);

        for _ in 0..k.min(dim) {
            let mut v = random_unit(&mut rng, dim);
            let mut lambda = 0.0f32;
            for _ in 0..iters {
                // w = C v = (1/n) Σ x (xᵀ v), deflated against found axes.
                let mut w = vec![0.0f32; dim];
                for x in &centered {
                    let c = dot(x, &v);
                    axpy(c, x, &mut w);
                }
                scale(1.0 / centered.len() as f32, &mut w);
                for c in &components {
                    let proj = dot(&w, c);
                    axpy(-proj, c, &mut w);
                }
                lambda = l2_norm(&w);
                if lambda <= f32::MIN_POSITIVE {
                    // Remaining variance is zero; keep previous v.
                    break;
                }
                l2_normalize(&mut w);
                v = w;
            }
            components.push(v);
            eigenvalues.push(lambda);
        }
        Pca {
            components,
            mean,
            eigenvalues,
        }
    }

    /// Projects one sample onto the fitted components.
    pub fn project(&self, row: &[f32]) -> Vec<f32> {
        let centered: Vec<f32> = row.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        self.components.iter().map(|c| dot(&centered, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn recovers_dominant_axis() {
        // Data stretched along (1,1,0)/sqrt(2), tiny noise elsewhere.
        let mut rng = SmallRng::seed_from_u64(5);
        let axis = [
            std::f32::consts::FRAC_1_SQRT_2,
            std::f32::consts::FRAC_1_SQRT_2,
            0.0,
        ];
        let rows: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t: f32 = rng.gen_range(-3.0..3.0);
                let n: f32 = rng.gen_range(-0.01..0.01);
                vec![axis[0] * t + n, axis[1] * t - n, n]
            })
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let pca = Pca::fit(&refs, 2, 50);
        let c0 = &pca.components[0];
        let alignment = dot(c0, &axis).abs();
        assert!(alignment > 0.999, "alignment {alignment}");
        assert!(pca.eigenvalues[0] > 10.0 * pca.eigenvalues[1]);
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(6);
        let rows: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let pca = Pca::fit(&refs, 3, 60);
        for i in 0..3 {
            assert!((l2_norm(&pca.components[i]) - 1.0).abs() < 1e-3);
            for j in 0..i {
                assert!(dot(&pca.components[i], &pca.components[j]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn projection_of_mean_is_origin() {
        let rows = [vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let pca = Pca::fit(&refs, 1, 20);
        let p = pca.project(&[2.0, 3.0]);
        assert!(p[0].abs() < 1e-5);
    }
}
