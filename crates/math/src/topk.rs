//! Index-returning top-k selection over f32 scores.
//!
//! The semantic-cache lookup needs the *identities* of the two classes with
//! the largest accumulated cosine similarity (paper Eq. (2)), not just their
//! values.

/// Index of the maximum value (first on ties). `None` for empty input.
pub fn top1(values: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Indices of the largest and second-largest values, first-wins on ties.
/// `None` unless at least two values are present.
pub fn top2(values: &[f32]) -> Option<(usize, usize)> {
    if values.len() < 2 {
        return None;
    }
    let (mut bi, mut bv) = (0usize, values[0]);
    let (mut si, mut sv) = (usize::MAX, f32::NEG_INFINITY);
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > bv {
            si = bi;
            sv = bv;
            bi = i;
            bv = v;
        } else if v > sv {
            si = i;
            sv = v;
        }
    }
    Some((bi, si))
}

/// Indices of the `k` largest values in descending value order (stable:
/// earlier indices win ties). `k` larger than the input returns all indices.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    let k = k.min(values.len());
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top1_finds_max() {
        assert_eq!(top1(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(top1(&[]), None);
        assert_eq!(top1(&[2.0, 2.0]), Some(0)); // first wins ties
    }

    #[test]
    fn top2_orders_pair() {
        assert_eq!(top2(&[0.1, 0.9, 0.5]), Some((1, 2)));
        assert_eq!(top2(&[0.9, 0.1]), Some((0, 1)));
        assert_eq!(top2(&[0.9]), None);
        // Ties: first occurrence is the winner, second occurrence runner-up.
        assert_eq!(top2(&[0.5, 0.5, 0.1]), Some((0, 1)));
    }

    #[test]
    fn top2_with_max_first() {
        assert_eq!(top2(&[3.0, 1.0, 2.0]), Some((0, 2)));
    }

    #[test]
    fn top_k_sorted_descending() {
        let v = [0.3f32, 0.9, 0.1, 0.7];
        assert_eq!(top_k_indices(&v, 3), vec![1, 3, 0]);
        assert_eq!(top_k_indices(&v, 10), vec![1, 3, 0, 2]);
        assert!(top_k_indices(&v, 0).is_empty());
    }

    #[test]
    fn top2_agrees_with_top_k() {
        let v = [0.2f32, 0.8, 0.5, 0.8, 0.1];
        let (a, b) = top2(&v).unwrap();
        let k = top_k_indices(&v, 2);
        assert_eq!(vec![a, b], k);
    }
}
