//! Cluster-quality metrics over labelled vector sets.
//!
//! Quantitative replacement for the paper's Fig. 2 t-SNE evidence: after
//! global cache updates, per-class cached centers should sit closer to their
//! class's sample center than to any other class's samples. We measure this
//! with (a) mean intra- vs inter-class cosine similarity and (b) the cosine
//! silhouette score.

use crate::vector::cosine;

/// Intra/inter-class cosine similarity summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationReport {
    /// Mean cosine similarity between samples and their own class center.
    pub intra: f64,
    /// Mean cosine similarity between samples and the nearest *other* class
    /// center.
    pub inter: f64,
    /// `intra − inter`; larger is better separated.
    pub gap: f64,
}

/// Measures how well `centers[c]` represents the samples labelled `c`.
///
/// `samples` pairs each vector with its class id; classes without a center
/// (id ≥ `centers.len()`) are skipped.
///
/// Returns `None` if no sample matched a center or fewer than two centers
/// exist (inter-class distance undefined).
pub fn center_separation(
    samples: &[(usize, Vec<f32>)],
    centers: &[Vec<f32>],
) -> Option<SeparationReport> {
    if centers.len() < 2 {
        return None;
    }
    let mut intra_sum = 0.0f64;
    let mut inter_sum = 0.0f64;
    let mut n = 0u64;
    for (class, v) in samples {
        if *class >= centers.len() {
            continue;
        }
        let own = cosine(v, &centers[*class]) as f64;
        let best_other = centers
            .iter()
            .enumerate()
            .filter(|(i, _)| i != class)
            .map(|(_, c)| cosine(v, c) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        intra_sum += own;
        inter_sum += best_other;
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let intra = intra_sum / n as f64;
    let inter = inter_sum / n as f64;
    Some(SeparationReport {
        intra,
        inter,
        gap: intra - inter,
    })
}

/// Cosine-distance silhouette score in [-1, 1]; larger means tighter,
/// better-separated clusters.
///
/// Uses the standard definition with cosine distance `1 − cos`. Singleton
/// clusters contribute silhouette 0 (scikit-learn convention). Returns
/// `None` for fewer than two distinct labels.
pub fn silhouette_cosine(samples: &[(usize, Vec<f32>)]) -> Option<f64> {
    let n = samples.len();
    let labels: std::collections::BTreeSet<usize> = samples.iter().map(|(c, _)| *c).collect();
    if labels.len() < 2 || n < 2 {
        return None;
    }

    // Pairwise distances, O(n²) — Fig. 2 uses a few hundred samples.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = 1.0 - cosine(&samples[i].1, &samples[j].1) as f64;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut total = 0.0f64;
    for i in 0..n {
        let own = samples[i].0;
        let own_size = samples.iter().filter(|(c, _)| *c == own).count();
        if own_size <= 1 {
            continue; // silhouette 0 for singletons
        }
        // a(i): mean distance to own cluster (excluding self).
        let a: f64 = samples
            .iter()
            .enumerate()
            .filter(|(j, (c, _))| *c == own && *j != i)
            .map(|(j, _)| dist[i * n + j])
            .sum::<f64>()
            / (own_size - 1) as f64;
        // b(i): min over other clusters of mean distance.
        let mut b = f64::INFINITY;
        for &other in labels.iter().filter(|&&c| c != own) {
            let members: Vec<usize> = samples
                .iter()
                .enumerate()
                .filter(|(_, (c, _))| *c == other)
                .map(|(j, _)| j)
                .collect();
            let mean = members.iter().map(|&j| dist[i * n + j]).sum::<f64>() / members.len() as f64;
            b = b.min(mean);
        }
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Some(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<(usize, Vec<f32>)> {
        let mut out = Vec::new();
        for k in 0..10 {
            let eps = 0.01 * k as f32;
            out.push((0, vec![1.0, eps, 0.0]));
            out.push((1, vec![eps, 0.0, 1.0]));
        }
        out
    }

    #[test]
    fn well_separated_blobs_have_high_silhouette() {
        let s = silhouette_cosine(&two_blobs()).unwrap();
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn mixed_blob_has_low_silhouette() {
        // Same points, but each label now contains points from both blobs:
        // pair k gets label (k % 2) for both of its members.
        let mut samples = two_blobs();
        for (i, (c, _)) in samples.iter_mut().enumerate() {
            *c = (i / 2) % 2;
        }
        let s = silhouette_cosine(&samples).unwrap();
        assert!(s < 0.2, "silhouette {s}");
    }

    #[test]
    fn single_label_is_undefined() {
        let samples = vec![(0, vec![1.0, 0.0]), (0, vec![0.9, 0.1])];
        assert_eq!(silhouette_cosine(&samples), None);
        assert!(center_separation(&samples, &[vec![1.0, 0.0]]).is_none());
    }

    #[test]
    fn separation_improves_with_better_centers() {
        let samples = two_blobs();
        let good = vec![vec![1.0, 0.05, 0.0], vec![0.05, 0.0, 1.0]];
        let bad = vec![vec![0.7, 0.0, 0.7], vec![0.7, 0.0, 0.7]];
        let g = center_separation(&samples, &good).unwrap();
        let b = center_separation(&samples, &bad).unwrap();
        assert!(g.gap > b.gap);
        assert!(g.intra > 0.99);
    }
}
