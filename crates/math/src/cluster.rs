//! Cluster-quality metrics over labelled vector sets.
//!
//! Quantitative replacement for the paper's Fig. 2 t-SNE evidence: after
//! global cache updates, per-class cached centers should sit closer to their
//! class's sample center than to any other class's samples. We measure this
//! with (a) mean intra- vs inter-class cosine similarity and (b) the cosine
//! silhouette score.

use crate::matrix::dot_unit;
use crate::store::VectorStore;
use crate::vector::{cosine, l2_normalize, l2_normalized};

/// Intra/inter-class cosine similarity summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationReport {
    /// Mean cosine similarity between samples and their own class center.
    pub intra: f64,
    /// Mean cosine similarity between samples and the nearest *other* class
    /// center.
    pub inter: f64,
    /// `intra − inter`; larger is better separated.
    pub gap: f64,
}

/// Measures how well `centers[c]` represents the samples labelled `c`.
///
/// `samples` pairs each vector with its class id; classes without a center
/// (id ≥ `centers.len()`) are skipped.
///
/// Returns `None` if no sample matched a center or fewer than two centers
/// exist (inter-class distance undefined).
pub fn center_separation(
    samples: &[(usize, Vec<f32>)],
    centers: &[Vec<f32>],
) -> Option<SeparationReport> {
    if centers.len() < 2 {
        return None;
    }
    // Normalize once into a contiguous store; cosine against any sample is
    // then one norm-free dot per center instead of three dots.
    let store =
        VectorStore::from_rows(&centers.iter().map(|c| l2_normalized(c)).collect::<Vec<_>>());
    let mut intra_sum = 0.0f64;
    let mut inter_sum = 0.0f64;
    let mut n = 0u64;
    for (class, v) in samples {
        if *class >= centers.len() {
            continue;
        }
        let vn = l2_normalized(v);
        let own = dot_unit(&vn, store.row(*class)) as f64;
        let best_other = store
            .iter_rows()
            .enumerate()
            .filter(|(i, _)| i != class)
            .map(|(_, c)| dot_unit(&vn, c) as f64)
            .fold(f64::NEG_INFINITY, f64::max);
        intra_sum += own;
        inter_sum += best_other;
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let intra = intra_sum / n as f64;
    let inter = inter_sum / n as f64;
    Some(SeparationReport {
        intra,
        inter,
        gap: intra - inter,
    })
}

/// Cosine-distance silhouette score in [-1, 1]; larger means tighter,
/// better-separated clusters.
///
/// Uses the standard definition with cosine distance `1 − cos`. Singleton
/// clusters contribute silhouette 0 (scikit-learn convention). Returns
/// `None` for fewer than two distinct labels.
pub fn silhouette_cosine(samples: &[(usize, Vec<f32>)]) -> Option<f64> {
    let n = samples.len();
    let labels: std::collections::BTreeSet<usize> = samples.iter().map(|(c, _)| *c).collect();
    if labels.len() < 2 || n < 2 {
        return None;
    }

    // Pairwise distances, O(n²) — Fig. 2 uses a few hundred samples.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = 1.0 - cosine(&samples[i].1, &samples[j].1) as f64;
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut total = 0.0f64;
    for i in 0..n {
        let own = samples[i].0;
        let own_size = samples.iter().filter(|(c, _)| *c == own).count();
        if own_size <= 1 {
            continue; // silhouette 0 for singletons
        }
        // a(i): mean distance to own cluster (excluding self).
        let a: f64 = samples
            .iter()
            .enumerate()
            .filter(|(j, (c, _))| *c == own && *j != i)
            .map(|(j, _)| dist[i * n + j])
            .sum::<f64>()
            / (own_size - 1) as f64;
        // b(i): min over other clusters of mean distance.
        let mut b = f64::INFINITY;
        for &other in labels.iter().filter(|&&c| c != own) {
            let members: Vec<usize> = samples
                .iter()
                .enumerate()
                .filter(|(_, (c, _))| *c == other)
                .map(|(j, _)| j)
                .collect();
            let mean = members.iter().map(|&j| dist[i * n + j]).sum::<f64>() / members.len() as f64;
            b = b.min(mean);
        }
        let s = if a.max(b) > 0.0 {
            (b - a) / a.max(b)
        } else {
            0.0
        };
        total += s;
    }
    Some(total / n as f64)
}

/// Result of [`kmeans_unit`].
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Unit-norm cluster centers, one store row per cluster.
    pub centers: VectorStore,
    /// `assignment[i]` — the center row sample `i` belongs to.
    pub assignment: Vec<usize>,
    /// Lloyd iterations executed before convergence (or the cap).
    pub iterations: usize,
}

/// Deterministic spherical k-means over unit-normalized samples.
///
/// Initialization is farthest-point (sample 0 seeds the first center, each
/// next center is the sample least similar to its nearest chosen center,
/// earliest index on ties), the E-step is the fused
/// [`VectorStore::assign_nearest`] scan, and the M-step renormalizes each
/// cluster's mean. A cluster that loses all members keeps its previous
/// center. Fully deterministic: same samples, same result, run to run.
///
/// # Panics
/// Panics if `samples` is empty, `k` is 0, or lengths are ragged.
pub fn kmeans_unit(samples: &[Vec<f32>], k: usize, max_iters: usize) -> KmeansResult {
    assert!(!samples.is_empty(), "kmeans_unit: empty input");
    assert!(k > 0, "kmeans_unit: k must be positive");
    let dim = samples[0].len();
    let normed: Vec<Vec<f32>> = samples
        .iter()
        .map(|s| {
            assert_eq!(s.len(), dim, "kmeans_unit: ragged input");
            l2_normalized(s)
        })
        .collect();
    let k = k.min(normed.len());

    // Farthest-point init over the sample set.
    let mut centers = VectorStore::new(dim);
    centers.push_row(&normed[0]);
    // nearest_sim[i] — similarity of sample i to its closest chosen center.
    let mut nearest_sim: Vec<f32> = normed.iter().map(|s| dot_unit(s, centers.row(0))).collect();
    while centers.rows() < k {
        let (far, _) = nearest_sim
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .expect("non-empty samples");
        let row = centers.push_row(&normed[far]);
        for (s, ns) in normed.iter().zip(nearest_sim.iter_mut()) {
            *ns = ns.max(dot_unit(s, centers.row(row)));
        }
    }

    let mut assignment = vec![usize::MAX; normed.len()];
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        // E-step: fused nearest-center scan per sample.
        let mut changed = false;
        for (i, s) in normed.iter().enumerate() {
            let (best, _) = centers.assign_nearest(s).expect("k > 0 centers");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // M-step: renormalized cluster means; empty clusters keep their
        // previous center.
        let mut sums = vec![vec![0.0f32; dim]; centers.rows()];
        let mut counts = vec![0usize; centers.rows()];
        for (s, &a) in normed.iter().zip(&assignment) {
            crate::vector::axpy(1.0, s, &mut sums[a]);
            counts[a] += 1;
        }
        for (c, (mut sum, count)) in sums.into_iter().zip(counts).enumerate() {
            if count > 0 && l2_normalize(&mut sum) > f32::MIN_POSITIVE {
                centers.set_row(c, &sum);
            }
        }
    }
    KmeansResult {
        centers,
        assignment,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<(usize, Vec<f32>)> {
        let mut out = Vec::new();
        for k in 0..10 {
            let eps = 0.01 * k as f32;
            out.push((0, vec![1.0, eps, 0.0]));
            out.push((1, vec![eps, 0.0, 1.0]));
        }
        out
    }

    #[test]
    fn well_separated_blobs_have_high_silhouette() {
        let s = silhouette_cosine(&two_blobs()).unwrap();
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn mixed_blob_has_low_silhouette() {
        // Same points, but each label now contains points from both blobs:
        // pair k gets label (k % 2) for both of its members.
        let mut samples = two_blobs();
        for (i, (c, _)) in samples.iter_mut().enumerate() {
            *c = (i / 2) % 2;
        }
        let s = silhouette_cosine(&samples).unwrap();
        assert!(s < 0.2, "silhouette {s}");
    }

    #[test]
    fn single_label_is_undefined() {
        let samples = vec![(0, vec![1.0, 0.0]), (0, vec![0.9, 0.1])];
        assert_eq!(silhouette_cosine(&samples), None);
        assert!(center_separation(&samples, &[vec![1.0, 0.0]]).is_none());
    }

    #[test]
    fn kmeans_recovers_two_blobs() {
        let samples: Vec<Vec<f32>> = two_blobs().into_iter().map(|(_, v)| v).collect();
        let r = kmeans_unit(&samples, 2, 50);
        assert_eq!(r.centers.rows(), 2);
        // Alternating blob membership must land in alternating clusters.
        let a = r.assignment[0];
        let b = r.assignment[1];
        assert_ne!(a, b);
        for (i, &c) in r.assignment.iter().enumerate() {
            assert_eq!(c, if i % 2 == 0 { a } else { b }, "sample {i}");
        }
        // Centers are unit-norm.
        for c in r.centers.iter_rows() {
            assert!((crate::l2_norm(c) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn kmeans_is_deterministic() {
        let samples: Vec<Vec<f32>> = two_blobs().into_iter().map(|(_, v)| v).collect();
        let a = kmeans_unit(&samples, 3, 20);
        let b = kmeans_unit(&samples, 3, 20);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.centers, b.centers);
        // k larger than the sample count degrades gracefully.
        let tiny = kmeans_unit(&samples[..2], 10, 5);
        assert_eq!(tiny.centers.rows(), 2);
    }

    #[test]
    fn separation_improves_with_better_centers() {
        let samples = two_blobs();
        let good = vec![vec![1.0, 0.05, 0.0], vec![0.05, 0.0, 1.0]];
        let bad = vec![vec![0.7, 0.0, 0.7], vec![0.7, 0.0, 0.7]];
        let g = center_separation(&samples, &good).unwrap();
        let b = center_separation(&samples, &bad).unwrap();
        assert!(g.gap > b.gap);
        assert!(g.intra > 0.99);
    }
}
