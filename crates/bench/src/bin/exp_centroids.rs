//! Centroid-quality experiment: re-derive hot-spot centers from collected
//! samples with deterministic spherical k-means (`coca_math::cluster::
//! kmeans_unit`) and compare their class separation against the
//! shared-dataset seeded centers (a Fig. 2-style quantitative check).
//!
//! Setup: samples are drawn from one client's drifted stream at a mid
//! cache layer — exactly the vectors the collection rules would absorb.
//! The seeded global table's centers come from clean shared-dataset
//! samples, so they miss the client's context drift; k-means over the
//! client's own samples recovers drift-aligned centers. We report
//! `center_separation` (mean intra-class vs nearest-other-class cosine)
//! before/after, plus the sample silhouette.
//!
//! Writes `results/centroids.json`.

use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_data::DatasetSpec;
use coca_math::cluster::{center_separation, kmeans_unit, silhouette_cosine};
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::{ClientFeatureView, ModelId};
use serde_json::json;

const LAYER: usize = 18;
const CLASSES: usize = 20;
const PER_CLASS: usize = 30;
const KMEANS_ITERS: usize = 60;

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(CLASSES));
    sc.seed = 14_001;
    sc.num_clients = 4;
    sc.drift_mag = 0.45; // pronounced context drift, as in multi-camera sites

    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let seeded = seed_global_table(rt, scenario.seeds());

    // Collected samples: per-class draws from client 0's drifted stream.
    let client = scenario.profiles[0].clone();
    let mut view = ClientFeatureView::new();
    let mut stream = scenario.stream(0);
    let mut samples: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut counts = [0usize; CLASSES];
    while counts.iter().any(|&c| c < PER_CLASS) {
        let f = stream.next_frame();
        if counts[f.class] < PER_CLASS {
            counts[f.class] += 1;
            samples.push((f.class, rt.semantic_vector(&f, &client, LAYER, &mut view)));
        }
    }

    // Before: the shared-dataset seeded centers at this layer.
    let seeded_centers: Vec<Vec<f32>> = (0..CLASSES)
        .map(|c| seeded.get(c, LAYER).expect("seeded entry").to_vec())
        .collect();

    // After: spherical k-means over the collected samples, one cluster
    // per class; each cluster is assigned to the majority class of its
    // members (unmatched classes keep their seeded center so the
    // comparison stays per-class complete).
    let vectors: Vec<Vec<f32>> = samples.iter().map(|(_, v)| v.clone()).collect();
    let km = kmeans_unit(&vectors, CLASSES, KMEANS_ITERS);
    let mut votes = vec![vec![0usize; CLASSES]; km.centers.rows()];
    for ((class, _), &cluster) in samples.iter().zip(&km.assignment) {
        votes[cluster][*class] += 1;
    }
    let mut derived = seeded_centers.clone();
    let mut matched = 0usize;
    for (cluster, tally) in votes.iter().enumerate() {
        let (class, &n) = tally
            .iter()
            .enumerate()
            .max_by_key(|&(c, &n)| (n, std::cmp::Reverse(c)))
            .expect("non-empty tally");
        if n > 0 {
            derived[class] = km.centers.row(cluster).to_vec();
            matched += 1;
        }
    }

    let sep_seeded = center_separation(&samples, &seeded_centers).expect("defined");
    let sep_derived = center_separation(&samples, &derived).expect("defined");
    let silhouette = silhouette_cosine(&samples).expect("multi-class");

    let mut out = Table::new(
        "exp_centroids — seeded vs k-means re-derived hot-spot centers (layer 18)",
        &["Centers", "intra cos", "inter cos", "gap"],
    );
    out.row(&[
        "Seeded (shared dataset)".into(),
        fmt_f(sep_seeded.intra, 4),
        fmt_f(sep_seeded.inter, 4),
        fmt_f(sep_seeded.gap, 4),
    ]);
    out.row(&[
        "k-means (collected samples)".into(),
        fmt_f(sep_derived.intra, 4),
        fmt_f(sep_derived.inter, 4),
        fmt_f(sep_derived.gap, 4),
    ]);
    print!("{}", out.render());
    println!(
        "k-means: {} iterations, {matched}/{CLASSES} clusters matched to classes; \
         sample silhouette {silhouette:.3}",
        km.iterations
    );
    println!(
        "(re-derived centers align with the drifted samples: intra-class cosine rises \
         {:.4} -> {:.4} — the collected samples carry the client's context drift the \
         shared-dataset seeds cannot see. The inter column rises too: every drifted \
         sample shares the client's context direction, which k-means centers absorb — \
         the same common-mode shift exp_fig2 shows for GCU-evolved centers.)",
        sep_seeded.intra, sep_derived.intra
    );
    assert!(
        sep_derived.intra > sep_seeded.intra,
        "re-derived centers must align with the drifted samples better \
         ({} vs {})",
        sep_derived.intra,
        sep_seeded.intra
    );

    let mut record = ExperimentRecord::new(
        "centroids",
        "hot-spot center re-derivation via deterministic spherical k-means",
    );
    record
        .param("layer", LAYER)
        .param("classes", CLASSES)
        .param("samples_per_class", PER_CLASS)
        .param("kmeans_iterations", km.iterations)
        .param("clusters_matched", matched)
        .param("silhouette", silhouette);
    for (name, sep) in [("seeded", &sep_seeded), ("kmeans", &sep_derived)] {
        record.push_row(&[
            ("centers", json!(name)),
            ("intra", json!(sep.intra)),
            ("inter", json!(sep.inter)),
            ("gap", json!(sep.gap)),
        ]);
    }
    save_record(&record);
}
