//! Table I: latency and accuracy vs. number of hot-spot classes.
//!
//! ResNet101 on 100-class subsets of UCF101 and ImageNet-100, a fixed
//! high-benefit layer set, and the hot-spot class count swept over the
//! paper's grid {0, 10, 30, 50, 70, 90} (0 = no cache). Hot classes are
//! the most popular ones under the stream's class distribution.

use coca_baselines::replacement::fixed_high_benefit_layers;
use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::{profile_hit_ratios, seed_global_table};
use coca_core::{infer_with_cache, CocaConfig, LookupScratch};
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::{ClientFeatureView, ModelId};
use serde_json::json;

fn run_dataset(dataset: DatasetSpec, seed: u64) -> Vec<(usize, f64, f64)> {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, dataset);
    sc.seed = seed;
    sc.num_clients = 1;
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let profile = profile_hit_ratios(rt, &cfg, &table, scenario.seeds());
    let saved: Vec<f64> = (0..rt.num_cache_points())
        .map(|j| rt.saved_if_hit_at(j).as_millis_f64())
        .collect();
    let bytes: Vec<usize> = (0..rt.num_cache_points())
        .map(|j| rt.entry_bytes(j))
        .collect();
    let layers = fixed_high_benefit_layers(&profile, &saved, &bytes, 5);
    let client = scenario.profiles[0].clone();
    let frames = 4000usize;

    [0usize, 10, 30, 50, 70, 90]
        .iter()
        .map(|&k| {
            let classes: Vec<usize> = (0..k.min(rt.num_classes())).collect();
            let cache = table.extract(&layers, &classes);
            let mut stream = scenario.stream(0);
            let mut view = ClientFeatureView::new();
            let mut scratch = LookupScratch::new();
            let mut lat = 0.0;
            let mut correct = 0u64;
            for _ in 0..frames {
                let f = stream.next_frame();
                let r = infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
                lat += r.latency.as_millis_f64();
                correct += r.correct as u64;
            }
            (
                k,
                lat / frames as f64,
                correct as f64 / frames as f64 * 100.0,
            )
        })
        .collect()
}

fn main() {
    let ucf = run_dataset(DatasetSpec::ucf101().subset(100), 11_003);
    let imagenet = run_dataset(DatasetSpec::imagenet100(), 11_004);

    let mut out = Table::new(
        "Table I — ResNet101: hot-spot class count vs latency/accuracy",
        &[
            "Hot classes",
            "UCF Lat.(ms)",
            "UCF Acc.(%)",
            "IN Lat.(ms)",
            "IN Acc.(%)",
        ],
    );
    let mut record = ExperimentRecord::new("table1", "hot-spot class sweep");
    record.param("model", "resnet101");
    for (u, i) in ucf.iter().zip(&imagenet) {
        out.row(&[
            u.0.to_string(),
            fmt_f(u.1, 2),
            fmt_f(u.2, 2),
            fmt_f(i.1, 2),
            fmt_f(i.2, 2),
        ]);
        record.push_row(&[
            ("hot_classes", json!(u.0)),
            ("ucf_latency_ms", json!(u.1)),
            ("ucf_accuracy_pct", json!(u.2)),
            ("imagenet_latency_ms", json!(i.1)),
            ("imagenet_accuracy_pct", json!(i.2)),
        ]);
    }
    print!("{}", out.render());
    println!(
        "(paper: small hot sets crush accuracy, ~50 classes reaches the no-cache accuracy, \
         latency keeps growing with more classes)"
    );
    save_record(&record);
}
