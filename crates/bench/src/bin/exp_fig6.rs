//! Fig. 6: impact of the collection thresholds Γ and Δ.
//!
//! ResNet101 on UCF101-100. For each threshold the engine reports the
//! absorption ratio (samples collected / eligible samples) and the
//! accuracy of the absorbed samples, for both collection rules.
//!
//! Threshold grids are rescaled to this reproduction's D-score / margin
//! distributions (see EXPERIMENTS.md); the paper's qualitative claim —
//! absorption falls and absorbed-sample accuracy rises with stricter
//! thresholds — is what this experiment checks.

use coca_bench::harness::{run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(100));
    sc.seed = 11_008;
    sc.num_clients = 4;
    let spec = RunSpec {
        rounds: 5,
        frames: 300,
    };
    let mut record = ExperimentRecord::new("fig6", "collection thresholds Γ and Δ");
    record.param("dataset", "ucf101-100").param("clients", 4);

    let mut out = Table::new(
        "Fig. 6(a) — rule-1 threshold Γ (reinforcement)",
        &["Γ", "Absorption (%)", "Absorbed acc. (%)"],
    );
    for gamma in [0.005f32, 0.010, 0.015, 0.020, 0.030, 0.045, 0.065] {
        let mut coca = CocaConfig::for_model(ModelId::ResNet101);
        coca.gamma_collect = gamma;
        let (_, report) = run_coca_engine(&sc, coca, spec);
        let ratio = report.absorb.reinforce_ratio() * 100.0;
        let acc = report.absorb.reinforce_accuracy().map(|a| a * 100.0);
        out.row(&[
            format!("{gamma:.3}"),
            fmt_f(ratio, 2),
            acc.map(|a| fmt_f(a, 2)).unwrap_or_else(|| "-".into()),
        ]);
        record.push_row(&[
            ("rule", json!("reinforce")),
            ("threshold", json!(gamma)),
            ("absorption_pct", json!(ratio)),
            ("absorbed_accuracy_pct", json!(acc)),
        ]);
    }
    print!("{}", out.render());

    let mut out = Table::new(
        "Fig. 6(b) — rule-2 threshold Δ (expansion)",
        &["Δ", "Absorption (%)", "Absorbed acc. (%)"],
    );
    for delta in [0.05f32, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35] {
        let mut coca = CocaConfig::for_model(ModelId::ResNet101);
        coca.delta_collect = delta;
        let (_, report) = run_coca_engine(&sc, coca, spec);
        let ratio = report.absorb.expand_ratio() * 100.0;
        let acc = report.absorb.expand_accuracy().map(|a| a * 100.0);
        out.row(&[
            format!("{delta:.2}"),
            fmt_f(ratio, 2),
            acc.map(|a| fmt_f(a, 2)).unwrap_or_else(|| "-".into()),
        ]);
        record.push_row(&[
            ("rule", json!("expand")),
            ("threshold", json!(delta)),
            ("absorption_pct", json!(ratio)),
            ("absorbed_accuracy_pct", json!(acc)),
        ]);
    }
    print!("{}", out.render());
    println!("(paper: absorption ratio falls and absorbed accuracy rises as thresholds grow)");
    save_record(&record);
}
