//! Table II: latency under SLO accuracy-loss constraints.
//!
//! VGG16_BN and ResNet152 on UCF101-100; all five methods under the < 3 %
//! and < 5 % accuracy-loss configurations (the paper's per-SLO Θ values).

use coca_bench::harness::{run_all_methods, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let spec = RunSpec::standard();
    let mut record = ExperimentRecord::new("table2", "latency under SLO constraints");
    record.param("dataset", "ucf101-100").param("clients", 6);

    for model in [ModelId::Vgg16Bn, ModelId::ResNet152] {
        let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(100));
        sc.seed = 11_010 + model.name().len() as u64;
        sc.num_clients = 6;

        let slo3 = run_all_methods(&sc, CocaConfig::for_model(model), spec);
        let slo5 = run_all_methods(&sc, CocaConfig::for_model_slo5(model), spec);

        let mut out = Table::new(
            format!("Table II — {} on UCF101-100", model.name()),
            &[
                "Method",
                "<3% Lat.(ms)",
                "<3% Acc.(%)",
                "<5% Lat.(ms)",
                "<5% Acc.(%)",
            ],
        );
        for (a, b) in slo3.iter().zip(&slo5) {
            out.row(&[
                a.name.clone(),
                fmt_f(a.mean_latency_ms, 2),
                fmt_f(a.accuracy_pct, 2),
                fmt_f(b.mean_latency_ms, 2),
                fmt_f(b.accuracy_pct, 2),
            ]);
            record.push_row(&[
                ("model", json!(model.name())),
                ("method", json!(a.name)),
                ("slo3_latency_ms", json!(a.mean_latency_ms)),
                ("slo3_accuracy_pct", json!(a.accuracy_pct)),
                ("slo5_latency_ms", json!(b.mean_latency_ms)),
                ("slo5_accuracy_pct", json!(b.accuracy_pct)),
            ]);
        }
        print!("{}", out.render());
        let edge = slo3[0].mean_latency_ms;
        let coca = slo3[4].mean_latency_ms;
        println!(
            "CoCa latency reduction vs Edge-Only (<3% SLO): {:.1}%\n",
            (1.0 - coca / edge) * 100.0
        );
    }
    println!("(paper: CoCa lowest latency in every column; reductions 23.0%—45.2%)");
    save_record(&record);
}
