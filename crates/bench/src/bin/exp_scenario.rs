//! Generic dynamic-scenario runner: loads a JSON [`ScenarioSpec`] and
//! runs **all six methods** (Edge-Only, LearnedCache, FoggyCache, SMTM,
//! Replacement-LRU, CoCa) over it through the shared harness, reporting
//! overall and windowed (per-interval) metrics.
//!
//! ```sh
//! cargo run --release -p coca-bench --bin exp_scenario -- results/specs/churn.json
//! # or sweep every spec in a directory (parallel, rendered in name order):
//! cargo run --release -p coca-bench --bin exp_scenario -- results/specs
//! ```
//!
//! Passing a **directory** runs every `*.json` spec in it through
//! [`parallel_sweep`] — each spec is an isolated, scenario-seeded job, so
//! the sweep is bit-identical to running the specs one by one — and then
//! renders the per-spec tables sequentially in filename order.
//!
//! Each record is saved as `results/scenario_<stem>.json`. See the
//! README's "Dynamic scenarios" section for the JSON format.

use coca_bench::harness::parallel_sweep;
use coca_bench::scenario_exp::{compute_spec_reports, render_spec_experiment};
use coca_core::spec::ScenarioSpec;
use coca_core::CocaConfig;

/// Loads and parses one spec file, exiting with a diagnostic on failure.
fn load_spec(path: &str) -> ScenarioSpec {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exp_scenario: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_scenario: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn stem_of(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "spec".into())
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: exp_scenario <spec.json | spec-directory>");
            eprintln!("  (curated specs land in results/specs/ via exp_churn / exp_drift)");
            std::process::exit(2);
        }
    };

    // Resolve the argument to the spec files it names.
    let files: Vec<String> = if std::path::Path::new(&path).is_dir() {
        let mut found: Vec<String> = match std::fs::read_dir(&path) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .map(|p| p.to_string_lossy().into_owned())
                .collect(),
            Err(e) => {
                eprintln!("exp_scenario: cannot read directory {path}: {e}");
                std::process::exit(1);
            }
        };
        found.sort();
        if found.is_empty() {
            eprintln!("exp_scenario: no *.json specs in {path}");
            std::process::exit(1);
        }
        found
    } else {
        vec![path]
    };

    let jobs: Vec<(String, ScenarioSpec)> =
        files.iter().map(|f| (stem_of(f), load_spec(f))).collect();
    if jobs.len() > 1 {
        println!("sweeping {} specs in parallel...", jobs.len());
    }

    // Compute in parallel (each job is an isolated scenario-seeded run),
    // render sequentially so the per-spec tables never interleave.
    let results = parallel_sweep(jobs, |(stem, spec)| {
        let coca = CocaConfig::for_model(spec.scenario.model);
        let reports = compute_spec_reports(&spec, coca);
        (stem, spec, reports)
    });
    for (stem, spec, reports) in &results {
        render_spec_experiment(
            &format!("scenario_{stem}"),
            &format!("Dynamic scenario — {stem}"),
            spec,
            reports,
        );
    }
}
