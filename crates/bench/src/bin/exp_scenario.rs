//! Generic dynamic-scenario runner: loads a JSON [`ScenarioSpec`] and
//! runs **all six methods** (Edge-Only, LearnedCache, FoggyCache, SMTM,
//! Replacement-LRU, CoCa) over it through the shared harness, reporting
//! overall and windowed (per-interval) metrics.
//!
//! ```sh
//! cargo run --release -p coca-bench --bin exp_scenario -- results/specs/churn.json
//! ```
//!
//! The record is saved as `results/scenario_<stem>.json`. See the README's
//! "Dynamic scenarios" section for the JSON format.

use coca_bench::scenario_exp::run_spec_experiment;
use coca_core::spec::ScenarioSpec;
use coca_core::CocaConfig;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: exp_scenario <spec.json>");
            eprintln!("  (curated specs land in results/specs/ via exp_churn / exp_drift)");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("exp_scenario: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_scenario: {path}: {e}");
            std::process::exit(1);
        }
    };
    let stem = std::path::Path::new(&path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "spec".into());
    let coca = CocaConfig::for_model(spec.scenario.model);
    run_spec_experiment(
        &format!("scenario_{stem}"),
        &format!("Dynamic scenario — {path}"),
        &spec,
        coca,
    );
}
