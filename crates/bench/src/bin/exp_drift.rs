//! Curated dynamics experiment: **popularity drift**.
//!
//! A static 6-client fleet on a long-tail (ρ = 90) 50-class workload whose
//! hot head *moves* under the cache: the whole fleet's popularity rotates
//! twice mid-run, and one client additionally re-draws its personal
//! distribution (a context change only it experiences). Windowed hit
//! ratios show the dips at each shift and how fast each method's
//! adaptation (CoCa's per-round re-allocation, SMTM's local hot-spot
//! refresh, FoggyCache's LRU turnover) recovers.
//!
//! The spec is also written to `results/specs/drift.json`, replayable via
//! `exp_scenario`.

use coca_bench::scenario_exp::{run_spec_experiment, save_spec};
use coca_core::engine::ScenarioConfig;
use coca_core::spec::{PopularityShift, ScenarioSpec};
use coca_core::CocaConfig;
use coca_data::distribution::long_tail_weights;
use coca_data::DatasetSpec;
use coca_model::ModelId;

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 12_002;
    sc.global_popularity = long_tail_weights(50, 90.0);

    // 6 rounds x 250 frames = 1500 frames per client: rotate the global
    // long-tail head a third of the way through and again at two thirds;
    // client 0 additionally re-draws its personal popularity mid-run.
    let spec = ScenarioSpec::new(sc, 6, 250)
        .popularity_shift(None, 500, PopularityShift::Rotate(17))
        .popularity_shift(None, 1000, PopularityShift::Rotate(17))
        .popularity_shift(Some(0), 750, PopularityShift::Permute(7));

    save_spec("drift", &spec);
    run_spec_experiment(
        "drift",
        "Dynamics — popularity drift (rotating long-tail head + per-client re-draw)",
        &spec,
        CocaConfig::for_model(model),
    );
}
