//! Fleet-scale server-core experiment: per-round server time of the
//! columnar data plane at 8 / 32 / 128 clients.
//!
//! Every round the edge server (a) merges one upload per client into the
//! global cache table (Eq. 4/5) and (b) answers one cache request per
//! client (ACA + personalized sub-table extraction). This binary builds a
//! real model runtime (ResNet101 on UCF101-50), seeds the server exactly
//! as the engine does, synthesizes one round of per-client uploads with
//! real per-layer feature dimensions, and wall-clocks the two server
//! phases as the fleet grows — sequentially (`handle_update` per upload)
//! and through the batched per-layer pass (`handle_updates_batch`), which
//! is proptest-pinned bit-identical to the sequential order.
//!
//! Writes `results/fleet.json`.

use std::time::Instant;

use coca_bench::output::save_record;
use coca_core::collect::UpdateTable;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::proto::{CacheRequest, UpdateUpload};
use coca_core::{CocaConfig, CocaServer};
use coca_data::DatasetSpec;
use coca_math::random_unit;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use coca_sim::SeedTree;
use rand::Rng;

const FLEETS: [usize; 3] = [8, 32, 128];
/// Fraction of classes a client's round touches (matches the long-tail
/// hot sets the engine produces).
const TOUCH_EVERY: usize = 3;
/// Wall-clock repetitions per measurement (min taken).
const REPS: usize = 5;

/// One round of synthetic uploads with real per-layer dimensions.
fn build_uploads(
    rt: &coca_model::ModelRuntime,
    fleet: usize,
    seeds: &SeedTree,
) -> Vec<UpdateUpload> {
    let classes = rt.num_classes();
    let layers = rt.num_cache_points();
    (0..fleet)
        .map(|k| {
            let mut rng = seeds.child_idx("upload", k as u64).rng();
            let mut table = UpdateTable::new();
            for c in 0..classes {
                if (c + k) % TOUCH_EVERY == 0 {
                    // A client's collected cells concentrate on a spread
                    // of layers (rule-2 expansions touch all of them).
                    for l in (0..layers).step_by(3) {
                        let v = random_unit(&mut rng, rt.feature_dim(l));
                        table.absorb(c, l, &v, 0.95);
                    }
                }
            }
            let frequency: Vec<u64> = (0..classes).map(|_| rng.gen_range(1u64..30)).collect();
            UpdateUpload {
                client_id: k as u64,
                round: 0,
                table,
                frequency,
            }
        })
        .collect()
}

fn min_wallclock_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.seed = 13_001;
    sc.num_clients = 1; // the scenario only provides the runtime here
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let coca = CocaConfig::for_model(model);

    let mut out = Table::new(
        "exp_fleet — per-round server time of the columnar data plane",
        &[
            "Clients",
            "Cells/round",
            "Merge seq (ms)",
            "Merge batched (ms)",
            "Requests (ms)",
            "Round total (ms)",
            "us/client",
        ],
    );
    let mut record = ExperimentRecord::new(
        "fleet",
        "per-round server merge + allocation wall-clock vs fleet size (columnar core)",
    );
    record
        .param("model", format!("{model:?}"))
        .param("classes", rt.num_classes())
        .param("layers", rt.num_cache_points())
        .param("reps", REPS);

    for fleet in FLEETS {
        let seeds = SeedTree::new(13_100 + fleet as u64);
        let mut server_seq = CocaServer::new(rt, coca, scenario.seeds());
        let mut server_bat = CocaServer::new(rt, coca, scenario.seeds());
        let uploads = build_uploads(rt, fleet, &seeds);
        let cells: usize = uploads.iter().map(|u| u.table.len()).sum();

        // (a) merge phase — sequential vs batched per-layer pass.
        let seq_ms = min_wallclock_ms(REPS, || {
            for up in &uploads {
                let _ = server_seq.handle_update(up);
            }
        });
        let mut batch = uploads.clone();
        let bat_ms = min_wallclock_ms(REPS, || {
            let _ = server_bat.handle_updates_batch(&mut batch);
        });

        // (b) allocation phase — one ACA + extraction per client.
        let requests: Vec<CacheRequest> = (0..fleet)
            .map(|k| CacheRequest {
                client_id: k as u64,
                round: 1,
                timestamps: vec![(k % 7) as u32 * 40; rt.num_classes()],
                hit_ratio: server_seq.base_hit_profile().to_vec(),
                budget_bytes: (rt.arch().full_cache_bytes(rt.num_classes()) / 8) as u64,
            })
            .collect();
        let req_ms = min_wallclock_ms(REPS, || {
            for req in &requests {
                let _ = std::hint::black_box(server_seq.handle_request(req));
            }
        });

        let round_ms = bat_ms + req_ms;
        let per_client_us = round_ms * 1e3 / fleet as f64;
        out.row(&[
            fleet.to_string(),
            cells.to_string(),
            fmt_f(seq_ms, 2),
            fmt_f(bat_ms, 2),
            fmt_f(req_ms, 2),
            fmt_f(round_ms, 2),
            fmt_f(per_client_us, 1),
        ]);
        record.push_row(&[
            ("clients", serde_json::json!(fleet)),
            ("cells_per_round", serde_json::json!(cells)),
            ("merge_sequential_ms", serde_json::json!(seq_ms)),
            ("merge_batched_ms", serde_json::json!(bat_ms)),
            ("requests_ms", serde_json::json!(req_ms)),
            ("round_total_ms", serde_json::json!(round_ms)),
            ("us_per_client", serde_json::json!(per_client_us)),
        ]);
    }
    print!("{}", out.render());
    println!(
        "(batched merge is bit-identical to sequential client-id order — \
         proptested in tests/proptest_global.rs)"
    );
    save_record(&record);
}
