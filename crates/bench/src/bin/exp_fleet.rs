//! Fleet-scale server-core experiment: per-round server time at 8 / 32 /
//! 128 clients, across upload-pipeline merge modes and merge-shard widths.
//!
//! Every round the edge server (a) merges one upload per client into the
//! global cache table (Eq. 4/5) and (b) answers one cache request per
//! client (ACA + personalized sub-table extraction). This binary builds a
//! real model runtime (ResNet101 on UCF101-50), seeds the server exactly
//! as the engine does, synthesizes one round of per-client uploads with
//! real per-layer feature dimensions, and wall-clocks the merge phase
//! through every server pipeline the engine can run:
//!
//! * `seed` — the pre-columnar reference (boxed rows, hash-order scatter,
//!   per-upload), from [`coca_bench::seed_ref`];
//! * `per_upload` — the columnar default: one `merge_update` per arrival;
//! * `queue_and_flush` — enqueue the round, drain through the per-layer
//!   batched pass at the flush boundary (`handle_upload` +
//!   `flush_pending`, the actual engine pipeline), serial and
//!   rayon-sharded at 1/2/4 workers.
//!
//! All columnar pipelines are bit-identical to one another (proptest-
//! pinned); only wall-clock differs. The headline `improvement` column is
//! each pipeline's speedup over the seed reference — the number the
//! engine actually gains now that `merge_mode = QueueAndFlush` runs the
//! batched pass end-to-end. Writes `results/fleet.json`.
//!
//! A second sweep scales the **virtual-time engine itself**: a degenerate
//! constant-compute method (no real inference, tiny protocol messages)
//! drives `drive_plan` at 128 → 1 000 000 members, measuring wall-clock
//! per processed event (frames + scheduled request/deliver/upload events)
//! and the process peak RSS. This isolates exactly the machinery the
//! timer-wheel scheduler, the compact 16-byte `ClientState` and the
//! streaming metrics mode exist for. Env knobs (CI smoke):
//!
//! * `COCA_FLEET_QUICK=1` — cap the engine sweep at 100 000 members;
//! * `COCA_FLEET_ENFORCE=1` — fail if per-event cost at 100 000 members
//!   exceeds 2x the 128-member cost, or peak RSS exceeds the ceiling;
//! * `COCA_FLEET_RSS_CEILING_MB` — peak-RSS ceiling (default 4096).

use std::time::Instant;

use coca_bench::output::save_record;
use coca_bench::seed_ref::{SeedTable, SeedUpload};
use coca_core::collect::UpdateTable;
use coca_core::driver::{
    drive_plan, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::proto::{CacheRequest, UpdateUpload};
use coca_core::{CocaConfig, CocaServer, MergeMode};
use coca_data::{DatasetSpec, Frame};
use coca_math::random_unit;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use coca_net::WireSize;
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

const FLEETS: [usize; 3] = [8, 32, 128];
/// Fraction of classes a client's round touches (matches the long-tail
/// hot sets the engine produces).
const TOUCH_EVERY: usize = 3;
/// Wall-clock repetitions per measurement (min taken).
const REPS: usize = 5;
/// Shard widths for the `parallel_merge` sweep. On a single-core host
/// widths beyond 1 only measure spawn overhead; on a multi-core edge
/// box they are where the layer sharding pays.
const THREADS: [usize; 3] = [1, 2, 4];

/// One round of synthetic uploads with real per-layer dimensions, in
/// both the columnar and the seed (boxed map) shapes.
fn build_uploads(
    rt: &coca_model::ModelRuntime,
    fleet: usize,
    seeds: &SeedTree,
) -> Vec<(UpdateUpload, SeedUpload)> {
    let classes = rt.num_classes();
    let layers = rt.num_cache_points();
    (0..fleet)
        .map(|k| {
            let mut rng = seeds.child_idx("upload", k as u64).rng();
            let mut table = UpdateTable::new();
            let mut boxed = SeedUpload::new();
            for c in 0..classes {
                if (c + k) % TOUCH_EVERY == 0 {
                    // A client's collected cells concentrate on a spread
                    // of layers (rule-2 expansions touch all of them).
                    for l in (0..layers).step_by(3) {
                        let v = random_unit(&mut rng, rt.feature_dim(l));
                        table.absorb(c, l, &v, 0.95);
                        boxed.insert((c as u32, l as u32), table.get(c, l).unwrap().to_vec());
                    }
                }
            }
            let frequency: Vec<u64> = (0..classes).map(|_| rng.gen_range(1u64..30)).collect();
            (
                UpdateUpload {
                    client_id: k as u64,
                    round: 0,
                    table,
                    frequency,
                    precision: coca_math::Precision::F32,
                },
                boxed,
            )
        })
        .collect()
}

fn min_wallclock_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Process peak RSS (VmHWM) in MB, from `/proc/self/status`. A high-water
/// mark: monotone over the process lifetime, so rows report the peak *up
/// to and including* their run. Returns 0 where procfs is unavailable.
fn peak_rss_mb() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Fixed-size protocol message for the engine-scale sweep: big enough to
/// exercise the link-pricing path, small enough that transfer time never
/// dominates scheduling.
#[derive(Debug, Clone, Copy)]
struct Blip;

impl WireSize for Blip {
    fn wire_bytes(&self) -> usize {
        96
    }
}

/// A degenerate method: constant per-frame compute, tiny request/upload
/// round-trips, no cache and no real inference. Everything `drive_plan`
/// spends on it is engine machinery — stream generation, digest folding,
/// timer-wheel scheduling, FIFO pricing, recorders — which is precisely
/// what the fleet sweep measures.
struct FleetNullDriver {
    requests: u64,
    installs: u64,
    uploads: u64,
}

impl MethodDriver for FleetNullDriver {
    type Request = Blip;
    type Alloc = Blip;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = Blip;

    fn name(&self) -> &str {
        "fleet-null"
    }

    fn cache_request(&mut self, _k: usize) -> Option<Blip> {
        self.requests += 1;
        Some(Blip)
    }

    fn serve_request(&mut self, _k: usize, _req: Blip) -> (Blip, SimDuration) {
        (Blip, SimDuration::from_micros(2))
    }

    fn install(&mut self, _k: usize, _alloc: Blip) {
        self.installs += 1;
    }

    fn process_frame(&mut self, _k: usize, _frame: &Frame) -> FrameStep<NoMsg> {
        FrameStep::Done(FrameOutcome {
            compute: SimDuration::from_micros(10),
            correct: true,
            hit_point: None,
        })
    }

    fn end_round(&mut self, _k: usize) -> Option<Blip> {
        Some(Blip)
    }

    fn serve_upload(&mut self, _k: usize, _upload: Blip) -> SimDuration {
        SimDuration::from_micros(2)
    }
}

/// Rounds and frames per member for the engine-scale sweep: enough work
/// per member to amortize boot, small enough that a million-member fleet
/// finishes in seconds.
const ENGINE_ROUNDS: usize = 2;
const ENGINE_FRAMES: usize = 8;

/// One engine-scale measurement: runs the degenerate method over a
/// `members`-sized fleet and returns (events, wall_ms, per_event_ns).
/// Small fleets repeat until enough events accumulate for a stable
/// per-event figure; the minimum over repetitions is reported.
fn measure_engine_fleet(members: usize) -> (u64, f64, f64) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.seed = 13_200;
    sc.num_clients = members;
    let scenario = Scenario::build(sc);
    let mut plan = DrivePlan::from_config(
        &DriveConfig::new(ENGINE_ROUNDS, ENGINE_FRAMES),
        scenario.config().num_clients,
    );
    // Fleet-scale metrics: one aggregate summary + the mergeable
    // histogram instead of O(members) recorders.
    plan.metrics = coca_core::driver::MetricsConfig {
        per_client: false,
        per_client_windowed: false,
        latency_histogram: true,
    };

    // Repeat small fleets until the run is long enough to time reliably;
    // a 128-member run is microseconds, a million-member run is seconds.
    let target_events = 400_000u64;
    let approx_events = (members * ENGINE_ROUNDS * (ENGINE_FRAMES + 3)) as u64;
    let reps = (target_events / approx_events.max(1)).clamp(1, 64);

    let mut best_ns = f64::INFINITY;
    let mut events = 0u64;
    let mut wall_ms = 0.0f64;
    for _ in 0..reps {
        let mut driver = FleetNullDriver {
            requests: 0,
            installs: 0,
            uploads: 0,
        };
        let t = Instant::now();
        let report = drive_plan(&scenario, &mut driver, &plan);
        let elapsed = t.elapsed();
        let ev = report.frames + driver.requests + driver.installs + driver.uploads;
        let ns = elapsed.as_nanos() as f64 / ev.max(1) as f64;
        if ns < best_ns {
            best_ns = ns;
            events = ev;
            wall_ms = elapsed.as_secs_f64() * 1e3;
        }
        assert_eq!(
            report.frames,
            (members * ENGINE_ROUNDS * ENGINE_FRAMES) as u64,
            "every member must process its full frame budget"
        );
    }
    (events, wall_ms, best_ns)
}

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.seed = 13_001;
    sc.num_clients = 1; // the scenario only provides the runtime here
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let coca = CocaConfig::for_model(model);

    let mut out = Table::new(
        "exp_fleet — per-round server merge wall-clock by upload pipeline",
        &[
            "Clients",
            "Pipeline",
            "Threads",
            "Merge (ms)",
            "vs seed",
            "Requests (ms)",
            "Round total (ms)",
            "us/client",
        ],
    );
    let mut record = ExperimentRecord::new(
        "fleet",
        "per-round server merge + allocation wall-clock vs fleet size, \
         across merge modes and shard widths (columnar core vs the seed \
         boxed-row reference)",
    );
    record
        .param("model", format!("{model:?}"))
        .param("classes", rt.num_classes())
        .param("layers", rt.num_cache_points())
        .param("reps", REPS)
        .param("threads_swept", serde_json::json!(THREADS.to_vec()));

    let mut headline_improvement = 0.0f64;
    for fleet in FLEETS {
        let seeds = SeedTree::new(13_100 + fleet as u64);
        let uploads = build_uploads(rt, fleet, &seeds);
        let cells: usize = uploads.iter().map(|(u, _)| u.table.len()).sum();

        // (b) allocation phase — one ACA + extraction per client —
        // measured once (identical across merge pipelines; requests are
        // the flush boundary, not part of the merge).
        let mut server_req = CocaServer::new(rt, coca, scenario.seeds());
        let requests: Vec<CacheRequest> = (0..fleet)
            .map(|k| CacheRequest {
                client_id: k as u64,
                round: 1,
                timestamps: vec![(k % 7) as u32 * 40; rt.num_classes()],
                hit_ratio: server_req.base_hit_profile().to_vec(),
                budget_bytes: (rt.arch().full_cache_bytes(rt.num_classes()) / 8) as u64,
            })
            .collect();
        let req_ms = min_wallclock_ms(REPS, || {
            for req in &requests {
                let _ = std::hint::black_box(server_req.handle_request(req));
            }
        });

        // (a) merge phase, one row per pipeline.
        let mut rows: Vec<(&str, usize, f64)> = Vec::new();

        // Seed reference: boxed rows, hash-order per-upload merge.
        let mut seed_table = SeedTable::new(rt.num_classes(), rt.num_cache_points());
        {
            // Seed the reference to the same steady state the live
            // server starts from (fill + frequency prior).
            let live = CocaServer::new(rt, coca, scenario.seeds());
            for c in 0..rt.num_classes() {
                for l in 0..rt.num_cache_points() {
                    if let Some(v) = live.global().get(c, l) {
                        seed_table.set(c, l, v.to_vec());
                    }
                }
            }
            seed_table
                .frequency
                .copy_from_slice(live.global().frequency());
        }
        let seed_ms = min_wallclock_ms(REPS, || {
            for (up, boxed) in &uploads {
                seed_table.merge_update(boxed, &up.frequency, coca.gamma_global);
            }
        });
        rows.push(("seed", 0, seed_ms));

        // Columnar per-upload (the engine's default pipeline).
        let mut server_seq = CocaServer::new(rt, coca, scenario.seeds());
        let per_upload_ms = min_wallclock_ms(REPS, || {
            for (up, _) in &uploads {
                let _ = server_seq.handle_update(up);
            }
        });
        rows.push(("per_upload", 0, per_upload_ms));

        // Queue-and-flush through the real engine pipeline: enqueue the
        // round, drain at the flush boundary — serial, then sharded.
        for (i, &threads) in [0usize].iter().chain(THREADS.iter()).enumerate() {
            let sharded = i > 0;
            let cfg = coca
                .with_merge_mode(MergeMode::QueueAndFlush)
                .with_parallel_merge(sharded);
            let mut server = CocaServer::new(rt, cfg, scenario.seeds());
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads.max(1))
                .build()
                .expect("shim pool build is infallible");
            // Clone the round's uploads outside the timed section (the
            // engine moves uploads in, it never clones them).
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let round: Vec<UpdateUpload> = uploads.iter().map(|(u, _)| u.clone()).collect();
                let t = Instant::now();
                pool.install(|| {
                    for up in round {
                        let _ = server.handle_upload(up);
                    }
                    server.flush_pending();
                });
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            let ms = best;
            rows.push((
                if sharded {
                    "queue_and_flush+parallel"
                } else {
                    "queue_and_flush"
                },
                threads,
                ms,
            ));
        }

        for (pipeline, threads, merge_ms) in rows {
            let improvement = seed_ms / merge_ms.max(1e-9);
            let round_ms = merge_ms + req_ms;
            let per_client_us = round_ms * 1e3 / fleet as f64;
            if fleet == 128 && pipeline == "queue_and_flush+parallel" {
                headline_improvement = headline_improvement.max(improvement);
            }
            out.row(&[
                fleet.to_string(),
                pipeline.to_string(),
                if threads == 0 {
                    "-".into()
                } else {
                    threads.to_string()
                },
                fmt_f(merge_ms, 2),
                format!("{improvement:.2}x"),
                fmt_f(req_ms, 2),
                fmt_f(round_ms, 2),
                fmt_f(per_client_us, 1),
            ]);
            record.push_row(&[
                ("clients", serde_json::json!(fleet)),
                ("cells_per_round", serde_json::json!(cells)),
                ("pipeline", serde_json::json!(pipeline)),
                ("threads", serde_json::json!(threads)),
                ("merge_ms", serde_json::json!(merge_ms)),
                ("improvement_vs_seed", serde_json::json!(improvement)),
                ("requests_ms", serde_json::json!(req_ms)),
                ("round_total_ms", serde_json::json!(round_ms)),
                ("us_per_client", serde_json::json!(per_client_us)),
            ]);
        }
    }
    print!("{}", out.render());
    println!(
        "(all columnar pipelines are bit-identical — proptested in \
         tests/proptest_global.rs and tests/proptest_merge_modes.rs; \
         improvement is wall-clock over the seed boxed-row reference)"
    );
    println!(
        "headline: queue-and-flush + parallel merge at 128 clients improves \
         per-round server merge wall-clock {headline_improvement:.2}x over the \
         seed per-upload server"
    );

    // ---- Engine-scale sweep: drive_plan itself at fleet sizes the paper
    // only gestures at. Wall-clock per event and peak RSS are the two
    // numbers that decide whether a million-member fleet is simulable.
    let quick = std::env::var("COCA_FLEET_QUICK").as_deref() == Ok("1");
    let enforce = std::env::var("COCA_FLEET_ENFORCE").as_deref() == Ok("1");
    let rss_ceiling_mb: f64 = std::env::var("COCA_FLEET_RSS_CEILING_MB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4096.0);
    let engine_fleets: &[usize] = if quick {
        &[128, 1_024, 10_000, 100_000]
    } else {
        &[128, 1_024, 10_000, 100_000, 1_000_000]
    };
    record
        .param("engine_rounds", ENGINE_ROUNDS)
        .param("engine_frames_per_round", ENGINE_FRAMES)
        .param("engine_quick", quick);

    let mut engine_table = Table::new(
        "exp_fleet — virtual-time engine scaling (degenerate method, pure engine overhead)",
        &[
            "Members",
            "Events",
            "Wall (ms)",
            "ns/event",
            "Peak RSS (MB)",
        ],
    );
    let mut per_event_at: Vec<(usize, f64)> = Vec::new();
    for &members in engine_fleets {
        let (events, wall_ms, per_event_ns) = measure_engine_fleet(members);
        let rss_mb = peak_rss_mb();
        engine_table.row(&[
            members.to_string(),
            events.to_string(),
            fmt_f(wall_ms, 1),
            fmt_f(per_event_ns, 0),
            fmt_f(rss_mb, 0),
        ]);
        record.push_row(&[
            ("clients", serde_json::json!(members)),
            ("pipeline", serde_json::json!("engine")),
            ("events", serde_json::json!(events)),
            ("wall_ms", serde_json::json!(wall_ms)),
            ("per_event_ns", serde_json::json!(per_event_ns)),
            ("peak_rss_mb", serde_json::json!(rss_mb)),
        ]);
        per_event_at.push((members, per_event_ns));
    }
    print!("{}", engine_table.render());
    println!(
        "(per-event = frames + scheduled request/deliver/upload events; \
         peak RSS is the process VmHWM high-water mark, monotone across rows)"
    );

    let base = per_event_at
        .iter()
        .find(|(m, _)| *m == 128)
        .map(|&(_, ns)| ns)
        .unwrap_or(f64::INFINITY);
    if let Some(&(_, at_100k)) = per_event_at.iter().find(|(m, _)| *m == 100_000) {
        let ratio = at_100k / base.max(1e-9);
        println!(
            "engine headline: per-event cost at 100k members is {ratio:.2}x the \
             128-member cost (gate: <= 2x)"
        );
        if enforce {
            assert!(
                ratio <= 2.0,
                "per-event cost at 100k members regressed: {at_100k:.0} ns vs \
                 {base:.0} ns at 128 ({ratio:.2}x > 2x)"
            );
            let rss = peak_rss_mb();
            assert!(
                rss <= rss_ceiling_mb,
                "peak RSS {rss:.0} MB exceeds the {rss_ceiling_mb:.0} MB ceiling"
            );
        }
    }

    save_record(&record);
}
