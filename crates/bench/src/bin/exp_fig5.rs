//! Fig. 5: impact of the hit threshold Θ.
//!
//! Sweeps Θ for VGG16_BN and ResNet101 on UCF101-100 and reports cache hit
//! ratio, hit accuracy, overall accuracy and mean latency. The paper's Θ
//! grids are used verbatim — the reproduction's D-score scale was
//! calibrated so those operating points are meaningful.

use coca_bench::harness::{run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, HitRecorder, Table};
use coca_model::ModelId;
use serde_json::json;

fn sweep(model: ModelId, thetas: &[f32], seed: u64, record: &mut ExperimentRecord) {
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(100));
    sc.seed = seed;
    sc.num_clients = 4;
    let spec = RunSpec {
        rounds: 5,
        frames: 300,
    };
    let mut out = Table::new(
        format!("Fig. 5 — {} on UCF101-100: threshold Θ sweep", model.name()),
        &[
            "Θ",
            "Hit ratio (%)",
            "Hit acc. (%)",
            "Total acc. (%)",
            "Lat. (ms)",
        ],
    );
    for &theta in thetas {
        let coca = CocaConfig::for_model(model).with_theta(theta);
        let (_, report) = run_coca_engine(&sc, coca, spec);
        let mut hits = HitRecorder::new(0);
        for s in &report.per_client {
            hits.merge(&s.hits);
        }
        let hit_acc = hits.hit_accuracy().map(|a| a * 100.0).unwrap_or(0.0);
        out.row(&[
            format!("{theta:.3}"),
            fmt_f(report.hit_ratio * 100.0, 1),
            fmt_f(hit_acc, 1),
            fmt_f(report.accuracy_pct, 2),
            fmt_f(report.mean_latency_ms, 2),
        ]);
        record.push_row(&[
            ("model", json!(model.name())),
            ("theta", json!(theta)),
            ("hit_ratio_pct", json!(report.hit_ratio * 100.0)),
            ("hit_accuracy_pct", json!(hit_acc)),
            ("accuracy_pct", json!(report.accuracy_pct)),
            ("latency_ms", json!(report.mean_latency_ms)),
        ]);
    }
    print!("{}", out.render());
}

fn main() {
    let mut record = ExperimentRecord::new("fig5", "threshold Θ sweep");
    record.param("dataset", "ucf101-100").param("clients", 4);
    sweep(
        ModelId::Vgg16Bn,
        &[0.027, 0.031, 0.035, 0.039, 0.043],
        11_006,
        &mut record,
    );
    sweep(
        ModelId::ResNet101,
        &[0.008, 0.010, 0.012, 0.014, 0.016],
        11_007,
        &mut record,
    );
    println!("(paper: raising Θ lowers the hit ratio and raises hit/total accuracy and latency)");
    save_record(&record);
}
