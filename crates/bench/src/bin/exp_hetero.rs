//! Curated dynamics experiment: **heterogeneous device speeds**.
//!
//! Real fleets are not uniform: a flagship phone streams several times
//! the frames of a battery-throttled sensor in the same wall-clock
//! round. `DeviceSpeed` events give members their own per-round frame
//! budget — here two slow devices process 60 frames per round and one
//! mid-tier device 120 against a 200-frame base fleet, plus a slow
//! joiner arriving mid-run. All six methods run over the identical
//! `ScenarioSpec`; the comparison shows how collaborative caching copes
//! when contribution volume is skewed — slow devices ride on the fast
//! devices' uploads, and the frequency-weighted merge (Eq. 4) keeps the
//! fast devices' classes from monopolizing the table.
//!
//! The spec is also written to `results/specs/hetero.json`, replayable
//! via `exp_scenario`.

use coca_bench::scenario_exp::{run_spec_experiment, save_spec};
use coca_core::engine::ScenarioConfig;
use coca_core::spec::ScenarioSpec;
use coca_core::CocaConfig;
use coca_data::distribution::long_tail_weights;
use coca_data::DatasetSpec;
use coca_model::ModelId;

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 12_003;
    sc.global_popularity = long_tail_weights(50, 90.0);

    // 4 rounds x 200 frames base; devices 1 and 4 are battery-throttled
    // (60 frames/round), device 5 is mid-tier (120), and a slow joiner
    // arrives at 40 s.
    let spec = ScenarioSpec::new(sc, 4, 200)
        .device_speed(Some(1), 60)
        .device_speed(Some(4), 60)
        .device_speed(Some(5), 120)
        .join(40_000.0, 2)
        .device_speed(Some(6), 60);

    save_spec("hetero", &spec);
    run_spec_experiment(
        "hetero",
        "Dynamics — heterogeneous device speeds (per-member frame budgets)",
        &spec,
        CocaConfig::for_model(model),
    );
}
