//! Fig. 8: ACA vs classical cache-replacement policies.
//!
//! Long-tail (ρ = 90) UCF101-100 on ResNet101. LRU/FIFO/RAND manage class
//! entries on a fixed set of four high-benefit layers with `cache_size`
//! entries per layer; ACA runs with the same total memory budget. An
//! ACA-without-deflation series covers the DESIGN.md §7 ablation.

use coca_baselines::replacement::{fixed_high_benefit_layers, run_replacement, ReplacementPolicy};
use coca_bench::harness::{parallel_sweep, run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::{profile_hit_ratios, seed_global_table};
use coca_core::CocaConfig;
use coca_data::distribution::long_tail_weights;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

const NUM_LAYERS: usize = 4;

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(100));
    sc.seed = 11_016;
    sc.num_clients = 4;
    sc.global_popularity = long_tail_weights(100, 90.0);
    let spec = RunSpec {
        rounds: 5,
        frames: 300,
    };

    // The fixed layer set (for byte-budget parity with ACA).
    let probe = Scenario::build(sc.clone());
    let cfg0 = CocaConfig::for_model(model);
    let table = seed_global_table(&probe.rt, probe.seeds());
    let profile = profile_hit_ratios(&probe.rt, &cfg0, &table, probe.seeds());
    let saved: Vec<f64> = (0..probe.rt.num_cache_points())
        .map(|j| probe.rt.saved_if_hit_at(j).as_millis_f64())
        .collect();
    let bytes: Vec<usize> = (0..probe.rt.num_cache_points())
        .map(|j| probe.rt.entry_bytes(j))
        .collect();
    let layers = fixed_high_benefit_layers(&profile, &saved, &bytes, NUM_LAYERS);
    let bytes_per_entry_set: usize = layers.iter().map(|&j| bytes[j]).sum();

    let mut record = ExperimentRecord::new("fig8", "ACA vs LRU/FIFO/RAND");
    record
        .param("model", model.name())
        .param("dataset", "ucf101-100 long-tail rho=90")
        .param("fixed_layers", serde_json::to_value(&layers).unwrap());

    let sizes = [10usize, 30, 50, 70, 90];
    let mut out = Table::new(
        "Fig. 8 — latency (ms) vs cache size (entries per layer)",
        &["Method", "10", "30", "50", "70", "90"],
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["FIFO".into()],
        vec!["LRU".into()],
        vec!["RAND".into()],
        vec!["ACA".into()],
        vec!["ACA (no deflation)".into()],
    ];
    // The full (size × method) grid fans across cores; every job rebuilds
    // its scenario deterministically, so the sweep is order-stable.
    let mut jobs: Vec<(usize, usize)> = Vec::new(); // (row, size)
    for &size in &sizes {
        for row in 0..rows.len() {
            jobs.push((row, size));
        }
    }
    let results = parallel_sweep(jobs, |(row, size)| {
        let r = match row {
            0..=2 => {
                let policy = [
                    ReplacementPolicy::Fifo,
                    ReplacementPolicy::Lru,
                    ReplacementPolicy::Rand,
                ][row];
                let scenario = Scenario::build(sc.clone());
                run_replacement(
                    &scenario,
                    policy,
                    size,
                    NUM_LAYERS,
                    spec.rounds,
                    spec.frames,
                )
            }
            _ => {
                // ACA with the same total memory.
                let deflation = row == 3;
                let mut coca = CocaConfig::for_model(model).with_budget(bytes_per_entry_set * size);
                coca.aca_deflation = deflation;
                let (_, r) = run_coca_engine(&sc, coca, spec);
                coca_bench::harness::coca_method_report(
                    if deflation { "ACA" } else { "ACA-no-deflation" },
                    r,
                )
            }
        };
        (row, size, r)
    });
    for (row, size, r) in results {
        rows[row].push(format!(
            "{} ({}%)",
            fmt_f(r.mean_latency_ms, 2),
            fmt_f(r.accuracy_pct, 0)
        ));
        let mut cells = vec![
            ("method", json!(r.name)),
            ("cache_size", json!(size)),
            ("latency_ms", json!(r.mean_latency_ms)),
            ("accuracy_pct", json!(r.accuracy_pct)),
        ];
        if row >= 3 {
            // The memory-parity datum of the ACA arms: the byte budget
            // equivalent to `size` entries on the fixed layer set.
            cells.push(("budget_bytes", json!(bytes_per_entry_set * size)));
        }
        record.push_row(&cells);
    }
    for row in rows {
        out.row(&row);
    }
    print!("{}", out.render());
    println!(
        "cells are latency (accuracy). The paper compares under a 3% accuracy-loss\n\
         constraint: the replacement baselines below the Edge-Only accuracy band are\n\
         violating it (fast wrong exits), ACA holds it.\n\
         (paper: all methods improve with size; ACA clearly lowest beyond ~30 entries)"
    );
    save_record(&record);
}
