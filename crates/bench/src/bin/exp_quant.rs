//! Precision sweep: f32 vs f16 vs i8 wire/table representation.
//!
//! Runs the identical scenario under each `CocaConfig::precision` and
//! measures what quantization buys and what it costs:
//!
//! * **bytes** — per-round upload (`UpdateUpload::wire_bytes`) and
//!   allocation (`CacheAllocation::wire_bytes`) frame sizes from a direct
//!   client/server protocol loop, plus the server table footprint
//!   (`GlobalCacheTable::store_bytes`);
//! * **quality** — end-to-end hit ratio / accuracy / latency from a full
//!   engine run, plus the raw codec fidelity (mean cosine of the seeded
//!   global table's entries after `convert_precision` against f32).
//!
//! The i8 row is gated: its upload frames must come in at least 2× under
//! the f32 frames (the wire-reduction contract in `BENCH`/README).
//! Writes `results/quant.json`.

use coca_bench::output::save_record;
use coca_core::engine::{Engine, EngineConfig, Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::spec::ScenarioSpec;
use coca_core::{CocaClient, CocaConfig, CocaServer, LookupScratch};
use coca_data::DatasetSpec;
use coca_math::{cosine, Precision};
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use coca_net::WireSize;
use serde_json::json;

const CLIENTS: usize = 4;
const ROUNDS: usize = 4;
const FRAMES: usize = 200;

/// Byte totals from one direct protocol loop at the given precision.
struct WireCosts {
    upload_bytes: usize,
    alloc_bytes: usize,
    table_bytes: usize,
}

fn measure_wire(sc: &ScenarioConfig, cfg: CocaConfig) -> WireCosts {
    let scenario = Scenario::build(sc.clone());
    let rt = &scenario.rt;
    let mut server = CocaServer::new(rt, cfg, scenario.seeds());
    let mut clients: Vec<CocaClient> = (0..CLIENTS)
        .map(|k| {
            CocaClient::new(
                k as u64,
                cfg,
                rt,
                scenario.profiles[k].clone(),
                server.base_hit_profile().to_vec(),
            )
        })
        .collect();
    let mut streams: Vec<_> = (0..CLIENTS).map(|k| scenario.stream(k)).collect();
    let mut scratch = LookupScratch::new();
    let mut costs = WireCosts {
        upload_bytes: 0,
        alloc_bytes: 0,
        table_bytes: 0,
    };
    for _ in 0..ROUNDS {
        for (k, client) in clients.iter_mut().enumerate() {
            let req = client.cache_request();
            let (alloc, _) = server.handle_request(&req);
            costs.alloc_bytes += alloc.wire_bytes();
            client.install_cache(alloc.cache);
            for _ in 0..FRAMES {
                let frame = streams[k].next_frame();
                client.process_frame(rt, &frame, &mut scratch);
            }
            let upload = client.end_round();
            costs.upload_bytes += upload.wire_bytes();
            server.handle_update(&upload);
        }
    }
    costs.table_bytes = server.global().store_bytes();
    costs
}

/// Mean cosine of the seeded global table's entries after a round trip
/// through the codec — the raw fidelity of the representation, before any
/// protocol dynamics.
fn seed_codec_cosine(sc: &ScenarioConfig, precision: Precision) -> f64 {
    let scenario = Scenario::build(sc.clone());
    let reference = seed_global_table(&scenario.rt, scenario.seeds());
    let mut quantized = seed_global_table(&scenario.rt, scenario.seeds());
    quantized.convert_precision(precision);
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for c in 0..scenario.rt.num_classes() {
        for l in 0..scenario.rt.num_cache_points() {
            if let (Some(a), Some(b)) = (reference.get(c, l), quantized.get(c, l)) {
                sum += cosine(&a, &b) as f64;
                n += 1;
            }
        }
    }
    sum / n.max(1) as f64
}

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.num_clients = CLIENTS;
    sc.seed = 17_001;

    // The default budget (0) is "auto" for the engine; the direct wire
    // loop needs Π explicit — 1/8 of the full cache, the Fig. 1(a)
    // sweet spot.
    let budget = {
        let probe = Scenario::build(sc.clone());
        probe.rt.arch().full_cache_bytes(probe.rt.num_classes()) / 8
    };
    let base_cfg = CocaConfig::for_model(model)
        .with_round_frames(FRAMES)
        .with_budget(budget);

    let mut record = ExperimentRecord::new(
        "quant",
        "precision sweep — f32/f16/i8 wire frames and global-table storage",
    );
    record
        .param("model", model.name())
        .param("dataset", "ucf101-50")
        .param("clients", CLIENTS as u64)
        .param("rounds", ROUNDS as u64)
        .param("frames_per_round", FRAMES as u64)
        .param("seed", sc.seed);

    let mut out = Table::new(
        "Precision sweep — wire frames, table storage, end-to-end quality",
        &[
            "Precision",
            "Upload (KiB)",
            "Alloc (KiB)",
            "Table (KiB)",
            "Wire red.",
            "Hit ratio",
            "Acc.(%)",
            "Lat.(ms)",
            "Codec cos",
        ],
    );

    let mut f32_upload = 0usize;
    let mut f32_table = 0usize;
    let mut i8_wire_reduction = 0.0f64;
    for precision in [Precision::F32, Precision::F16, Precision::I8] {
        let cfg = base_cfg.with_precision(precision);
        let costs = measure_wire(&sc, cfg);
        let fidelity = seed_codec_cosine(&sc, precision);

        // End-to-end quality under the engine (virtual-time pricing,
        // identical frame schedule across precisions).
        let spec = ScenarioSpec::new(sc.clone(), ROUNDS, FRAMES);
        let (scenario, plan) = spec.materialize();
        let mut engine = Engine::new(scenario, EngineConfig::new(cfg));
        let report = engine.run_plan(&plan);

        if precision == Precision::F32 {
            f32_upload = costs.upload_bytes;
            f32_table = costs.table_bytes;
        }
        let wire_reduction = f32_upload as f64 / costs.upload_bytes.max(1) as f64;
        let store_reduction = f32_table as f64 / costs.table_bytes.max(1) as f64;
        if precision == Precision::I8 {
            i8_wire_reduction = wire_reduction;
        }

        out.row(&[
            precision.label().to_string(),
            fmt_f(costs.upload_bytes as f64 / 1024.0, 1),
            fmt_f(costs.alloc_bytes as f64 / 1024.0, 1),
            fmt_f(costs.table_bytes as f64 / 1024.0, 1),
            format!("{wire_reduction:.2}x"),
            fmt_f(report.hit_ratio, 4),
            fmt_f(report.accuracy_pct, 2),
            fmt_f(report.mean_latency_ms, 2),
            fmt_f(fidelity, 5),
        ]);
        record.push_row(&[
            ("precision", json!(precision.label())),
            ("upload_wire_bytes", json!(costs.upload_bytes)),
            ("alloc_wire_bytes", json!(costs.alloc_bytes)),
            ("table_store_bytes", json!(costs.table_bytes)),
            ("upload_reduction_vs_f32", json!(wire_reduction)),
            ("table_reduction_vs_f32", json!(store_reduction)),
            ("hit_ratio", json!(report.hit_ratio)),
            ("accuracy_pct", json!(report.accuracy_pct)),
            ("mean_latency_ms", json!(report.mean_latency_ms)),
            ("seed_codec_cosine", json!(fidelity)),
        ]);
    }
    print!("{}", out.render());
    println!(
        "i8 upload frames {:.2}x smaller than f32 (contract: >=2x)",
        i8_wire_reduction
    );
    assert!(
        i8_wire_reduction >= 2.0,
        "i8 upload wire reduction {i8_wire_reduction:.2}x fell below the 2x contract"
    );
    save_record(&record);
}
