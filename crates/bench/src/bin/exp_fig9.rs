//! Fig. 9: ablation of CoCa's two components.
//!
//! UCF101-50 across VGG16_BN / ResNet50 / ResNet101 / ResNet152, four
//! arms: Normal (neither), GCU only, DCA only, DCA+GCU.

use coca_bench::harness::{run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let spec = RunSpec::standard();
    let arms: [(&str, bool, bool); 4] = [
        ("Normal", false, false),
        ("GCU", false, true),
        ("DCA", true, false),
        ("DCA+GCU", true, true),
    ];
    let mut record = ExperimentRecord::new("fig9", "DCA/GCU ablation");
    record.param("dataset", "ucf101-50").param("clients", 6);

    let mut lat_table = Table::new(
        "Fig. 9(a) — ablation: latency (ms)",
        &["Model", "Normal", "GCU", "DCA", "DCA+GCU"],
    );
    let mut acc_table = Table::new(
        "Fig. 9(b) — ablation: accuracy (%)",
        &["Model", "Normal", "GCU", "DCA", "DCA+GCU"],
    );

    for model in [
        ModelId::Vgg16Bn,
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::ResNet152,
    ] {
        let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
        sc.seed = 11_018;
        sc.num_clients = 6;
        sc.drift_mag = 0.35;
        let mut lat_row = vec![model.name().to_string()];
        let mut acc_row = vec![model.name().to_string()];
        // Budget pressure: DCA's regime is "cannot cache every class at
        // useful layers" (the paper's full-width entries guarantee it; our
        // scaled entries need a tighter budget to reach the same regime).
        let budget = {
            let probe = Scenario::build(sc.clone());
            probe.rt.arch().full_cache_bytes(probe.rt.num_classes()) / 24
        };
        for (name, dca, gcu) in arms {
            let mut coca = CocaConfig::for_model(model).with_budget(budget);
            coca.enable_dca = dca;
            coca.enable_gcu = gcu;
            let (_, r) = run_coca_engine(&sc, coca, spec);
            lat_row.push(fmt_f(r.mean_latency_ms, 2));
            acc_row.push(fmt_f(r.accuracy_pct, 2));
            record.push_row(&[
                ("model", json!(model.name())),
                ("arm", json!(name)),
                ("latency_ms", json!(r.mean_latency_ms)),
                ("accuracy_pct", json!(r.accuracy_pct)),
                ("hit_ratio", json!(r.hit_ratio)),
            ]);
        }
        lat_table.row(&lat_row);
        acc_table.row(&acc_row);
    }
    print!("{}", lat_table.render());
    print!("{}", acc_table.render());
    println!(
        "(paper: DCA dominates latency reduction, GCU dominates accuracy retention, \
         DCA+GCU best overall)"
    );
    save_record(&record);
}
