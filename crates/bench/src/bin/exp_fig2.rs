//! Fig. 2: effect of global updates on cached semantic centers.
//!
//! 10 clients, ResNet101 on UCF101-20, layer 18 of 34. The paper shows a
//! t-SNE scatter; we substitute quantitative cluster metrics plus a 2-D
//! PCA projection (DESIGN.md §2): after global updates, cached centers
//! must sit closer to the clients' true (drifted) sample centers.

use coca_bench::output::save_record;
use coca_core::engine::{Engine, EngineConfig, Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_math::cluster::{center_separation, silhouette_cosine};
use coca_math::pca::Pca;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::{ClientFeatureView, ModelId};
use serde_json::json;

const LAYER: usize = 18;
const CLASSES: usize = 20;
const SAMPLE_CLASSES: usize = 4; // the paper plots four classes

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(CLASSES));
    sc.seed = 11_005;
    sc.num_clients = 10;
    sc.drift_mag = 0.45; // pronounced context drift, as in multi-camera sites

    // Initial cache (before global updates).
    let scenario = Scenario::build(sc.clone());
    let before = seed_global_table(&scenario.rt, scenario.seeds());

    // Run CoCa with global updates and take the evolved table.
    let coca = CocaConfig::for_model(ModelId::ResNet101);
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = 8;
    let mut engine = Engine::new(Scenario::build(sc.clone()), engine_cfg);
    let _ = engine.run();

    // Test samples: equal per-class draws from one client (paper §III.3).
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let client = scenario.profiles[0].clone();
    let mut view = ClientFeatureView::new();
    let mut samples: Vec<(usize, Vec<f32>)> = Vec::new();
    let mut stream = scenario.stream(0);
    let mut counts = [0usize; CLASSES];
    let per_class = 30usize;
    while counts.iter().take(SAMPLE_CLASSES).any(|&c| c < per_class) {
        let f = stream.next_frame();
        if f.class < SAMPLE_CLASSES && counts[f.class] < per_class {
            counts[f.class] += 1;
            samples.push((f.class, rt.semantic_vector(&f, &client, LAYER, &mut view)));
        }
    }

    let centers = |table: &coca_core::GlobalCacheTable| -> Vec<Vec<f32>> {
        (0..SAMPLE_CLASSES)
            .map(|c| table.get(c, LAYER).expect("seeded entry").to_vec())
            .collect()
    };
    let before_centers = centers(&before);
    let after_centers = centers(engine.server().global());

    let sep_before = center_separation(&samples, &before_centers).expect("defined");
    let sep_after = center_separation(&samples, &after_centers).expect("defined");
    let silhouette = silhouette_cosine(&samples).expect("multi-class");

    let mut out = Table::new(
        "Fig. 2 — cached centers vs client samples (layer 18, 4 classes)",
        &["Setting", "intra cos", "inter cos", "gap"],
    );
    out.row(&[
        "Previous (no global updates)".into(),
        fmt_f(sep_before.intra, 4),
        fmt_f(sep_before.inter, 4),
        fmt_f(sep_before.gap, 4),
    ]);
    out.row(&[
        "After (with global updates)".into(),
        fmt_f(sep_after.intra, 4),
        fmt_f(sep_after.inter, 4),
        fmt_f(sep_after.gap, 4),
    ]);
    print!("{}", out.render());
    println!("sample silhouette (cosine): {silhouette:.3}");
    println!(
        "(paper: after global updates the cached centers align with the class sample centers \
         — here: intra-class cosine rises {:.4} → {:.4})",
        sep_before.intra, sep_after.intra
    );

    // 2-D PCA projection data for plotting (the t-SNE substitute).
    let refs: Vec<&[f32]> = samples.iter().map(|(_, v)| v.as_slice()).collect();
    let pca = Pca::fit(&refs, 2, 40);
    let mut record = ExperimentRecord::new("fig2", "cluster alignment with global updates");
    record
        .param("layer", LAYER)
        .param("classes_plotted", SAMPLE_CLASSES)
        .param("intra_before", sep_before.intra)
        .param("intra_after", sep_after.intra)
        .param("gap_before", sep_before.gap)
        .param("gap_after", sep_after.gap)
        .param("silhouette", silhouette);
    for (class, v) in &samples {
        let p = pca.project(v);
        record.push_row(&[
            ("kind", json!("sample")),
            ("class", json!(class)),
            ("x", json!(p[0])),
            ("y", json!(p[1])),
        ]);
    }
    for (c, (b, a)) in before_centers.iter().zip(&after_centers).enumerate() {
        let pb = pca.project(b);
        let pa = pca.project(a);
        record.push_row(&[
            ("kind", json!("center_before")),
            ("class", json!(c)),
            ("x", json!(pb[0])),
            ("y", json!(pb[1])),
        ]);
        record.push_row(&[
            ("kind", json!("center_after")),
            ("class", json!(c)),
            ("x", json!(pa[0])),
            ("y", json!(pa[1])),
        ]);
    }
    save_record(&record);
}
