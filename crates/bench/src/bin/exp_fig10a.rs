//! Fig. 10(a): impact of the update cycle F.
//!
//! VGG16_BN on long-tail UCF101-100, F ∈ {150 … 900}. Total frames per
//! client are held constant so rows differ only in update cadence.

use coca_bench::harness::{parallel_sweep, run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::distribution::long_tail_weights;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let model = ModelId::Vgg16Bn;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(100));
    sc.seed = 11_020;
    sc.num_clients = 6;
    sc.global_popularity = long_tail_weights(100, 90.0);

    const TOTAL_FRAMES: usize = 1800;
    let mut out = Table::new(
        "Fig. 10(a) — VGG16_BN: update cycle F vs latency/accuracy",
        &["F", "Lat. (ms)", "Acc. (%)", "Resp. lat. (ms)"],
    );
    let mut record = ExperimentRecord::new("fig10a", "update cycle F sweep");
    record
        .param("model", model.name())
        .param("dataset", "ucf101-100 long-tail");

    // Each F value is an independent scenario run: fan across cores.
    let sweep = parallel_sweep(vec![150usize, 300, 450, 600, 750, 900], |f| {
        let coca = CocaConfig::for_model(model).with_round_frames(f);
        let spec = RunSpec {
            rounds: (TOTAL_FRAMES / f).max(2),
            frames: f,
        };
        (f, run_coca_engine(&sc, coca, spec).1)
    });
    for (f, r) in sweep {
        out.row(&[
            f.to_string(),
            fmt_f(r.mean_latency_ms, 2),
            fmt_f(r.accuracy_pct, 2),
            fmt_f(r.response_latency.mean_ms(), 2),
        ]);
        record.push_row(&[
            ("update_cycle", json!(f)),
            ("latency_ms", json!(r.mean_latency_ms)),
            ("accuracy_pct", json!(r.accuracy_pct)),
            ("response_latency_ms", json!(r.response_latency.mean_ms())),
        ]);
    }
    print!("{}", out.render());
    println!(
        "(paper: latency falls then stabilizes for F ≥ 300; accuracy declines slightly as \
         cache freshness drops)"
    );
    save_record(&record);
}
