//! Fig. 7: latency under different non-IID levels.
//!
//! ResNet101 on UCF101-100 and AST on ESC-50, all five methods, non-IID
//! levels p ∈ {0, 1, 2, 10} (p = 1/ε; 0 = IID).

use coca_bench::harness::{run_all_methods, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::partition::NonIidLevel;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn sweep(model: ModelId, dataset: DatasetSpec, seed: u64, record: &mut ExperimentRecord) {
    let levels = [0.0f64, 1.0, 2.0, 10.0];
    let spec = RunSpec {
        rounds: 5,
        frames: 300,
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (li, &p) in levels.iter().enumerate() {
        let mut sc = ScenarioConfig::new(model, dataset.clone());
        sc.seed = seed;
        sc.num_clients = 6;
        sc.non_iid = NonIidLevel(p);
        let reports = run_all_methods(&sc, CocaConfig::for_model(model), spec);
        for (mi, r) in reports.iter().enumerate() {
            if li == 0 {
                names.push(r.name.clone());
                rows.push(vec![r.name.clone()]);
            }
            rows[mi].push(fmt_f(r.mean_latency_ms, 2));
            record.push_row(&[
                ("model", json!(model.name())),
                ("dataset", json!(dataset.name)),
                ("non_iid_p", json!(p)),
                ("method", json!(r.name)),
                ("latency_ms", json!(r.mean_latency_ms)),
                ("accuracy_pct", json!(r.accuracy_pct)),
            ]);
        }
    }
    let mut out = Table::new(
        format!(
            "Fig. 7 — {} on {}: latency (ms) vs non-IID level p",
            model.name(),
            dataset.name
        ),
        &["Method", "p=0 (IID)", "p=1", "p=2", "p=10"],
    );
    for row in rows {
        out.row(&row);
    }
    print!("{}", out.render());
}

fn main() {
    let mut record = ExperimentRecord::new("fig7", "latency vs non-IID level");
    record.param("clients", 6);
    sweep(
        ModelId::ResNet101,
        DatasetSpec::ucf101().subset(100),
        11_012,
        &mut record,
    );
    sweep(ModelId::AstBase, DatasetSpec::esc50(), 11_013, &mut record);
    println!(
        "(paper: cache methods speed up as p grows — locality strengthens — and CoCa stays \
         lowest at every level)"
    );
    save_record(&record);
}
