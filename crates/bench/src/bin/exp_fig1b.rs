//! Fig. 1(b): per-cache-layer hit ratio and hit accuracy.
//!
//! ResNet101 on UCF101-50, all 34 preset layers active, all 50 classes
//! cached (shared-dataset-seeded entries).

use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::{infer_with_cache, CocaConfig, LookupScratch};
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, HitRecorder, Table};
use coca_model::{ClientFeatureView, ModelId};
use serde_json::json;

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.seed = 11_002;
    sc.num_clients = 1;
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let layers: Vec<usize> = (0..rt.num_cache_points()).collect();
    let classes: Vec<usize> = (0..50).collect();
    let cache = table.extract(&layers, &classes);
    let client = scenario.profiles[0].clone();
    let mut stream = scenario.stream(0);
    let mut view = ClientFeatureView::new();
    let mut scratch = LookupScratch::new();
    let mut hits = HitRecorder::new(rt.num_cache_points());

    let frames = 8000usize;
    for _ in 0..frames {
        let f = stream.next_frame();
        let r = infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
        match r.hit_point {
            Some(p) => hits.record_hit(p, r.correct),
            None => hits.record_miss(r.correct),
        }
    }

    let mut out = Table::new(
        "Fig. 1(b) — ResNet101 / UCF101-50: per-layer hit ratio & hit accuracy",
        &["Layer", "Hit ratio (%)", "Hit acc. (%)"],
    );
    let mut record = ExperimentRecord::new("fig1b", "per-layer hit ratio and accuracy");
    record
        .param("model", "resnet101")
        .param("dataset", "ucf101-50")
        .param("frames", frames);
    for j in 0..rt.num_cache_points() {
        let ratio = hits.layer_hit_ratio(j) * 100.0;
        let acc = hits.layer_hit_accuracy(j).map(|a| a * 100.0);
        out.row(&[
            j.to_string(),
            fmt_f(ratio, 2),
            acc.map(|a| fmt_f(a, 1)).unwrap_or_else(|| "-".into()),
        ]);
        record.push_row(&[
            ("layer", json!(j)),
            ("hit_ratio_pct", json!(ratio)),
            ("hit_accuracy_pct", json!(acc)),
        ]);
    }
    print!("{}", out.render());
    println!(
        "overall hit ratio {:.1}%  (paper: hit mass at shallow AND deep layers, lower hit \
         accuracy at the extremes)",
        hits.hit_ratio() * 100.0
    );
    save_record(&record);
}
