//! Daemon serving experiment: closed-loop latency (p50/p99/p999) and
//! throughput of `cocad`'s serve path over real loopback TCP, swept
//! across worker counts and lock disciplines.
//!
//! For each arm this binary starts the daemon **in-process** (the same
//! `coca_daemon::serve` loop the `cocad` binary runs) on an ephemeral
//! loopback port, drives it with the closed-loop multi-client load
//! generator (one thread per client, per-request wall-clock latency
//! into the exactly mergeable `LatencyHistogram`), and records:
//!
//! * `sharded` lock at 1 / 2 / 4 workers — the per-layer `RwLock`
//!   ingest path, the tentpole;
//! * `single` lock at 4 workers — the one-big-mutex comparison row:
//!   same worker pool, every operation serialized on one lock.
//!
//! A final sequential verify pass (one op in flight) pins the digest
//! contract: the daemon must land the exact in-process reference state.
//!
//! **All latency/throughput rows are wall-clock and host-dependent**
//! (like `fleet.json`'s `wall_ms`): they are measured on whatever
//! machine runs the binary — the reference container is 1-core, where
//! extra workers and sharded locks mostly measure scheduling overhead;
//! on a multi-core edge box the sharded rows are where the layer locks
//! pay. The digest fields are deterministic.
//!
//! Env knobs (CI smoke): `COCA_DAEMON_QUICK=1` shrinks the grid to
//! {1, 2} workers and fewer rounds; `COCA_DAEMON_ENFORCE=1` asserts
//! the verify pass matches and every op is served exactly once.

use std::net::TcpListener;

use coca_bench::output::save_record;
use coca_core::MergeMode;
use coca_daemon::{run_load, run_verify, serve, Arrival, LockMode, RunSpec, ServerCore, Workload};
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;

fn main() {
    let quick = std::env::var("COCA_DAEMON_QUICK").as_deref() == Ok("1");
    let enforce = std::env::var("COCA_DAEMON_ENFORCE").as_deref() == Ok("1");

    let spec = RunSpec {
        model: ModelId::ResNet101,
        classes: 30,
        seed: 4_600,
        merge_mode: MergeMode::QueueAndFlush,
        round_aligned: false,
        precision: coca_math::Precision::F32,
    };
    let wl = Workload {
        spec,
        clients: 8,
        rounds: if quick { 5 } else { 30 },
    };
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };

    let mut out = Table::new(
        "exp_daemon — closed-loop daemon latency/throughput over loopback TCP",
        &[
            "Lock",
            "Workers",
            "Ops",
            "Wall (s)",
            "ops/s",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "max (ms)",
        ],
    );
    let mut record = ExperimentRecord::new(
        "daemon",
        "cocad serve path over loopback TCP: closed-loop per-request \
         latency quantiles and throughput vs worker count, sharded-lock \
         ingest vs the single-mutex baseline; wall-clock rows are \
         host-dependent, digests are deterministic",
    );
    record
        .param("model", format!("{:?}", spec.model))
        .param("classes", spec.classes)
        .param("seed", spec.seed)
        .param("merge_mode", "queue_and_flush")
        .param("clients", wl.clients)
        .param("rounds", wl.rounds)
        .param("arrival", "closed_loop")
        .param("quick", quick)
        .param("wall_clock_host_dependent", true);

    let mut arms: Vec<(LockMode, usize)> = worker_counts
        .iter()
        .map(|&w| (LockMode::Sharded, w))
        .collect();
    // The comparison row: same pool width as the widest sharded arm,
    // one big mutex instead of per-layer locks.
    arms.push((LockMode::Single, *worker_counts.last().expect("non-empty")));

    for (lock, workers) in arms {
        let (rt, cfg, seeds) = spec.build();
        let core = ServerCore::new(&rt, cfg, &seeds, lock);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = serve(core, listener, workers).expect("daemon starts");
        let addr = handle.addr();
        let report = run_load(
            addr,
            &wl,
            Arrival::Closed {
                think: std::time::Duration::ZERO,
            },
        )
        .expect("closed-loop run");
        handle.shutdown();
        let daemon_report = handle.join();
        let served = daemon_report.requests + daemon_report.uploads;
        if enforce {
            assert_eq!(
                report.ops,
                wl.total_ops(),
                "load generator lost operations ({} workers, {})",
                workers,
                lock.name()
            );
            assert_eq!(
                served,
                wl.total_ops(),
                "daemon under/over-served ({} workers, {})",
                workers,
                lock.name()
            );
        }
        let (p50, p99, p999, max) = (
            report.hist.p50().unwrap_or(0.0),
            report.hist.p99().unwrap_or(0.0),
            report.hist.p999().unwrap_or(0.0),
            report.hist.max_ms().unwrap_or(0.0),
        );
        out.row(&[
            lock.name().to_string(),
            workers.to_string(),
            report.ops.to_string(),
            fmt_f(report.wall.as_secs_f64(), 2),
            fmt_f(report.throughput_ops_s(), 0),
            fmt_f(p50, 3),
            fmt_f(p99, 3),
            fmt_f(p999, 3),
            fmt_f(max, 3),
        ]);
        record.push_row(&[
            ("lock", serde_json::json!(lock.name())),
            ("workers", serde_json::json!(workers)),
            ("ops", serde_json::json!(report.ops)),
            ("ops_served", serde_json::json!(served)),
            ("wall_s", serde_json::json!(report.wall.as_secs_f64())),
            ("ops_per_s", serde_json::json!(report.throughput_ops_s())),
            ("p50_ms", serde_json::json!(p50)),
            ("p99_ms", serde_json::json!(p99)),
            ("p999_ms", serde_json::json!(p999)),
            ("max_ms", serde_json::json!(max)),
        ]);
    }
    print!("{}", out.render());
    println!(
        "(closed loop: one outstanding op per client; latency rows are \
         wall-clock and host-dependent — on the 1-core reference \
         container extra workers mostly measure scheduling overhead)"
    );

    // ---- Digest contract: a sequential pass over the wire must land
    // the exact in-process reference state, per lock mode.
    for lock in [LockMode::Sharded, LockMode::Single] {
        let (rt, cfg, seeds) = spec.build();
        let core = ServerCore::new(&rt, cfg, &seeds, lock);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let handle = serve(core, listener, 2).expect("daemon starts");
        let verify_wl = Workload {
            rounds: if quick { 2 } else { 4 },
            ..wl
        };
        let outcome = run_verify(handle.addr(), &verify_wl).expect("verify run");
        handle.shutdown();
        handle.join();
        println!(
            "verify ({}): {} sequential ops — daemon {:016x} vs reference {:016x} — {}",
            lock.name(),
            outcome.ops,
            outcome.daemon_digest,
            outcome.local_digest,
            if outcome.matches() {
                "MATCH"
            } else {
                "DIVERGED"
            }
        );
        record.push_row(&[
            ("lock", serde_json::json!(lock.name())),
            ("workers", serde_json::json!(2)),
            ("verify_ops", serde_json::json!(outcome.ops)),
            ("digest_match", serde_json::json!(outcome.matches())),
        ]);
        if enforce {
            assert!(
                outcome.matches(),
                "daemon digest diverged from the in-process reference ({})",
                lock.name()
            );
        }
    }

    save_record(&record);
}
