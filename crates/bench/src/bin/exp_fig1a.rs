//! Fig. 1(a): inference latency and accuracy vs. cache size.
//!
//! ResNet101 on UCF101-50, all 50 classes cached (to isolate the cache-size
//! effect from entry selection, as in the paper), cache size controlled by
//! activating evenly spaced subsets of the 34 preset layers. 100 % = all
//! layers (≈ the paper's 3.2 MB anchor).

use coca_bench::output::save_record;
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::{infer_with_cache, CocaConfig, LookupScratch};
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::{ClientFeatureView, ModelId};
use serde_json::json;

fn spaced_layers(total: usize, count: usize) -> Vec<usize> {
    if count == 0 {
        return Vec::new();
    }
    (0..count)
        .map(|i| (i * total) / count.max(1))
        .map(|j| j.min(total - 1))
        .collect()
}

fn main() {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.seed = 11_001;
    sc.num_clients = 1;
    let scenario = Scenario::build(sc);
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let client = scenario.profiles[0].clone();
    let full_bytes = rt.arch().full_cache_bytes(50);
    let all_classes: Vec<usize> = (0..50).collect();
    let frames = 5000usize;

    let mut out = Table::new(
        "Fig. 1(a) — ResNet101 / UCF101-50: latency & accuracy vs cache size",
        &["Cache size (%)", "Layers", "Bytes", "Lat. (ms)", "Acc. (%)"],
    );
    let mut record = ExperimentRecord::new("fig1a", "latency/accuracy vs cache size");
    record
        .param("model", "resnet101")
        .param("dataset", "ucf101-50")
        .param("frames", frames);

    for pct in [0usize, 3, 6, 10, 20, 40, 70, 100] {
        let count = (pct * rt.num_cache_points()).div_ceil(100);
        let layers = spaced_layers(rt.num_cache_points(), count);
        let cache = table.extract(&layers, &all_classes);
        let mut stream = scenario.stream(0);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let mut lat = 0.0;
        let mut correct = 0u64;
        for _ in 0..frames {
            let f = stream.next_frame();
            let r = infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
            lat += r.latency.as_millis_f64();
            correct += r.correct as u64;
        }
        let mean = lat / frames as f64;
        let acc = correct as f64 / frames as f64 * 100.0;
        out.row(&[
            pct.to_string(),
            count.to_string(),
            cache.total_bytes().to_string(),
            fmt_f(mean, 2),
            fmt_f(acc, 2),
        ]);
        record.push_row(&[
            ("cache_pct", json!(pct)),
            ("layers", json!(count)),
            ("bytes", json!(cache.total_bytes())),
            ("latency_ms", json!(mean)),
            ("accuracy_pct", json!(acc)),
        ]);
    }
    record.param("full_cache_bytes", full_bytes);
    print!("{}", out.render());
    println!(
        "(paper: latency minimum near 10% of the full cache, accuracy stable within 2 points)"
    );
    save_record(&record);
}
