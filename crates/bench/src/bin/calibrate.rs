//! Calibration probe: prints the raw signals the feature geometry is tuned
//! against (full-model accuracy per model, margin distributions, per-layer
//! hit/accuracy curves, engine end-to-end numbers) so the constants in
//! `coca-model` can be validated against the paper's anchors.
//!
//! Not an experiment reproduction — a diagnostic. See EXPERIMENTS.md for
//! the calibrated outcomes.

use coca_core::engine::{Engine, EngineConfig, Scenario, ScenarioConfig};
use coca_core::{infer_with_cache, CocaConfig, LookupScratch};
use coca_data::DatasetSpec;
use coca_model::{ClientFeatureView, ClientProfile, ModelId, ModelRuntime};
use coca_sim::SeedTree;

fn model_accuracy(id: ModelId, classes: usize, drift: f32) -> (f64, f64, f64) {
    let dataset = DatasetSpec::ucf101().subset(classes);
    let seeds = SeedTree::new(1001);
    let rt = ModelRuntime::new(id, &dataset, &seeds);
    let client = ClientProfile::new(0, drift, 0.7, &seeds);
    let mut view = ClientFeatureView::new();
    let mut stream = Scenario::build({
        let mut c = ScenarioConfig::new(id, dataset.clone());
        c.seed = 1001;
        c
    });
    let mut gen = stream.stream(0);
    let _ = &mut stream;
    let mut correct = 0u64;
    let mut margins_correct = Vec::new();
    let mut margins_wrong = Vec::new();
    let n = 4000;
    for _ in 0..n {
        let f = gen.next_frame();
        let p = rt.classify(&f, &client, &mut view);
        if p.correct {
            correct += 1;
            margins_correct.push(p.margin as f64);
        } else {
            margins_wrong.push(p.margin as f64);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (
        correct as f64 / n as f64 * 100.0,
        mean(&margins_correct),
        mean(&margins_wrong),
    )
}

fn per_layer_curves() {
    let dataset = DatasetSpec::ucf101().subset(50);
    let seeds = SeedTree::new(1002);
    let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
    let client = ClientProfile::new(0, 0.0, 0.7, &seeds);
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let mut view = ClientFeatureView::new();
    let mut scratch = LookupScratch::new();
    // All layers active, all classes cached with shared-dataset-seeded
    // entries (the configuration a real deployment starts from).
    let server = coca_core::CocaServer::new(&rt, cfg, &seeds);
    let cache = server.full_cache();
    let mut cfgs = ScenarioConfig::new(ModelId::ResNet101, dataset);
    cfgs.seed = 1002;
    let scenario = Scenario::build(cfgs);
    let mut gen = scenario.stream(0);
    let l = rt.num_cache_points();
    let mut hits = vec![0u64; l];
    let mut hit_correct = vec![0u64; l];
    let mut misses = 0u64;
    let mut lat = 0.0;
    let mut cached_correct = 0u64;
    let mut model_correct = 0u64;
    let n = 3000;
    for _ in 0..n {
        let f = gen.next_frame();
        let r = infer_with_cache(&rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
        lat += r.latency.as_millis_f64();
        if r.correct {
            cached_correct += 1;
        }
        if rt.classify(&f, &client, &mut view).correct {
            model_correct += 1;
        }
        match r.hit_point {
            Some(p) => {
                hits[p] += 1;
                if r.correct {
                    hit_correct[p] += 1;
                }
            }
            None => misses += 1,
        }
    }
    println!(
        "\n== ResNet101/UCF101-50, all 34 layers, 50 classes, theta={} ==",
        cfg.theta
    );
    println!(
        "mean latency {:.2} ms (edge-only {:.2}), miss ratio {:.3}",
        lat / n as f64,
        rt.full_compute().as_millis_f64(),
        misses as f64 / n as f64
    );
    println!(
        "cached accuracy {:.2}%  edge-only accuracy {:.2}%  loss {:.2} points",
        cached_correct as f64 / n as f64 * 100.0,
        model_correct as f64 / n as f64 * 100.0,
        (model_correct as f64 - cached_correct as f64) / n as f64 * 100.0
    );
    println!("{:>5} {:>8} {:>8}", "layer", "hit%", "acc%");
    for j in 0..l {
        if hits[j] > 0 {
            println!(
                "{:>5} {:>8.2} {:>8.1}",
                j,
                hits[j] as f64 / n as f64 * 100.0,
                hit_correct[j] as f64 / hits[j] as f64 * 100.0
            );
        }
    }
}

fn engine_probe_full(label: &str, drift: f32, gcu: bool, budget: usize) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 1003;
    sc.drift_mag = drift;
    let scenario = Scenario::build(sc);
    let full = scenario.rt.full_compute().as_millis_f64();
    let mut coca = CocaConfig::for_model(ModelId::ResNet101);
    coca.enable_gcu = gcu;
    coca.cache_budget_bytes = budget;
    let mut engine = Engine::new(scenario, {
        let mut e = EngineConfig::new(coca);
        e.rounds = 8;
        e
    });
    let r = engine.run();
    println!("\n== Engine [{label}] ==");
    println!(
        "mean latency {:.2} ms (edge {:.2})  acc {:.2}%  hit ratio {:.3}",
        r.mean_latency_ms, full, r.accuracy_pct, r.hit_ratio
    );
    let mut agg = coca_metrics::HitRecorder::new(0);
    for s in &r.per_client {
        agg.merge(&s.hits);
    }
    print!("per-layer (layer:hit%/acc%):");
    for j in 0..agg.num_layers() {
        let ratio = agg.layer_hit_ratio(j);
        if ratio > 0.005 {
            print!(
                " {}:{:.1}/{:.0}",
                j,
                ratio * 100.0,
                agg.layer_hit_accuracy(j).unwrap_or(0.0) * 100.0
            );
        }
    }
    println!();
}

fn engine_probe(label: &str, drift: f32, gcu: bool) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 1003;
    sc.drift_mag = drift;
    let scenario = Scenario::build(sc);
    let full = scenario.rt.full_compute().as_millis_f64();
    let mut coca = CocaConfig::for_model(ModelId::ResNet101);
    coca.enable_gcu = gcu;
    let mut engine = Engine::new(scenario, {
        let mut e = EngineConfig::new(coca);
        e.rounds = 8;
        e
    });
    let r = engine.run();
    println!("\n== Engine [{label}]: ResNet101/UCF101-50, 6 clients, 8 rounds ==");
    println!(
        "frames {}  mean latency {:.2} ms (edge {:.2})  acc {:.2}%  hit ratio {:.3}",
        r.frames, r.mean_latency_ms, full, r.accuracy_pct, r.hit_ratio
    );
    println!(
        "response latency mean {:.2} ms  absorb: reinforce {:.3} ({}), expand {:.3} ({})",
        r.response_latency.mean_ms(),
        r.absorb.reinforce_ratio(),
        r.absorb.reinforced,
        r.absorb.expand_ratio(),
        r.absorb.expanded,
    );
    let mut hit_acc_sum = 0.0;
    let mut hit_cnt = 0u64;
    for s in &r.per_client {
        if let Some(a) = s.hits.hit_accuracy() {
            hit_acc_sum += a * s.hits.total() as f64;
            hit_cnt += s.hits.total();
        }
    }
    if hit_cnt > 0 {
        println!(
            "hit accuracy (weighted) {:.2}%",
            hit_acc_sum / hit_cnt as f64 * 100.0
        );
    }
    // Aggregate per-layer hit accuracy bands across clients.
    let mut agg = coca_metrics::HitRecorder::new(0);
    for s in &r.per_client {
        agg.merge(&s.hits);
    }
    print!("per-layer (layer:hit%/acc%):");
    for j in 0..agg.num_layers() {
        let ratio = agg.layer_hit_ratio(j);
        if ratio > 0.005 {
            print!(
                " {}:{:.1}/{:.0}",
                j,
                ratio * 100.0,
                agg.layer_hit_accuracy(j).unwrap_or(0.0) * 100.0
            );
        }
    }
    println!();
}

fn aca_probe() {
    let dataset = DatasetSpec::ucf101().subset(50);
    let seeds = SeedTree::new(1003);
    let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds.child("universe"));
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let mut server = coca_core::CocaServer::new(&rt, cfg, &seeds);
    println!("\n== ACA probe ==");
    let prof = server.base_hit_profile().to_vec();
    print!("base R (cumulative):");
    for (j, r) in prof.iter().enumerate().step_by(3) {
        print!(" {j}:{r:.2}");
    }
    println!();
    let req = coca_core::proto::CacheRequest {
        client_id: 0,
        round: 0,
        timestamps: vec![0; 50],
        hit_ratio: prof,
        budget_bytes: cfg.cache_budget_bytes as u64,
    };
    let (alloc, _) = server.handle_request(&req);
    println!(
        "allocated layers {:?} classes/layer {:?} bytes {}",
        alloc.cache.activated_points(),
        alloc
            .cache
            .layers()
            .iter()
            .map(|l| l.len())
            .collect::<Vec<_>>(),
        alloc.cache.total_bytes()
    );
    // Seeded-entry fidelity: cosine between seeded global entries and the
    // exact class centers, per layer band.
    for layer in [0usize, 5, 15, 25, 33] {
        let mut sum = 0.0;
        for c in 0..50 {
            sum += coca_math::cosine(
                &server.global().get(c, layer).unwrap(),
                rt.universe().global_center(layer, c),
            ) as f64;
        }
        print!(" seed-fidelity[{layer}]={:.4}", sum / 50.0);
    }
    println!();
}

fn main() {
    aca_probe();
    println!("== Full-model accuracy (4000 frames, UCF101 subsets) ==");
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "model", "acc%", "margin(ok)", "margin(err)"
    );
    for (id, classes) in [
        (ModelId::Vgg16Bn, 100),
        (ModelId::ResNet50, 50),
        (ModelId::ResNet101, 50),
        (ModelId::ResNet101, 100),
        (ModelId::ResNet152, 100),
        (ModelId::AstBase, 50),
    ] {
        let (acc, mc, mw) = model_accuracy(id, classes, 0.25);
        println!(
            "{:>12} {:>8.2} {:>12.3} {:>12.3} (I={classes})",
            format!("{:?}", id),
            acc,
            mc,
            mw
        );
    }
    per_layer_curves();
    engine_probe_full("full-budget drift=0 no-gcu", 0.0, false, 16 << 20);
    engine_probe("drift=0, no-gcu", 0.0, false);
    engine_probe("drift=0, gcu", 0.0, true);
    engine_probe("drift=0.25, no-gcu", 0.25, false);
    engine_probe("drift=0.25, gcu", 0.25, true);
}
