//! Curated dynamics experiment: **client churn**.
//!
//! A third of an 6-client long-tail fleet leaves mid-run while three new
//! clients join at staggered instants, one of them on a degraded link.
//! All six methods run over the identical `ScenarioSpec`; the windowed
//! series shows how each handles fleet turnover — CoCa re-allocates at
//! the next round boundary, FoggyCache retires the leavers' global-store
//! contributions, the purely local methods only lose/gain their own
//! devices.
//!
//! The spec is also written to `results/specs/churn.json`, replayable via
//! `exp_scenario`.

use coca_bench::scenario_exp::{run_spec_experiment, save_spec};
use coca_core::engine::ScenarioConfig;
use coca_core::spec::ScenarioSpec;
use coca_core::CocaConfig;
use coca_data::distribution::long_tail_weights;
use coca_data::DatasetSpec;
use coca_model::ModelId;
use coca_net::LinkModel;
use coca_sim::SimDuration;

fn main() {
    let model = ModelId::ResNet101;
    let mut sc = ScenarioConfig::new(model, DatasetSpec::ucf101().subset(50));
    sc.num_clients = 6;
    sc.seed = 12_001;
    sc.global_popularity = long_tail_weights(50, 90.0);

    let congested = LinkModel {
        one_way_delay: SimDuration::from_millis(15),
        bandwidth_bps: 10.0e6,
    };

    // 6 rounds x 250 frames base; clients 1 and 4 depart after rounds 2
    // and 3; three joiners arrive at 30/60/90 s (the third on a congested
    // link from the moment it boots).
    let spec = ScenarioSpec::new(sc, 6, 250)
        .leave(1, 2)
        .leave(4, 3)
        .join(30_000.0, 4)
        .join(60_000.0, 3)
        .join(90_000.0, 3)
        .link_change(Some(8), 90_000.0, congested);

    save_spec("churn", &spec);
    run_spec_experiment(
        "churn",
        "Dynamics — client churn (leaves at round boundaries, staggered joins)",
        &spec,
        CocaConfig::for_model(model),
    );
}
