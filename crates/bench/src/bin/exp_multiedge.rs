//! Multi-edge topology experiment: collaborating server cells with
//! priced peer sync and client migration (`results/multiedge.json`).
//!
//! Four sections, all in virtual time (deterministic, regenerates
//! byte-identically — the record is part of the CI byte-identity gate):
//!
//! 1. **Sync-period sweep** — 3 cells under both sync modes across a
//!    range of periods, against the single-cell oracle (everything
//!    merges at one server instantly). Reports hit ratio, accuracy,
//!    latency and **staleness**: the mean fraction of fleet-wide Φ mass
//!    a cell is missing at run end (0 at the oracle; grows with the
//!    period — the collaboration-vs-traffic trade-off).
//! 2. **Flash crowd** — half the fleet migrates onto one cell mid-run;
//!    windowed hit ratio shows the handover transient.
//! 3. **Cell failure** — a cell's clients re-home to cell 0 via
//!    `Migrate` (the failure drill: the cell drains its queue, its
//!    members re-allocate at their new home).
//! 4. **Determinism** — the 3-cell gossip run repeated under rayon
//!    widths 1/2/4 with sharded merges on, and the one-cell topology
//!    against the legacy single-server engine.
//!
//! Env knobs (CI): `COCA_MULTIEDGE_QUICK=1` shrinks rounds/frames (the
//! record then differs from the committed full-size one — CI restores
//! it); `COCA_MULTIEDGE_ENFORCE=1` asserts per-cell digest equality at
//! every rayon width, the one-cell ≡ legacy digest match, and Φ
//! conservation (no echo) in every synced run.

use coca_bench::output::save_record;
use coca_bench::scenario_exp::save_spec;
use coca_core::engine::{Engine, EngineConfig, EngineReport, ScenarioConfig};
use coca_core::multicell::MultiCellEngine;
use coca_core::spec::{ScenarioSpec, SyncMode, TopologySpec};
use coca_core::{CocaConfig, CocaServer};
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

const CLIENTS: usize = 6;
const CLASSES: usize = 30;
const SEED: u64 = 23_001;

struct Dims {
    rounds: usize,
    frames: usize,
}

fn base_scenario() -> ScenarioConfig {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(CLASSES));
    sc.num_clients = CLIENTS;
    sc.seed = SEED;
    sc
}

fn coca_cfg(frames: usize) -> CocaConfig {
    CocaConfig::for_model(ModelId::ResNet101).with_round_frames(frames)
}

fn base_spec(d: &Dims) -> ScenarioSpec {
    ScenarioSpec::new(base_scenario(), d.rounds, d.frames)
}

/// Runs one spec through the multi-cell engine and returns the report
/// plus the per-cell digests and Φ-staleness.
struct CellRun {
    report: EngineReport,
    digests: Vec<u64>,
    staleness: f64,
    phi_conserved: bool,
}

fn run_cells(spec: &ScenarioSpec, cells: usize, frames: usize) -> CellRun {
    let (scenario, plan) = spec.materialize();
    let mut engine = MultiCellEngine::new(scenario, EngineConfig::new(coca_cfg(frames)), cells);
    let report = engine.run_plan(&plan);
    let digests: Vec<u64> = engine
        .servers()
        .iter()
        .map(|s| s.global().digest())
        .collect();
    let (staleness, phi_conserved) = phi_staleness(engine.servers());
    CellRun {
        report,
        digests,
        staleness,
        phi_conserved,
    }
}

/// Φ-staleness and conservation over the fleet's provenance counts.
///
/// Each origin's authoritative mass is its own cell's self-attributed
/// row (local uploads merge at the home cell synchronously, so the
/// origin cell is never stale about itself). Staleness is the mean,
/// over cells, of the fraction of the fleet-wide mass that cell has not
/// yet absorbed. Conservation holds when no cell attributes *more* mass
/// to an origin than the origin recorded — the no-echo invariant of the
/// cursor-based deltas.
fn phi_staleness(servers: &[CocaServer]) -> (f64, bool) {
    let own: Vec<u64> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.merge_provenance()
                .get(&(i as u32))
                .map_or(0, |row| row.iter().sum())
        })
        .collect();
    let fleet_total: u64 = own.iter().sum();
    if fleet_total == 0 {
        return (0.0, true);
    }
    let mut conserved = true;
    let mut missing_frac_sum = 0.0f64;
    for s in servers {
        let mut have = 0u64;
        for (origin, authoritative) in own.iter().enumerate() {
            let got = s
                .merge_provenance()
                .get(&(origin as u32))
                .map_or(0, |row| row.iter().sum::<u64>());
            if got > *authoritative {
                conserved = false;
            }
            have += got.min(*authoritative);
        }
        missing_frac_sum += 1.0 - have as f64 / fleet_total as f64;
    }
    (missing_frac_sum / servers.len() as f64, conserved)
}

fn main() {
    let quick = std::env::var("COCA_MULTIEDGE_QUICK").as_deref() == Ok("1");
    let enforce = std::env::var("COCA_MULTIEDGE_ENFORCE").as_deref() == Ok("1");
    let d = if quick {
        Dims {
            rounds: 2,
            frames: 100,
        }
    } else {
        Dims {
            rounds: 4,
            frames: 150,
        }
    };

    let mut record = ExperimentRecord::new(
        "multiedge",
        "multi-edge topology — peer-synced server cells, migration, cell failure",
    );
    record
        .param("model", "resnet101")
        .param("dataset", format!("ucf101-{CLASSES}"))
        .param("clients", CLIENTS as u64)
        .param("rounds", d.rounds as u64)
        .param("frames_per_round", d.frames as u64)
        .param("seed", SEED);

    // -- 1. sync-period sweep ------------------------------------------------
    let mut sweep = Table::new(
        "Sync-period sweep — 3 cells vs the single-cell oracle",
        &[
            "Topology",
            "Period (ms)",
            "Hit ratio",
            "Acc.(%)",
            "Lat.(ms)",
            "Φ staleness",
        ],
    );

    let oracle = run_cells(
        &base_spec(&d).topology(TopologySpec::uniform(1, CLIENTS)),
        1,
        d.frames,
    );
    sweep.row(&[
        "1 cell (oracle)".into(),
        "-".into(),
        fmt_f(oracle.report.hit_ratio, 4),
        fmt_f(oracle.report.accuracy_pct, 2),
        fmt_f(oracle.report.mean_latency_ms, 2),
        fmt_f(oracle.staleness, 4),
    ]);
    record.push_row(&[
        ("section", json!("sweep")),
        ("mode", json!("oracle")),
        ("cells", json!(1)),
        ("sync_period_ms", serde_json::Value::Null),
        ("hit_ratio", json!(oracle.report.hit_ratio)),
        ("accuracy_pct", json!(oracle.report.accuracy_pct)),
        ("mean_latency_ms", json!(oracle.report.mean_latency_ms)),
        ("phi_staleness", json!(oracle.staleness)),
    ]);

    let periods: &[f64] = if quick {
        &[500.0, 4000.0]
    } else {
        &[250.0, 1000.0, 4000.0]
    };
    let mut all_synced_conserved = true;
    for mode in [SyncMode::Gossip, SyncMode::HubAndSpoke] {
        for &period in periods {
            let spec =
                base_spec(&d).topology(TopologySpec::uniform(3, CLIENTS).with_sync(period, mode));
            let run = run_cells(&spec, 3, d.frames);
            all_synced_conserved &= run.phi_conserved;
            let label = match mode {
                SyncMode::Gossip => "3 cells, gossip",
                SyncMode::HubAndSpoke => "3 cells, hub",
            };
            sweep.row(&[
                label.into(),
                fmt_f(period, 0),
                fmt_f(run.report.hit_ratio, 4),
                fmt_f(run.report.accuracy_pct, 2),
                fmt_f(run.report.mean_latency_ms, 2),
                fmt_f(run.staleness, 4),
            ]);
            record.push_row(&[
                ("section", json!("sweep")),
                (
                    "mode",
                    json!(match mode {
                        SyncMode::Gossip => "gossip",
                        SyncMode::HubAndSpoke => "hub_and_spoke",
                    }),
                ),
                ("cells", json!(3)),
                ("sync_period_ms", json!(period)),
                ("hit_ratio", json!(run.report.hit_ratio)),
                ("accuracy_pct", json!(run.report.accuracy_pct)),
                ("mean_latency_ms", json!(run.report.mean_latency_ms)),
                ("phi_staleness", json!(run.staleness)),
                ("phi_conserved", json!(run.phi_conserved)),
            ]);
        }
    }
    print!("{}", sweep.render());
    println!("Φ conservation (no echo) across synced runs: {all_synced_conserved}");
    if enforce {
        assert!(
            all_synced_conserved,
            "peer-sync echoed Φ mass back to an origin"
        );
    }

    // -- 2. flash crowd ------------------------------------------------------
    // Cell 0's residents (round-robin: clients 0, 2, 4) pile onto cell 1
    // midway — a flash crowd at one edge.
    let mut flash_spec = base_spec(&d)
        .topology(TopologySpec::uniform(2, CLIENTS).with_sync(1000.0, SyncMode::Gossip));
    let mid = (d.rounds / 2).max(1);
    for k in [0usize, 2, 4] {
        flash_spec = flash_spec.migrate(k, mid, 1);
    }
    save_spec("multiedge_flash", &flash_spec);
    let flash = run_cells(&flash_spec, 2, d.frames);
    let mut flash_table = Table::new(
        "Flash crowd — 3 clients migrate onto cell 1 mid-run (windowed hit ratio)",
        &["Window", "Start (ms)", "Frames", "Hit ratio", "Lat.(ms)"],
    );
    let window_ms = flash_spec.metrics_window_ms;
    for (i, w) in flash.report.windowed.windows().iter().enumerate() {
        flash_table.row(&[
            i.to_string(),
            fmt_f(i as f64 * window_ms, 0),
            w.frames.to_string(),
            if w.frames == 0 {
                "-".into()
            } else {
                fmt_f(w.hit_ratio(), 3)
            },
            if w.frames == 0 {
                "-".into()
            } else {
                fmt_f(w.mean_latency_ms(), 2)
            },
        ]);
        record.push_row(&[
            ("section", json!("flash_crowd")),
            ("window", json!(i)),
            ("window_start_ms", json!(i as f64 * window_ms)),
            ("frames", json!(w.frames)),
            ("hit_ratio", json!(w.hit_ratio())),
            ("latency_ms", json!(w.mean_latency_ms())),
        ]);
    }
    print!("{}", flash_table.render());
    record.push_row(&[
        ("section", json!("flash_crowd")),
        ("overall_hit_ratio", json!(flash.report.hit_ratio)),
        ("overall_latency_ms", json!(flash.report.mean_latency_ms)),
        ("phi_staleness", json!(flash.staleness)),
    ]);

    // -- 3. cell failure -----------------------------------------------------
    // Cell 1 "fails" mid-run: its residents (clients 1, 3, 5) re-home to
    // cell 0 via Migrate — the old cell drains its in-flight uploads at
    // the handover, the migrants re-allocate from cell 0's merged view.
    let mut fail_spec = base_spec(&d)
        .topology(TopologySpec::uniform(2, CLIENTS).with_sync(1000.0, SyncMode::Gossip));
    for k in [1usize, 3, 5] {
        fail_spec = fail_spec.migrate(k, mid, 0);
    }
    let fail = run_cells(&fail_spec, 2, d.frames);
    println!(
        "Cell failure — residents re-home to cell 0 at round {mid}: \
         hit {:.4}, latency {:.2} ms (survivor cell digest {:016x})",
        fail.report.hit_ratio, fail.report.mean_latency_ms, fail.digests[0]
    );
    record.push_row(&[
        ("section", json!("cell_failure")),
        ("rehome_round", json!(mid)),
        ("hit_ratio", json!(fail.report.hit_ratio)),
        ("mean_latency_ms", json!(fail.report.mean_latency_ms)),
        (
            "survivor_digest",
            json!(format!("{:016x}", fail.digests[0])),
        ),
    ]);

    // -- 4. determinism ------------------------------------------------------
    // The 3-cell gossip run with layer-sharded parallel merges, repeated
    // under rayon pools of width 1, 2 and 4 — per-cell digests must be
    // bit-identical at every width.
    let widths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let det_spec = base_spec(&d)
        .topology(TopologySpec::uniform(3, CLIENTS).with_sync(500.0, SyncMode::Gossip));
    let mut digests_by_width: Vec<(usize, Vec<u64>)> = Vec::new();
    for &w in widths {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(w)
            .build()
            .expect("rayon pool");
        let digests = pool.install(|| {
            let (scenario, plan) = det_spec.materialize();
            let mut cfg = EngineConfig::new(coca_cfg(d.frames));
            cfg.coca.parallel_merge = true;
            let mut engine = MultiCellEngine::new(scenario, cfg, 3);
            engine.run_plan(&plan);
            engine
                .servers()
                .iter()
                .map(|s| s.global().digest())
                .collect::<Vec<u64>>()
        });
        digests_by_width.push((w, digests));
    }
    let width_match = digests_by_width
        .iter()
        .all(|(_, d)| *d == digests_by_width[0].1);
    println!(
        "Per-cell digests at rayon widths {widths:?}: {}",
        if width_match { "MATCH" } else { "MISMATCH" }
    );
    for (w, digests) in &digests_by_width {
        record.push_row(&[
            ("section", json!("determinism")),
            ("rayon_width", json!(w)),
            (
                "cell_digests",
                json!(digests
                    .iter()
                    .map(|d| format!("{d:016x}"))
                    .collect::<Vec<_>>()),
            ),
        ]);
    }

    // One-cell topology against the legacy single-server engine: same
    // floats, same digest — the refactor's compatibility contract.
    let legacy = {
        let (scenario, plan) = base_spec(&d).materialize();
        let mut engine = Engine::new(scenario, EngineConfig::new(coca_cfg(d.frames)));
        let report = engine.run_plan(&plan);
        (report.frame_digest, engine.server().global().digest())
    };
    let onecell = {
        let (scenario, plan) = base_spec(&d)
            .topology(TopologySpec::uniform(1, CLIENTS))
            .materialize();
        let mut engine = MultiCellEngine::new(scenario, EngineConfig::new(coca_cfg(d.frames)), 1);
        let report = engine.run_plan(&plan);
        (report.frame_digest, engine.server(0).global().digest())
    };
    let onecell_match = legacy == onecell;
    println!(
        "One-cell topology vs legacy engine: {} (frame digest {:016x}, table digest {:016x})",
        if onecell_match { "MATCH" } else { "MISMATCH" },
        onecell.0,
        onecell.1
    );
    record.push_row(&[
        ("section", json!("determinism")),
        ("rayon_width_match", json!(width_match)),
        ("one_cell_matches_legacy", json!(onecell_match)),
        ("legacy_table_digest", json!(format!("{:016x}", legacy.1))),
    ]);
    if enforce {
        assert!(width_match, "per-cell digests diverged across rayon widths");
        assert!(
            onecell_match,
            "one-cell topology diverged from the legacy single-server path"
        );
    }

    save_record(&record);
}
