//! Fig. 10(b): cache-request response latency vs. number of clients.
//!
//! Four models, client counts 60 → 160. Response latency = request sent →
//! personalized cache installed (link transfers + server FIFO queueing).

use coca_bench::harness::{parallel_sweep, run_coca_engine, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let client_counts = [60usize, 100, 140, 160];
    let spec = RunSpec {
        rounds: 2,
        frames: 120,
    };
    let mut record = ExperimentRecord::new("fig10b", "response latency vs client count");

    let mut out = Table::new(
        "Fig. 10(b) — mean cache-response latency (ms) vs #clients",
        &["Model", "60", "100", "140", "160"],
    );
    for model in [
        ModelId::Vgg16Bn,
        ModelId::ResNet50,
        ModelId::ResNet101,
        ModelId::AstBase,
    ] {
        let dataset = if model == ModelId::AstBase {
            DatasetSpec::esc50()
        } else {
            DatasetSpec::ucf101().subset(100)
        };
        let mut row = vec![model.name().to_string()];
        // One run per client count, fanned across cores.
        let sweep = parallel_sweep(client_counts.to_vec(), |n| {
            let mut sc = ScenarioConfig::new(model, dataset.clone());
            sc.seed = 11_022;
            sc.num_clients = n;
            (
                n,
                run_coca_engine(&sc, CocaConfig::for_model(model), spec).1,
            )
        });
        for (n, r) in sweep {
            row.push(fmt_f(r.response_latency.mean_ms(), 2));
            record.push_row(&[
                ("model", json!(model.name())),
                ("clients", json!(n)),
                ("response_latency_ms", json!(r.response_latency.mean_ms())),
                ("p99_ms", json!(r.response_latency.p99_ms())),
            ]);
        }
        out.row(&row);
    }
    print!("{}", out.render());
    println!(
        "(paper: modest growth with client count — e.g. ResNet101 56.70 ms @60 → 60.93 ms \
         @160 — thanks to small exchanged caches)"
    );
    save_record(&record);
}
