//! Durability experiment: **crash-point sweep and persistence footprint**.
//!
//! Exercises the snapshot + WAL subsystem (`coca_core::persist`) the way
//! the recovery proptests do, but as a committed, regenerable record:
//!
//! * **crash sweep** — one fixed churn/drift timeline run under
//!   queue-and-flush with a WAL rotating every 3 records; a crash is then
//!   injected at *every* WAL event boundary under each fault kind (clean
//!   kill, torn final record, corrupted current snapshot) and the resumed
//!   run's `frame_digest` + record bytes are checked against the
//!   uninterrupted run. The record row counts boundaries swept and
//!   digest-equal outcomes (they must match).
//! * **standalone recovery** — [`CocaServer::recover`] from the finished
//!   run's storage, reporting which snapshot generation seeded the
//!   replay, how many WAL records were replayed and how many torn bytes
//!   were truncated, plus snapshot-byte identity with the live server.
//! * **footprint** — snapshot and WAL sizes under f32/f16/i8 table
//!   precision for the same timeline.
//!
//! Everything is virtual-time deterministic — no wall-clock timings — so
//! `results/recovery.json` regenerates byte-identically.

use coca_bench::output::save_record;
use coca_core::engine::{Engine, EngineConfig, EngineReport, ScenarioConfig};
use coca_core::persist::{CrashFault, CrashPlan, Durability, MemStorage, SnapshotSource, WAL_CUR};
use coca_core::spec::{PopularityShift, ScenarioSpec};
use coca_core::{CocaConfig, CocaServer, FlushPolicy, MergeMode};
use coca_data::DatasetSpec;
use coca_math::Precision;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use coca_net::LinkModel;
use coca_sim::SimDuration;
use serde_json::json;

const CLIENTS: usize = 3;
const ROUNDS: usize = 2;
const FRAMES: usize = 40;
const ROTATE_EVERY: usize = 3;

/// The same dynamics mix the recovery proptests sweep: a join, a leave,
/// a whole-fleet popularity rotation and a link change.
fn spec() -> ScenarioSpec {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    sc.num_clients = CLIENTS;
    sc.seed = 23_001;
    ScenarioSpec::new(sc, ROUNDS, FRAMES)
        .join(11_000.0, 1)
        .leave(1, 1)
        .popularity_shift(None, 25, PopularityShift::Rotate(3))
        .link_change(
            Some(0),
            5_500.0,
            LinkModel {
                one_way_delay: SimDuration::from_millis(9),
                bandwidth_bps: 20.0e6,
            },
        )
}

fn coca_config(spec: &ScenarioSpec, precision: Precision) -> CocaConfig {
    CocaConfig::for_model(ModelId::ResNet101)
        .with_round_frames(spec.frames_per_round)
        .with_merge_mode(MergeMode::QueueAndFlush)
        .with_flush_policy(FlushPolicy::RoundAligned)
        .with_precision(precision)
}

/// Canonical rendering of the run's record series + global table — the
/// byte-identity probe the recovery proptests use.
fn probe(engine: &Engine, report: &EngineReport) -> String {
    format!(
        "{}|{}|{}|{}|{}",
        serde_json::to_string(&report.latency).unwrap(),
        serde_json::to_string(&report.response_latency).unwrap(),
        serde_json::to_string(&report.windowed).unwrap(),
        serde_json::to_string(&report.per_client).unwrap(),
        serde_json::to_string(engine.server().global()).unwrap(),
    )
}

fn run_durable(
    spec: &ScenarioSpec,
    cfg: CocaConfig,
    crash: Option<CrashPlan>,
) -> (EngineReport, String, Engine) {
    let (scenario, plan) = spec.materialize();
    let mut engine = Engine::new(scenario, EngineConfig::new(cfg));
    let mut d = Durability::new(Box::new(MemStorage::new()), ROTATE_EVERY);
    if let Some(plan) = crash {
        d = d.with_crash_plan(plan);
    }
    engine.server_mut().attach_durability(d);
    let report = engine.run_plan(&plan);
    let records = probe(&engine, &report);
    (report, records, engine)
}

fn source_label(s: SnapshotSource) -> &'static str {
    match s {
        SnapshotSource::Current => "current",
        SnapshotSource::Previous => "previous",
        SnapshotSource::Genesis => "genesis",
    }
}

fn main() {
    let spec = spec();
    let mut record = ExperimentRecord::new(
        "recovery",
        "durability — crash-point sweep, standalone recovery, persistence footprint",
    );
    record
        .param("model", ModelId::ResNet101.name())
        .param("dataset", "ucf101-10")
        .param("clients", CLIENTS as u64)
        .param("rounds", ROUNDS as u64)
        .param("frames_per_round", FRAMES as u64)
        .param("seed", spec.scenario.seed)
        .param("wal_rotate_records", ROTATE_EVERY as u64)
        .param("merge_mode", "queue_and_flush")
        .param("flush_policy", "round_aligned");

    // -- baseline: uninterrupted durable run (f32) --------------------
    let cfg = coca_config(&spec, Precision::F32);
    let mut baseline = run_durable(&spec, cfg, None);
    let live_bytes = baseline.2.server().snapshot().to_bytes();
    let d = baseline.2.server_mut().detach_durability().unwrap();
    let total_events = d.events_logged();

    // -- standalone recovery from the finished run's storage ----------
    let scenario = baseline.2.scenario();
    let effective = baseline.2.server().snapshot().config;
    let (recovered, info) =
        CocaServer::recover(&scenario.rt, effective, scenario.seeds(), d).unwrap();
    let recovered_identical = recovered.snapshot().to_bytes() == live_bytes;
    assert!(
        recovered_identical,
        "standalone recovery diverged from the live server"
    );

    // -- crash sweep: every event boundary x every fault kind ---------
    let mut sweep = Table::new(
        "Crash sweep — every WAL event boundary, per fault kind",
        &["Fault", "Boundaries", "Digest-equal", "Records-equal"],
    );
    for (label, fault) in [
        ("clean", CrashFault::Clean),
        ("torn_final_record", CrashFault::Torn { keep: 13 }),
        ("snapshot_corrupt", CrashFault::SnapCorrupt { byte: 97 }),
    ] {
        let mut digest_equal = 0u64;
        let mut records_equal = 0u64;
        for at_event in 0..total_events {
            let plan = CrashPlan { at_event, fault };
            let mut crashed = run_durable(&spec, cfg, Some(plan));
            if crashed.0.frame_digest == baseline.0.frame_digest {
                digest_equal += 1;
            }
            if crashed.1 == baseline.1 {
                records_equal += 1;
            }
            let d = crashed.2.server_mut().detach_durability().unwrap();
            assert!(!d.crash_pending(), "crash {plan:?} never fired");
        }
        assert_eq!(
            (digest_equal, records_equal),
            (total_events, total_events),
            "fault {label}: a crash point broke digest/record equality"
        );
        sweep.row(&[
            label.to_string(),
            total_events.to_string(),
            digest_equal.to_string(),
            records_equal.to_string(),
        ]);
        record.push_row(&[
            ("kind", json!("crash_sweep")),
            ("fault", json!(label)),
            ("boundaries", json!(total_events)),
            ("digest_equal", json!(digest_equal)),
            ("records_equal", json!(records_equal)),
        ]);
    }
    print!("{}", sweep.render());
    println!(
        "standalone recovery: source={} replayed={} truncated_bytes={} identical={}",
        source_label(info.source),
        info.replayed,
        info.truncated_bytes,
        recovered_identical
    );
    record.push_row(&[
        ("kind", json!("standalone_recovery")),
        ("source", json!(source_label(info.source))),
        ("replayed", json!(info.replayed)),
        ("truncated_bytes", json!(info.truncated_bytes)),
        ("snapshot_identical", json!(recovered_identical)),
        ("events_logged", json!(total_events)),
    ]);

    // -- footprint: snapshot + WAL bytes per table precision ----------
    let mut foot = Table::new(
        "Persistence footprint — snapshot and WAL bytes per precision",
        &["Precision", "Snapshot (KiB)", "WAL tail (KiB)", "Events"],
    );
    for precision in [Precision::F32, Precision::F16, Precision::I8] {
        let cfg = coca_config(&spec, precision);
        let mut run = run_durable(&spec, cfg, None);
        let snap_bytes = run.2.server().snapshot().to_bytes().len();
        let d = run.2.server_mut().detach_durability().unwrap();
        let events = d.events_logged();
        let store = d.into_storage();
        let wal_bytes = store.load(WAL_CUR).map_or(0, |b| b.len());
        foot.row(&[
            precision.label().to_string(),
            fmt_f(snap_bytes as f64 / 1024.0, 1),
            fmt_f(wal_bytes as f64 / 1024.0, 1),
            events.to_string(),
        ]);
        record.push_row(&[
            ("kind", json!("footprint")),
            ("precision", json!(precision.label())),
            ("snapshot_bytes", json!(snap_bytes)),
            ("wal_tail_bytes", json!(wal_bytes)),
            ("events_logged", json!(events)),
        ]);
    }
    print!("{}", foot.render());
    save_record(&record);
}
