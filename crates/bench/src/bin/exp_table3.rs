//! Table III: uniform vs. long-tail class distributions.
//!
//! ResNet101 on ImageNet-100: a uniform group and a long-tail group
//! (imbalance ratio ρ = 90, top 20 % of classes ≈ 60 % of samples), all
//! five methods.

use coca_bench::harness::{run_all_methods, RunSpec};
use coca_bench::output::save_record;
use coca_core::engine::ScenarioConfig;
use coca_core::CocaConfig;
use coca_data::distribution::{long_tail_weights, uniform_weights};
use coca_data::DatasetSpec;
use coca_metrics::table::fmt_f;
use coca_metrics::{ExperimentRecord, Table};
use coca_model::ModelId;
use serde_json::json;

fn main() {
    let dataset = DatasetSpec::imagenet100();
    let spec = RunSpec::standard();
    let model = ModelId::ResNet101;
    let mut record = ExperimentRecord::new("table3", "uniform vs long-tail groups");
    record
        .param("model", model.name())
        .param("dataset", "imagenet-100")
        .param("rho", 90.0);

    let mut run_group = |name: &str, popularity: Vec<f64>, seed: u64| {
        let mut sc = ScenarioConfig::new(model, dataset.clone());
        sc.seed = seed;
        sc.num_clients = 6;
        sc.global_popularity = popularity;
        let reports = run_all_methods(&sc, CocaConfig::for_model(model), spec);
        for r in &reports {
            record.push_row(&[
                ("group", json!(name)),
                ("method", json!(r.name)),
                ("latency_ms", json!(r.mean_latency_ms)),
                ("accuracy_pct", json!(r.accuracy_pct)),
            ]);
        }
        reports
    };

    let uniform = run_group("uniform", uniform_weights(100), 11_014);
    let longtail = run_group("long-tail", long_tail_weights(100, 90.0), 11_014);

    let mut out = Table::new(
        "Table III — ResNet101 / ImageNet-100: uniform vs long-tail",
        &[
            "Method",
            "Unif Lat.(ms)",
            "Unif Acc.(%)",
            "LT Lat.(ms)",
            "LT Acc.(%)",
        ],
    );
    for (u, l) in uniform.iter().zip(&longtail) {
        out.row(&[
            u.name.clone(),
            fmt_f(u.mean_latency_ms, 2),
            fmt_f(u.accuracy_pct, 2),
            fmt_f(l.mean_latency_ms, 2),
            fmt_f(l.accuracy_pct, 2),
        ]);
    }
    print!("{}", out.render());
    let (cu, cl) = (uniform[4].mean_latency_ms, longtail[4].mean_latency_ms);
    println!(
        "CoCa long-tail vs uniform: {:.2}% lower latency (paper: 4.01% lower)\n\
         (paper: CoCa lowest in both groups; semantic methods gain on the long tail)",
        (1.0 - cl / cu) * 100.0
    );
    save_record(&record);
}
