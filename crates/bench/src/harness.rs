//! Method runners shared by the experiment binaries.
//!
//! Every method consumes a scenario rebuilt from the same
//! [`ScenarioConfig`] — identical feature universe, client drift profiles
//! and frame streams — so rows of one table differ only by the method.

use coca_baselines::foggycache::run_foggycache;
use coca_baselines::learnedcache::run_learnedcache;
use coca_baselines::smtm::run_smtm;
use coca_baselines::{
    run_edge_only, FoggyCacheConfig, LearnedCacheConfig, MethodReport, SmtmConfig,
};
use coca_core::engine::{Engine, EngineConfig, EngineReport, Scenario, ScenarioConfig};
use coca_core::CocaConfig;

/// How long each method runs.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Rounds per client.
    pub rounds: usize,
    /// Frames per round (CoCa's F; other methods run the same frame count).
    pub frames: usize,
}

impl RunSpec {
    /// The default experiment length: enough rounds for the collaborative
    /// machinery to reach steady state while keeping sweeps fast.
    pub fn standard() -> Self {
        Self { rounds: 6, frames: 300 }
    }

    /// Shorter runs for wide parameter sweeps.
    pub fn quick() -> Self {
        Self { rounds: 4, frames: 200 }
    }
}

/// Converts an engine report into the common method report shape.
pub fn coca_method_report(name: &str, r: EngineReport) -> MethodReport {
    MethodReport {
        name: name.into(),
        frames: r.frames,
        mean_latency_ms: r.mean_latency_ms,
        accuracy_pct: r.accuracy_pct,
        hit_ratio: r.hit_ratio,
        latency: r.latency,
        per_client: r.per_client,
    }
}

/// Runs CoCa (the full engine) over a freshly built scenario.
pub fn run_coca(sc: &ScenarioConfig, coca: CocaConfig, spec: RunSpec) -> MethodReport {
    let report = run_coca_engine(sc, coca, spec).1;
    coca_method_report("CoCa", report)
}

/// Runs CoCa and also returns the engine (for post-run inspection).
pub fn run_coca_engine(
    sc: &ScenarioConfig,
    mut coca: CocaConfig,
    spec: RunSpec,
) -> (Engine, EngineReport) {
    coca.round_frames = spec.frames;
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = spec.rounds;
    let mut engine = Engine::new(Scenario::build(sc.clone()), engine_cfg);
    let report = engine.run();
    (engine, report)
}

/// Runs all five methods of the paper's comparison tables, in the paper's
/// reporting order: Edge-Only, LearnedCache, FoggyCache, SMTM, CoCa.
pub fn run_all_methods(sc: &ScenarioConfig, coca: CocaConfig, spec: RunSpec) -> Vec<MethodReport> {
    let mut out = Vec::with_capacity(5);
    {
        let scenario = Scenario::build(sc.clone());
        out.push(run_edge_only(&scenario, spec.rounds, spec.frames));
    }
    {
        let scenario = Scenario::build(sc.clone());
        let cfg = LearnedCacheConfig::for_model(coca.theta, spec.frames);
        out.push(run_learnedcache(&scenario, &cfg, spec.rounds, spec.frames));
    }
    {
        let scenario = Scenario::build(sc.clone());
        out.push(run_foggycache(&scenario, &FoggyCacheConfig::default(), spec.rounds, spec.frames));
    }
    {
        let scenario = Scenario::build(sc.clone());
        let cfg = SmtmConfig::from_coca(&coca);
        out.push(run_smtm(&scenario, &cfg, spec.rounds, spec.frames));
    }
    out.push(run_coca(sc, coca, spec));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    #[test]
    fn all_five_run_on_identical_streams() {
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 2;
        sc.seed = 200;
        let coca = CocaConfig::for_model(ModelId::ResNet101);
        let spec = RunSpec { rounds: 2, frames: 80 };
        let reports = run_all_methods(&sc, coca, spec);
        assert_eq!(reports.len(), 5);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Edge-Only", "LearnedCache", "FoggyCache", "SMTM", "CoCa"]);
        for r in &reports {
            assert_eq!(r.frames, 2 * 2 * 80, "{}", r.name);
        }
        // Edge-Only is the latency ceiling (within noise).
        let edge = reports[0].mean_latency_ms;
        for r in &reports[1..] {
            assert!(r.mean_latency_ms <= edge * 1.15, "{} at {}", r.name, r.mean_latency_ms);
        }
    }
}
