//! Method runners and the parallel sweep engine shared by the experiment
//! binaries.
//!
//! Every method consumes a scenario rebuilt from the same
//! [`ScenarioConfig`] — identical feature universe, client drift profiles
//! and frame streams — and runs through the same generic virtual-time
//! engine ([`coca_core::driver::drive`]), so rows of one table differ only
//! by the method.
//!
//! Sweeps fan out over a rayon-style thread pool via [`parallel_sweep`]:
//! each job rebuilds its scenario deterministically and runs in isolation,
//! and results come back **in input order**, so a parallel sweep is
//! bit-identical to running the same jobs serially.

use coca_baselines::{
    run_edge_only_plan, run_edge_only_with, run_foggycache_plan, run_foggycache_with,
    run_learnedcache_plan, run_learnedcache_with, run_replacement_plan, run_replacement_with,
    run_smtm_plan, run_smtm_with, FoggyCacheConfig, LearnedCacheConfig, MethodReport,
    ReplacementPolicy, SmtmConfig,
};
use coca_core::driver::DriveConfig;
use coca_core::engine::{Engine, EngineConfig, EngineReport, Scenario, ScenarioConfig};
use coca_core::spec::ScenarioSpec;
use coca_core::CocaConfig;
use rayon::prelude::*;

/// Entries-per-layer budget for the Replacement (LRU) row of the
/// six-method dynamic comparisons (Fig. 8's mid-size setting).
pub const SPEC_REPLACEMENT_ENTRIES: usize = 30;
/// Fixed high-benefit layer count for the Replacement row.
pub const SPEC_REPLACEMENT_LAYERS: usize = 4;

/// How long each method runs.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Rounds per client.
    pub rounds: usize,
    /// Frames per round (CoCa's F; other methods run the same frame count).
    pub frames: usize,
}

impl RunSpec {
    /// The default experiment length: enough rounds for the collaborative
    /// machinery to reach steady state while keeping sweeps fast.
    pub fn standard() -> Self {
        Self {
            rounds: 6,
            frames: 300,
        }
    }

    /// Shorter runs for wide parameter sweeps.
    pub fn quick() -> Self {
        Self {
            rounds: 4,
            frames: 200,
        }
    }
}

/// Runs `job` over every item on the workspace thread pool, returning
/// results in input order (bit-identical to a serial map — each job must
/// derive all randomness from its input, which scenario-seeded runs do).
pub fn parallel_sweep<T, R, F>(items: Vec<T>, job: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    items.into_par_iter().map(job).collect()
}

/// The methods of the paper's comparison tables, as sweepable jobs.
#[derive(Debug, Clone, Copy)]
enum Method {
    EdgeOnly,
    LearnedCache,
    FoggyCache,
    Smtm,
    /// The Fig. 8-style managed cache (only part of the six-method
    /// dynamic comparisons; the five-method paper tables omit it).
    ReplacementLru,
    Coca,
}

impl Method {
    /// Runs this method under `drive_cfg` — the *one* set of engine knobs
    /// every method of the comparison shares, so all rows price identical
    /// network and boot conditions.
    fn run(self, sc: &ScenarioConfig, coca: CocaConfig, drive_cfg: &DriveConfig) -> MethodReport {
        match self {
            Method::EdgeOnly => run_edge_only_with(&Scenario::build(sc.clone()), drive_cfg),
            Method::LearnedCache => {
                let cfg = LearnedCacheConfig::for_model(coca.theta, drive_cfg.frames_per_round);
                run_learnedcache_with(&Scenario::build(sc.clone()), &cfg, drive_cfg)
            }
            Method::FoggyCache => run_foggycache_with(
                &Scenario::build(sc.clone()),
                &FoggyCacheConfig::default(),
                drive_cfg,
            ),
            Method::Smtm => {
                let cfg = SmtmConfig::from_coca(&coca);
                run_smtm_with(&Scenario::build(sc.clone()), &cfg, drive_cfg)
            }
            Method::ReplacementLru => run_replacement_with(
                &Scenario::build(sc.clone()),
                ReplacementPolicy::Lru,
                SPEC_REPLACEMENT_ENTRIES,
                SPEC_REPLACEMENT_LAYERS,
                drive_cfg,
            ),
            Method::Coca => {
                let mut coca = coca;
                coca.round_frames = drive_cfg.frames_per_round;
                let mut engine_cfg = EngineConfig::new(coca);
                engine_cfg.rounds = drive_cfg.rounds;
                engine_cfg.link = drive_cfg.link;
                engine_cfg.boot_window_ms = drive_cfg.boot_window_ms;
                let mut engine = Engine::new(Scenario::build(sc.clone()), engine_cfg);
                MethodReport::from_engine("CoCa", engine.run())
            }
        }
    }

    /// Runs this method under a materialized [`ScenarioSpec`] pair — the
    /// dynamic-scenario twin of [`Method::run`]. `coca.round_frames` must
    /// already equal the spec's `frames_per_round`.
    fn run_plan(
        self,
        scenario: Scenario,
        plan: &coca_core::DrivePlan,
        coca: CocaConfig,
    ) -> MethodReport {
        match self {
            Method::EdgeOnly => run_edge_only_plan(&scenario, plan),
            Method::LearnedCache => {
                let cfg = LearnedCacheConfig::for_model(coca.theta, plan.frames_per_round);
                run_learnedcache_plan(&scenario, &cfg, plan)
            }
            Method::FoggyCache => {
                run_foggycache_plan(&scenario, &FoggyCacheConfig::default(), plan)
            }
            Method::Smtm => run_smtm_plan(&scenario, &SmtmConfig::from_coca(&coca), plan),
            Method::ReplacementLru => run_replacement_plan(
                &scenario,
                ReplacementPolicy::Lru,
                SPEC_REPLACEMENT_ENTRIES,
                SPEC_REPLACEMENT_LAYERS,
                plan,
            ),
            Method::Coca => {
                let mut engine = Engine::new(scenario, EngineConfig::new(coca));
                MethodReport::from_engine("CoCa", engine.run_plan(plan))
            }
        }
    }
}

/// Converts an engine report into the common method report shape.
pub fn coca_method_report(name: &str, r: EngineReport) -> MethodReport {
    MethodReport::from_engine(name, r)
}

/// Runs CoCa (the full engine) over a freshly built scenario.
pub fn run_coca(sc: &ScenarioConfig, coca: CocaConfig, spec: RunSpec) -> MethodReport {
    let report = run_coca_engine(sc, coca, spec).1;
    coca_method_report("CoCa", report)
}

/// Runs CoCa and also returns the engine (for post-run inspection).
pub fn run_coca_engine(
    sc: &ScenarioConfig,
    mut coca: CocaConfig,
    spec: RunSpec,
) -> (Engine, EngineReport) {
    coca.round_frames = spec.frames;
    let mut engine_cfg = EngineConfig::new(coca);
    engine_cfg.rounds = spec.rounds;
    let mut engine = Engine::new(Scenario::build(sc.clone()), engine_cfg);
    let report = engine.run();
    (engine, report)
}

/// Runs all five methods of the paper's comparison tables **in parallel**,
/// returned in the paper's reporting order: Edge-Only, LearnedCache,
/// FoggyCache, SMTM, CoCa. Each method rebuilds the scenario from `sc`, so
/// every row of the comparison consumed byte-identical frame streams.
pub fn run_all_methods(sc: &ScenarioConfig, coca: CocaConfig, spec: RunSpec) -> Vec<MethodReport> {
    let drive_cfg = DriveConfig::new(spec.rounds, spec.frames);
    let methods = vec![
        Method::EdgeOnly,
        Method::LearnedCache,
        Method::FoggyCache,
        Method::Smtm,
        Method::Coca,
    ];
    parallel_sweep(methods, |m| m.run(sc, coca, &drive_cfg))
}

/// Runs **all six methods** (Edge-Only, LearnedCache, FoggyCache, SMTM,
/// Replacement-LRU, CoCa) over one shared [`ScenarioSpec`] — dynamics
/// timeline included — in parallel. Every job re-materializes the spec,
/// so each row consumed byte-identical frame streams under identical
/// churn, drift and link conditions (the reports' `frame_digest`s agree).
pub fn run_all_methods_spec(spec: &ScenarioSpec, coca: CocaConfig) -> Vec<MethodReport> {
    let mut coca = coca;
    coca.round_frames = spec.frames_per_round;
    let methods = vec![
        Method::EdgeOnly,
        Method::LearnedCache,
        Method::FoggyCache,
        Method::Smtm,
        Method::ReplacementLru,
        Method::Coca,
    ];
    parallel_sweep(methods, move |m| {
        let (scenario, plan) = spec.materialize();
        m.run_plan(scenario, &plan, coca)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    #[test]
    fn all_five_run_on_identical_streams() {
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 2;
        sc.seed = 200;
        let coca = CocaConfig::for_model(ModelId::ResNet101);
        let spec = RunSpec {
            rounds: 2,
            frames: 80,
        };
        let reports = run_all_methods(&sc, coca, spec);
        assert_eq!(reports.len(), 5);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Edge-Only", "LearnedCache", "FoggyCache", "SMTM", "CoCa"]
        );
        for r in &reports {
            assert_eq!(r.frames, 2 * 2 * 80, "{}", r.name);
            // The engine digest proves identical streams across methods.
            assert_eq!(r.frame_digest, reports[0].frame_digest, "{}", r.name);
        }
        // Edge-Only is the latency ceiling (within noise).
        let edge = reports[0].mean_latency_ms;
        for r in &reports[1..] {
            assert!(
                r.mean_latency_ms <= edge * 1.15,
                "{} at {}",
                r.name,
                r.mean_latency_ms
            );
        }
    }

    #[test]
    fn six_method_spec_run_shares_one_digest() {
        use coca_core::spec::ScenarioSpec;
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 2;
        sc.seed = 202;
        let spec = ScenarioSpec::new(sc, 1, 40).join(3_000.0, 1).leave(0, 1);
        let coca = CocaConfig::for_model(ModelId::ResNet101);
        let reports = run_all_methods_spec(&spec, coca);
        assert_eq!(reports.len(), 6);
        let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Edge-Only",
                "LearnedCache",
                "FoggyCache",
                "SMTM",
                "LRU",
                "CoCa"
            ]
        );
        for r in &reports {
            assert_eq!(r.frames, 3 * 40, "{}", r.name);
            assert_eq!(r.frame_digest, reports[0].frame_digest, "{}", r.name);
            assert!(!r.windowed.is_empty(), "{} has no windowed series", r.name);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        sc.num_clients = 2;
        sc.seed = 201;
        let coca = CocaConfig::for_model(ModelId::ResNet101);
        let spec = RunSpec {
            rounds: 2,
            frames: 60,
        };
        let seeds: Vec<u64> = (0..6).collect();
        let parallel = parallel_sweep(seeds.clone(), |s| {
            let mut sc = sc.clone();
            sc.seed = 400 + s;
            run_coca(&sc, coca, spec)
        });
        let serial: Vec<MethodReport> = seeds
            .iter()
            .map(|&s| {
                let mut sc = sc.clone();
                sc.seed = 400 + s;
                run_coca(&sc, coca, spec)
            })
            .collect();
        for (p, q) in parallel.iter().zip(&serial) {
            assert_eq!(p.mean_latency_ms, q.mean_latency_ms);
            assert_eq!(p.accuracy_pct, q.accuracy_pct);
            assert_eq!(p.hit_ratio, q.hit_ratio);
            assert_eq!(p.frame_digest, q.frame_digest);
        }
    }
}
