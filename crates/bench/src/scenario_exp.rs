//! Shared plumbing for the dynamic-scenario experiment binaries
//! (`exp_scenario`, `exp_churn`, `exp_drift`): run all six methods over
//! one [`ScenarioSpec`], print overall + windowed tables, and persist
//! both the experiment record and the spec JSON it was driven by.

use std::path::PathBuf;

use coca_core::spec::{ScenarioEvent, ScenarioSpec};
use coca_core::CocaConfig;
use coca_metrics::table::fmt_f;
use coca_metrics::windowed::WindowStats;
use coca_metrics::{ExperimentRecord, Table};
use serde_json::json;

use crate::harness::run_all_methods_spec;
use crate::output::{results_dir, save_record};

/// Directory where canonical scenario-spec JSON files land
/// (`results/specs/`); `exp_scenario` replays them.
pub fn specs_dir() -> PathBuf {
    results_dir().join("specs")
}

/// Writes the spec's canonical JSON to `results/specs/<name>.json` so the
/// experiment is replayable via `exp_scenario`. Prints the path.
pub fn save_spec(name: &str, spec: &ScenarioSpec) {
    let dir = specs_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, spec.to_json()) {
        Ok(()) => println!("[spec saved to {}]", path.display()),
        Err(e) => eprintln!("warning: could not save spec: {e}"),
    }
}

/// One-line description of the timeline's composition.
pub fn timeline_summary(spec: &ScenarioSpec) -> String {
    let (mut joins, mut leaves, mut shifts, mut links, mut speeds, mut migrations) =
        (0, 0, 0, 0, 0, 0);
    for ev in &spec.timeline {
        match ev {
            ScenarioEvent::Join(_) => joins += 1,
            ScenarioEvent::Leave(_) => leaves += 1,
            ScenarioEvent::PopularityShift(_) => shifts += 1,
            ScenarioEvent::LinkChange(_) => links += 1,
            ScenarioEvent::DeviceSpeed(_) => speeds += 1,
            ScenarioEvent::Migrate(_) => migrations += 1,
        }
    }
    let speeds = if speeds > 0 {
        format!(", {speeds} device speeds")
    } else {
        String::new()
    };
    let migrations = if migrations > 0 {
        format!(", {migrations} migrations")
    } else {
        String::new()
    };
    let cells = spec
        .topology
        .as_ref()
        .map(|t| format!(", {} cells", t.num_cells()))
        .unwrap_or_default();
    format!(
        "{} base clients + {joins} joins, {leaves} leaves, {shifts} popularity shifts, \
         {links} link changes{speeds}{migrations}{cells} ({} rounds x {} frames)",
        spec.scenario.num_clients, spec.rounds, spec.frames_per_round
    )
}

/// Merges `windows` into contiguous groups of `stride` buckets (summing
/// counts) so wide runs still print as one table row. Every method's row
/// must use the same stride so columns share a time axis.
fn group_windows(windows: &[WindowStats], stride: usize) -> Vec<WindowStats> {
    windows
        .chunks(stride.max(1))
        .map(|chunk| {
            let mut acc = WindowStats::default();
            for w in chunk {
                acc.frames += w.frames;
                acc.correct += w.correct;
                acc.hits += w.hits;
                acc.latency_sum_ms += w.latency_sum_ms;
            }
            acc
        })
        .collect()
}

/// Runs all six methods over `spec`, prints the overall comparison and the
/// windowed hit-ratio / latency series, and saves an [`ExperimentRecord`]
/// named `name`. Asserts the cross-method digest invariant before
/// reporting anything.
pub fn run_spec_experiment(name: &str, title: &str, spec: &ScenarioSpec, coca: CocaConfig) {
    let reports = compute_spec_reports(spec, coca);
    render_spec_experiment(name, title, spec, &reports);
}

/// The compute half of [`run_spec_experiment`]: runs all six methods and
/// asserts the cross-method digest invariant, printing nothing. Directory
/// sweeps fan these out over `parallel_sweep` and render sequentially so
/// per-spec tables never interleave.
pub fn compute_spec_reports(
    spec: &ScenarioSpec,
    coca: CocaConfig,
) -> Vec<coca_baselines::MethodReport> {
    let reports = run_all_methods_spec(spec, coca);
    let digest = reports[0].frame_digest;
    for r in &reports {
        assert_eq!(
            r.frame_digest, digest,
            "{} consumed a different frame stream — fairness violated",
            r.name
        );
    }
    reports
}

/// The render half of [`run_spec_experiment`]: prints the tables and saves
/// the [`ExperimentRecord`].
pub fn render_spec_experiment(
    name: &str,
    title: &str,
    spec: &ScenarioSpec,
    reports: &[coca_baselines::MethodReport],
) {
    println!("{title}");
    println!("{}", timeline_summary(spec));
    let digest = reports[0].frame_digest;

    let mut record = ExperimentRecord::new(name, title);
    record
        .param("spec", serde_json::to_value(spec).unwrap())
        .param("frame_digest", json!(format!("{digest:016x}")));

    let mut overall = Table::new(
        format!("{name} — overall (all six methods, one shared ScenarioSpec)"),
        &[
            "Method",
            "Frames",
            "Mean lat. (ms)",
            "p95 (ms)",
            "Accuracy (%)",
            "Hit ratio",
        ],
    );
    for r in reports {
        overall.row(&[
            r.name.clone(),
            r.frames.to_string(),
            fmt_f(r.mean_latency_ms, 2),
            fmt_f(r.latency.p95_ms().unwrap_or(0.0), 2),
            fmt_f(r.accuracy_pct, 2),
            fmt_f(r.hit_ratio, 3),
        ]);
        record.push_row(&[
            ("method", json!(r.name)),
            ("frames", json!(r.frames)),
            ("latency_ms", json!(r.mean_latency_ms)),
            ("accuracy_pct", json!(r.accuracy_pct)),
            ("hit_ratio", json!(r.hit_ratio)),
        ]);
    }
    print!("{}", overall.render());

    // Windowed series: one grouped-window table per metric, methods as
    // rows. Grouping keeps long runs readable; the record stores the raw
    // (ungrouped) series.
    const MAX_COLS: usize = 10;
    let window_ms = spec.metrics_window_ms;
    let longest = reports.iter().map(|r| r.windowed.len()).max().unwrap_or(0);
    let stride = longest.div_ceil(MAX_COLS).max(1);
    let cols = longest.div_ceil(stride);
    let span_s = window_ms * stride as f64 / 1000.0;
    let headers: Vec<String> = std::iter::once("Method".to_string())
        .chain((0..cols).map(|i| format!("{:.0}s", i as f64 * span_s)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut hit_table = Table::new(
        format!("{name} — windowed hit ratio (window start, {span_s:.0} s buckets)"),
        &headers_ref,
    );
    let mut lat_table = Table::new(format!("{name} — windowed mean latency (ms)"), &headers_ref);
    for r in reports {
        let grouped = group_windows(r.windowed.windows(), stride);
        let mut hit_row = vec![r.name.clone()];
        let mut lat_row = vec![r.name.clone()];
        for g in &grouped {
            hit_row.push(if g.frames == 0 {
                "-".into()
            } else {
                fmt_f(g.hit_ratio(), 3)
            });
            lat_row.push(if g.frames == 0 {
                "-".into()
            } else {
                fmt_f(g.mean_latency_ms(), 2)
            });
        }
        hit_row.resize(cols + 1, "-".into());
        lat_row.resize(cols + 1, "-".into());
        hit_table.row(&hit_row);
        lat_table.row(&lat_row);
        for (i, w) in r.windowed.windows().iter().enumerate() {
            record.push_row(&[
                ("method", json!(r.name)),
                ("window", json!(i)),
                ("window_start_ms", json!(i as f64 * window_ms)),
                ("frames", json!(w.frames)),
                ("hit_ratio", json!(w.hit_ratio())),
                ("latency_ms", json!(w.mean_latency_ms())),
                ("accuracy_pct", json!(w.accuracy_pct())),
            ]);
        }
    }
    print!("{}", hit_table.render());
    print!("{}", lat_table.render());
    println!("frame digest {digest:016x} — identical for all six methods.");
    save_record(&record);
}
