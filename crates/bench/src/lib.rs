//! # coca-bench — the experiment harness
//!
//! One binary per paper table/figure (`src/bin/exp_*.rs`) plus shared
//! plumbing here:
//!
//! * [`harness`] — method runners: CoCa (via the core engine) and every
//!   baseline, all consuming the *same* [`coca_core::engine::Scenario`] so
//!   results are comparable frame-for-frame.
//! * [`output`] — result directory conventions and printing helpers.
//! * [`scenario_exp`] — the dynamic-scenario runner shared by
//!   `exp_scenario` (generic, JSON-driven), `exp_churn` and `exp_drift`.
//! * [`seed_ref`] — the seed (boxed-row) server data plane, kept as the
//!   shared measurement reference for the server-core benches.
//!
//! Run e.g. `cargo run --release -p coca-bench --bin exp_table2`, or a
//! declarative scenario via
//! `cargo run --release -p coca-bench --bin exp_scenario -- results/specs/churn.json`.

pub mod harness;
pub mod output;
pub mod scenario_exp;
pub mod seed_ref;
