//! The seed (pre-columnar) server data plane, reimplemented verbatim as
//! the **measurement reference** for the server-core benches: boxed
//! `Option<Vec<f32>>` cells, uploads as `HashMap<(class, layer), vector>`
//! (the seed `UpdateTable` shape, iterated in hash order), per-cell
//! `scale`/`axpy`/`normalize` merge, per-cell `to_vec` + `insert`
//! extraction. `cargo bench`'s server grid and `exp_fleet`'s merge-mode
//! sweep both price their improvements against this path, so the
//! reference lives here once instead of being copied per consumer.
//!
//! Not wired into any engine — it exists to be measured against.

use std::collections::HashMap;

use coca_core::{CacheLayer, LocalCache};
use coca_math::vector::{axpy, l2_normalize, scale};

/// The seed upload shape: tuple-keyed boxed rows.
pub type SeedUpload = HashMap<(u32, u32), Vec<f32>>;

/// The seed global table: one boxed row per populated cell.
pub struct SeedTable {
    /// Class rows.
    pub classes: usize,
    /// Layer columns.
    pub layers: usize,
    /// Row-major boxed cells (`class * layers + layer`).
    pub entries: Vec<Option<Vec<f32>>>,
    /// Φ — global class frequencies.
    pub frequency: Vec<u64>,
}

impl SeedTable {
    /// An empty `classes × layers` table.
    pub fn new(classes: usize, layers: usize) -> Self {
        Self {
            classes,
            layers,
            entries: vec![None; classes * layers],
            frequency: vec![0; classes],
        }
    }

    fn idx(&self, class: usize, layer: usize) -> usize {
        class * self.layers + layer
    }

    /// Seeds one cell (normalized on insertion, like the live table).
    pub fn set(&mut self, class: usize, layer: usize, mut v: Vec<f32>) {
        l2_normalize(&mut v);
        let i = self.idx(class, layer);
        self.entries[i] = Some(v);
    }

    /// The seed Eq. 4/5 merge: per-cell scale → axpy → normalize in the
    /// upload map's hash order.
    pub fn merge_update(&mut self, u: &SeedUpload, phi: &[u64], gamma: f32) {
        for (&(class, layer), vector) in u.iter() {
            let (class, layer) = (class as usize, layer as usize);
            if class >= self.classes || layer >= self.layers {
                continue;
            }
            let phi_i = phi[class] as f32;
            if phi_i <= 0.0 {
                continue;
            }
            let cap_phi = self.frequency[class] as f32;
            let i = self.idx(class, layer);
            match &mut self.entries[i] {
                Some(e) => {
                    let w_old = gamma * cap_phi / (cap_phi + phi_i);
                    let w_new = phi_i / (cap_phi + phi_i);
                    scale(w_old, e);
                    axpy(w_new, vector, e);
                    l2_normalize(e);
                }
                None => {
                    let mut v = vector.to_vec();
                    l2_normalize(&mut v);
                    self.entries[i] = Some(v);
                }
            }
        }
        for (f, &p) in self.frequency.iter_mut().zip(phi) {
            *f += p;
        }
    }

    /// The seed extraction: per-cell `to_vec` + `insert`.
    pub fn extract(&self, layers: &[usize], classes: &[usize]) -> LocalCache {
        let mut out = Vec::with_capacity(layers.len());
        for &layer in layers {
            let mut cl = CacheLayer::new(layer);
            for &class in classes {
                if let Some(v) = self.entries[self.idx(class, layer)].as_deref() {
                    cl.insert(class, v.to_vec());
                }
            }
            if !cl.is_empty() {
                out.push(cl);
            }
        }
        LocalCache::from_layers(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_table_merges_and_extracts() {
        let mut t = SeedTable::new(2, 2);
        t.set(0, 0, vec![1.0, 0.0]);
        t.frequency[0] = 10;
        let mut up = SeedUpload::new();
        up.insert((0, 0), vec![0.0, 1.0]);
        up.insert((1, 1), vec![0.6, 0.8]);
        t.merge_update(&up, &[5, 3], 0.99);
        assert_eq!(t.frequency, vec![15, 3]);
        let cache = t.extract(&[0, 1], &[0, 1]);
        assert_eq!(cache.num_layers(), 2);
    }
}
