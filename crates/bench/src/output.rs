//! Output conventions for experiment binaries.

use coca_metrics::ExperimentRecord;
use std::path::PathBuf;

/// Directory where experiment records land (workspace-relative).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Saves a record into the standard results directory and prints the path.
pub fn save_record(record: &ExperimentRecord) {
    match record.save(results_dir()) {
        Ok(path) => println!("\n[record saved to {}]", path.display()),
        Err(e) => eprintln!("warning: could not save record: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_repo_level() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(!d.to_string_lossy().contains("crates"));
    }
}
