//! Criterion micro-benchmarks over the hot paths of the reproduction:
//! semantic lookup, the fused scoring kernels vs the seed scalar cosine
//! path, ACA allocation, global-table merge, wire codec, A-LSH query,
//! end-to-end frame throughput, and the generic engine's per-frame
//! overhead (a degenerate driver through `drive()` — the event-loop tax
//! every method pays, split into stream-gen / digest / scheduling
//! components). The kernel and engine benches also refresh the committed
//! `BENCH_lookup.json` / `BENCH_engine.json` baselines at the repo root.
//!
//! Environment knobs (both used by CI):
//!
//! * `COCA_BENCH_QUICK=1` — short measurement bursts (quick mode).
//! * `COCA_BENCH_ENFORCE=1` — fail on a >25 % per-frame regression vs the
//!   committed baselines, a fused-kernel speedup below the 2.5×
//!   enforcement floor (a guard band under the committed ≥3×), or — with
//!   `--features simd` dispatch active — a `simd_kernel_speedup` geomean
//!   below 1.5× (guard band under the committed ≥2×). The absolute-ns
//!   gates are host-relative: baselines are regenerated on the machine
//!   that commits them, with the `simd` feature on.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coca_core::collect::UpdateTable;
use coca_core::driver::{
    drive, drive_plan, frame_digest, DriveConfig, DrivePlan, FrameOutcome, FrameStep, MethodDriver,
    MetricsConfig, NoMsg,
};
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::{aca, infer_with_cache, CocaConfig, LookupScratch};
use coca_data::{DatasetSpec, Frame};
use coca_math::{cosine, random_unit, ScoreScratch, VectorStore};
use coca_model::{ClientFeatureView, ModelId};
use coca_net::{decode_frame, encode_frame, WireSize};
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

/// True when CI asked for short measurement bursts.
fn quick_mode() -> bool {
    std::env::var_os("COCA_BENCH_QUICK").is_some()
}

/// True when regressions vs the committed baselines must fail the run.
fn enforce_mode() -> bool {
    std::env::var_os("COCA_BENCH_ENFORCE").is_some()
}

/// Maximum tolerated per-frame regression vs a committed baseline.
const MAX_REGRESSION: f64 = 1.25;

/// Mean ns per call of `f`, with a calibration warmup (quick mode shrinks
/// the measurement burst ~7×).
fn measure_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let target = if quick_mode() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    };
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < target / 10 || calls < 5 {
        black_box(f());
        calls += 1;
    }
    let per_call = start.elapsed().as_secs_f64() / calls as f64;
    let n = ((target.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(5, 2_000_000);
    let start = Instant::now();
    for _ in 0..n {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e9 / n as f64
}

/// Minimum of three [`measure_ns`] bursts — damps allocator/page-fault
/// outliers on measurements whose working set churns the heap.
fn measure_ns_min3<R>(mut f: impl FnMut() -> R) -> f64 {
    (0..3)
        .map(|_| measure_ns(&mut f))
        .fold(f64::INFINITY, f64::min)
}

/// Path of a committed baseline at the repo root.
fn baseline_path(name: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push(name);
    path
}

/// Parses a committed baseline file, if present.
fn read_baseline(name: &str) -> Option<serde_json::Value> {
    let text = std::fs::read_to_string(baseline_path(name)).ok()?;
    serde_json::from_str(&text).ok()
}

/// Fails the bench run (under `COCA_BENCH_ENFORCE=1`) when `current_ns`
/// regressed more than [`MAX_REGRESSION`] over `committed_ns`.
fn enforce_no_regression(label: &str, current_ns: f64, committed_ns: Option<f64>) {
    let Some(committed) = committed_ns else {
        return;
    };
    let ratio = current_ns / committed.max(1e-9);
    let verdict = if ratio > MAX_REGRESSION {
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "gate  {label:<40} {current_ns:>10.1} ns vs committed {committed:.1} ns \
         ({ratio:.2}x, {verdict})"
    );
    if enforce_mode() && ratio > MAX_REGRESSION {
        panic!(
            "{label}: {current_ns:.1} ns regressed {ratio:.2}x over the committed \
             {committed:.1} ns baseline (limit {MAX_REGRESSION}x) — \
             investigate or regenerate with `cargo bench -p coca-bench`"
        );
    }
}

fn scenario() -> Scenario {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.seed = 9001;
    sc.num_clients = 1;
    Scenario::build(sc)
}

fn bench_lookup(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let client = scenario.profiles[0].clone();
    let mut group = c.benchmark_group("semantic_lookup");
    for layers in [2usize, 6, 12] {
        let pts: Vec<usize> = (0..layers)
            .map(|i| i * rt.num_cache_points() / layers)
            .collect();
        let classes: Vec<usize> = (0..50).collect();
        let cache = table.extract(&pts, &classes);
        let mut stream = scenario.stream(0);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        group.bench_with_input(BenchmarkId::new("layers", layers), &layers, |b, _| {
            b.iter(|| {
                let f = stream.next_frame();
                infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view, &mut scratch)
            })
        });
    }
    group.finish();
}

/// Per-entry cost of the fused `score_top2` kernel over a contiguous
/// [`VectorStore`] vs the seed scalar path (`cosine` over `Vec<Vec<f32>>`
/// rows with per-frame `acc`/`acc_set` allocations), across the layer
/// shapes the paper's models produce. Refreshes `BENCH_lookup.json` and
/// gates both the absolute per-entry cost and the ≥3× speedup floor at
/// the headline point (d = 256, 64 entries).
fn bench_lookup_kernels(_c: &mut Criterion) {
    let committed = read_baseline("BENCH_lookup.json");
    let committed_fused = |dim: usize, entries: usize| -> Option<f64> {
        committed
            .as_ref()?
            .as_object()?
            .get("points")?
            .as_array()?
            .iter()
            .find(|p| {
                let o = p.as_object();
                o.and_then(|o| o.get("dim")?.as_u64()) == Some(dim as u64)
                    && o.and_then(|o| o.get("entries")?.as_u64()) == Some(entries as u64)
            })?
            .as_object()?
            .get("fused_ns_per_entry")?
            .as_f64()
    };

    let alpha = 0.85f32;
    const QUERIES: usize = 32;
    let mut points_json = Vec::new();
    let mut headline_speedup = 0.0f64;
    for &dim in &[64usize, 256] {
        for &entries in &[8usize, 64, 512] {
            let mut rng = SeedTree::new(9005)
                .child_idx("kernel", (dim * 1000 + entries) as u64)
                .rng();
            let rows: Vec<Vec<f32>> = (0..entries).map(|_| random_unit(&mut rng, dim)).collect();
            let store = VectorStore::from_rows(&rows);
            let classes: Vec<usize> = (0..entries).collect();
            let queries: Vec<Vec<f32>> = (0..QUERIES).map(|_| random_unit(&mut rng, dim)).collect();

            // The seed scalar path, shape-for-shape: per-entry cosine
            // (recomputing both norms), fresh accumulator vectors per
            // frame, best/second tracking.
            let mut qi = 0usize;
            let scalar_ns = measure_ns(|| {
                let q = &queries[qi % QUERIES];
                qi += 1;
                let mut acc = vec![0.0f32; entries];
                let mut acc_set = vec![false; entries];
                let mut best: Option<(usize, f32)> = None;
                let mut second: Option<(usize, f32)> = None;
                for (class, row) in rows.iter().enumerate() {
                    let c = cosine(q, row);
                    let prev = if acc_set[class] { acc[class] } else { 0.0 };
                    let a = c + alpha * prev;
                    acc[class] = a;
                    acc_set[class] = true;
                    match best {
                        Some((_, bv)) if a <= bv => match second {
                            Some((_, sv)) if a <= sv => {}
                            _ => second = Some((class, a)),
                        },
                        _ => {
                            second = best;
                            best = Some((class, a));
                        }
                    }
                }
                (best, second)
            });

            // The fused path: one `score_top2` pass, reusable scratch.
            let mut scratch = ScoreScratch::new();
            let mut qi = 0usize;
            let fused_ns = measure_ns(|| {
                let q = &queries[qi % QUERIES];
                qi += 1;
                scratch.begin(entries);
                store.score_top2(q, &classes, alpha, &mut scratch)
            });

            let scalar_per_entry = scalar_ns / entries as f64;
            let fused_per_entry = fused_ns / entries as f64;
            let speedup = scalar_per_entry / fused_per_entry.max(1e-9);
            if dim == 256 && entries == 64 {
                headline_speedup = speedup;
            }
            println!(
                "bench score_top2 d={dim:<4} entries={entries:<4} scalar {scalar_per_entry:>7.2} \
                 ns/entry  fused {fused_per_entry:>6.2} ns/entry  ({speedup:.1}x)"
            );
            enforce_no_regression(
                &format!("score_top2_fused_d{dim}_n{entries}"),
                fused_per_entry,
                committed_fused(dim, entries),
            );
            points_json.push(format!(
                "    {{\"dim\": {dim}, \"entries\": {entries}, \
                 \"scalar_ns_per_entry\": {scalar_per_entry:.2}, \
                 \"fused_ns_per_entry\": {fused_per_entry:.2}, \
                 \"speedup\": {speedup:.2}}}"
            ));
        }
    }

    // Speedup floor at the headline point. The committed baseline shows
    // ≥3×; enforcement uses a 2.5× guard band because the *scalar* side
    // of the ratio is the noisy one across runners (3.1–4.0× observed),
    // and a flaky gate is worse than a slightly loose one.
    println!("gate  score_top2 speedup at d=256/entries=64: {headline_speedup:.1}x (floor 2.5x)");
    if enforce_mode() && headline_speedup < 2.5 {
        panic!(
            "fused score_top2 speedup {headline_speedup:.2}x at d=256/entries=64 is below \
             the 2.5x enforcement floor over the seed scalar cosine path \
             (the committed baseline shows >=3x)"
        );
    }

    // --- Scalar-kernel vs dispatched-kernel rows (the `simd` cargo
    // feature). `matrix::scalar::*` are the canonical 8-lane kernels
    // every dispatcher falls back to; the root fns route to the AVX2
    // bodies when built with `--features simd` on an AVX2 host and to
    // the same scalar bodies otherwise (both columns then measure one
    // code path and the ratio reads ~1.0x). The scalar column is itself
    // auto-vectorized by LLVM against the x86-64 SSE2 baseline, so an
    // active ratio is honest AVX2-over-SSE, not AVX2-over-naive.
    let simd_active = coca_math::simd_active();
    const SIMD_DIM: usize = 256;
    const SIMD_ENTRIES: usize = 64;
    let mut rng = SeedTree::new(9005).child_idx("simd", SIMD_DIM as u64).rng();
    let rows: Vec<Vec<f32>> = (0..SIMD_ENTRIES)
        .map(|_| random_unit(&mut rng, SIMD_DIM))
        .collect();
    let store = VectorStore::from_rows(&rows);
    let flat = store.as_flat();
    let classes: Vec<usize> = (0..SIMD_ENTRIES).collect();
    let queries: Vec<Vec<f32>> = (0..QUERIES)
        .map(|_| random_unit(&mut rng, SIMD_DIM))
        .collect();
    let src_rows_data: Vec<Vec<f32>> = (0..SIMD_ENTRIES)
        .map(|_| random_unit(&mut rng, SIMD_DIM))
        .collect();
    let src = VectorStore::from_rows(&src_rows_data);

    // Committed per-entry ns for a simd row — only comparable when the
    // committed file was produced in the same dispatch mode.
    let committed_simd = |kernel: &str| -> Option<f64> {
        let simd = committed.as_ref()?.as_object()?.get("simd")?.as_object()?;
        if simd.get("active")?.as_bool()? != simd_active {
            return None;
        }
        simd.get("kernels")?
            .as_array()?
            .iter()
            .find(|k| k.as_object().and_then(|o| o.get("kernel")?.as_str()) == Some(kernel))?
            .as_object()?
            .get("dispatched_ns_per_entry")?
            .as_f64()
    };

    let mut qi = 0usize;
    let scalar_dot_ns = measure_ns(|| {
        let q = &queries[qi % QUERIES];
        qi += 1;
        let mut sum = 0.0f32;
        for r in 0..SIMD_ENTRIES {
            sum += coca_math::matrix::scalar::dot_unit(q, &flat[r * SIMD_DIM..(r + 1) * SIMD_DIM]);
        }
        sum
    });
    let mut qi = 0usize;
    let dispatched_dot_ns = measure_ns(|| {
        let q = &queries[qi % QUERIES];
        qi += 1;
        let mut sum = 0.0f32;
        for r in 0..SIMD_ENTRIES {
            sum += coca_math::dot_unit(q, &flat[r * SIMD_DIM..(r + 1) * SIMD_DIM]);
        }
        sum
    });

    let mut scratch = ScoreScratch::new();
    let mut qi = 0usize;
    let scalar_score_ns = measure_ns(|| {
        let q = &queries[qi % QUERIES];
        qi += 1;
        scratch.begin(SIMD_ENTRIES);
        coca_math::matrix::scalar::score_top2(flat, SIMD_DIM, q, &classes, alpha, &mut scratch)
    });
    let mut qi = 0usize;
    let dispatched_score_ns = measure_ns(|| {
        let q = &queries[qi % QUERIES];
        qi += 1;
        scratch.begin(SIMD_ENTRIES);
        coca_math::matrix::score_top2(flat, SIMD_DIM, q, &classes, alpha, &mut scratch)
    });

    // Eq. 4 merge jobs: every row merged with weight 0.9/0.1; the fused
    // renormalize keeps the destination rows unit across iterations, so
    // repeated measurement stays numerically stable.
    let mut dst = store.as_flat().to_vec();
    let job_rows: Vec<usize> = (0..SIMD_ENTRIES).collect();
    let w_old = vec![0.9f32; SIMD_ENTRIES];
    let w_new = vec![0.1f32; SIMD_ENTRIES];
    let scalar_merge_ns = measure_ns(|| {
        coca_math::matrix::scalar::merge_weighted_rows(
            &mut dst,
            SIMD_DIM,
            &job_rows,
            src.as_flat(),
            &job_rows,
            &w_old,
            &w_new,
        )
    });
    let dispatched_merge_ns = measure_ns(|| {
        coca_math::merge_weighted_rows(
            &mut dst,
            SIMD_DIM,
            &job_rows,
            src.as_flat(),
            &job_rows,
            &w_old,
            &w_new,
        )
    });

    let kernel_rows = [
        ("dot_unit", scalar_dot_ns, dispatched_dot_ns),
        ("score_top2", scalar_score_ns, dispatched_score_ns),
        ("merge_weighted_rows", scalar_merge_ns, dispatched_merge_ns),
    ];
    let mut kernels_json = Vec::new();
    let mut speedup_product = 1.0f64;
    for (kernel, scalar_ns, dispatched_ns) in kernel_rows {
        let scalar_pe = scalar_ns / SIMD_ENTRIES as f64;
        let dispatched_pe = dispatched_ns / SIMD_ENTRIES as f64;
        let speedup = scalar_pe / dispatched_pe.max(1e-9);
        speedup_product *= speedup;
        println!(
            "bench simd {kernel:<20} d={SIMD_DIM} scalar {scalar_pe:>6.2} ns/entry  \
             dispatched {dispatched_pe:>6.2} ns/entry  ({speedup:.2}x, simd {})",
            if simd_active { "on" } else { "off" }
        );
        enforce_no_regression(
            &format!("simd_{kernel}_d{SIMD_DIM}"),
            dispatched_pe,
            committed_simd(kernel),
        );
        kernels_json.push(format!(
            "      {{\"kernel\": \"{kernel}\", \"scalar_ns_per_entry\": {scalar_pe:.2}, \
             \"dispatched_ns_per_entry\": {dispatched_pe:.2}, \"speedup\": {speedup:.2}}}"
        ));
    }
    let simd_kernel_speedup = speedup_product.powf(1.0 / kernel_rows.len() as f64);
    println!(
        "gate  simd_kernel_speedup (geomean over {} kernels, d={SIMD_DIM}): \
         {simd_kernel_speedup:.2}x (floor {SIMD_SPEEDUP_FLOOR}x when simd is active)",
        kernel_rows.len()
    );
    /// Enforcement floor for the AVX2-over-scalar geomean. The committed
    /// baseline shows ≥2×; the guard band absorbs scalar-side noise on
    /// shared runners, mirroring the fused-kernel gate above.
    const SIMD_SPEEDUP_FLOOR: f64 = 1.5;
    if enforce_mode() && simd_active && simd_kernel_speedup < SIMD_SPEEDUP_FLOOR {
        panic!(
            "simd_kernel_speedup {simd_kernel_speedup:.2}x at d={SIMD_DIM} is below the \
             {SIMD_SPEEDUP_FLOOR}x enforcement floor with AVX2 dispatch active \
             (the committed baseline shows >=2x)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"lookup_kernels\",\n  \"description\": \"per-entry Eq. 1/2 scoring \
         cost: seed scalar path (cosine over Vec<Vec<f32>> rows, per-frame acc allocations) vs \
         fused score_top2 over a contiguous VectorStore with reusable scratch; the simd block \
         compares the canonical scalar kernels against the runtime-dispatched AVX2 bodies \
         (--features simd)\",\n  \
         \"unit\": \"ns_per_entry\",\n  \"points\": [\n{}\n  ],\n  \
         \"simd\": {{\n    \"active\": {simd_active},\n    \"dim\": {SIMD_DIM},\n    \
         \"entries\": {SIMD_ENTRIES},\n    \"simd_kernel_speedup\": {simd_kernel_speedup:.2},\n    \
         \"note\": \"single-core container; the scalar column is the canonical 8-lane kernel, \
         auto-vectorized by LLVM to SSE, so active speedups are AVX2-over-SSE\",\n    \
         \"kernels\": [\n{}\n    ]\n  }},\n  \
         \"regenerate\": \"cargo bench -p coca-bench --features simd\"\n}}\n",
        points_json.join(",\n"),
        kernels_json.join(",\n")
    );
    match std::fs::write(baseline_path("BENCH_lookup.json"), json) {
        Ok(()) => println!(
            "[baseline written to {}]",
            baseline_path("BENCH_lookup.json").display()
        ),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

fn bench_aca(c: &mut Criterion) {
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let mut rng = SeedTree::new(9002).rng_for("aca");
    let n = 100usize;
    let l = 34usize;
    let freq: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5000)).collect();
    let tau: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3000)).collect();
    let r: Vec<f64> = (0..l).map(|_| rng.gen_range(0.0..1.0)).collect();
    let saved: Vec<f64> = (0..l).map(|j| 40.0 * (1.0 - j as f64 / l as f64)).collect();
    let bytes: Vec<usize> = (0..l).map(|_| 512usize).collect();
    c.bench_function("aca_allocate_100c_34l", |b| {
        b.iter(|| {
            aca::allocate(
                &cfg,
                &aca::AcaInputs {
                    global_freq: &freq,
                    timestamps: &tau,
                    hit_ratio: &r,
                    saved_ms: &saved,
                    entry_bytes: &bytes,
                    budget_bytes: 96 * 1024,
                },
            )
        })
    });
}

fn bench_global_merge(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let mut table = seed_global_table(rt, scenario.seeds());
    let mut rng = SeedTree::new(9003).rng_for("merge");
    let mut upload = UpdateTable::new();
    for class in 0..50usize {
        for layer in (0..34usize).step_by(3) {
            let dim = rt.feature_dim(layer);
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            upload.absorb(class, layer, &v, 0.95);
        }
    }
    let phi: Vec<u64> = (0..50).map(|_| rng.gen_range(1u64..50)).collect();
    let mut scratch = coca_core::MergeScratch::new();
    c.bench_function("global_merge_50c_12l", |b| {
        b.iter(|| table.merge_update(&upload, &phi, 0.99, &mut scratch))
    });
}

// The seed (pre-columnar) server data plane lives in
// `coca_bench::seed_ref` — shared with `exp_fleet`'s merge-mode sweep so
// both price improvements against one reference implementation.
use coca_bench::seed_ref as seed_global;

/// Per-cell cost of the columnar server core (per-layer `VectorStore` +
/// occupancy bitmap, fused batch merge, gather extract) vs the seed
/// boxed-row layout, across a classes × layers × fleet-size grid at a
/// fixed entry dimension. Refreshes `BENCH_server.json` and gates the
/// absolute per-cell costs plus the ≥1.6× speedup floor at the headline
/// point (50 classes × 12 layers × 32 clients; the committed baseline
/// shows ≥2×).
fn bench_server_tables(_c: &mut Criterion) {
    use coca_core::collect::UpdateTable;
    use coca_core::{GlobalCacheTable, MergeScratch};

    const DIM: usize = 256;
    let committed = read_baseline("BENCH_server.json");
    let committed_summary = |key: &str| -> Option<f64> {
        committed
            .as_ref()?
            .as_object()?
            .get("summary")?
            .as_object()?
            .get(key)?
            .as_f64()
    };

    let mut points_json = Vec::new();
    let mut fused_merge_all = Vec::new();
    let mut fused_extract_all = Vec::new();
    let mut sharded_merge_all = Vec::new();
    let mut combined_speedups = Vec::new();
    let mut batched_speedups_at_scale = Vec::new();
    // 200 classes × deep layer stacks (34 = ResNet101's preset cache
    // points) is the fleet-scale regime the columnar layout targets: the
    // table outgrows cache and the seed path's hash-ordered scatter over
    // boxed rows starts paying full-latency misses, while the per-layer
    // batched pass keeps one layer's store hot.
    for &classes in &[20usize, 50, 200] {
        for &layers in &[4usize, 12, 34] {
            for &fleet in &[8usize, 32] {
                let mut rng = SeedTree::new(9006)
                    .child_idx("server", (classes * 10_000 + layers * 100 + fleet) as u64)
                    .rng();
                // Fully seeded tables in both layouts (the post-seeding
                // steady state every round works against).
                let mut columnar = GlobalCacheTable::new(classes, layers);
                let mut seed = seed_global::SeedTable::new(classes, layers);
                for c in 0..classes {
                    for l in 0..layers {
                        let v = random_unit(&mut rng, DIM);
                        columnar.set(c, l, v.clone());
                        seed.set(c, l, v);
                    }
                }
                let prior: Vec<u64> = vec![6; classes];
                columnar.seed_frequency(&prior);
                seed.frequency.copy_from_slice(&prior);

                // One round of uploads: every client touches every layer
                // on ~40 % of the classes. Each upload is built in both
                // shapes — the columnar per-layer table and the seed
                // tuple-keyed boxed map — so each path consumes its own
                // era's structure.
                let uploads: Vec<(UpdateTable, seed_global::SeedUpload, Vec<u64>)> = (0..fleet)
                    .map(|k| {
                        let mut u = UpdateTable::new();
                        let mut boxed = seed_global::SeedUpload::new();
                        for c in 0..classes {
                            if (c + k) % 5 < 2 {
                                for l in 0..layers {
                                    let v = random_unit(&mut rng, DIM);
                                    u.absorb(c, l, &v, 0.95);
                                    boxed.insert(
                                        (c as u32, l as u32),
                                        u.get(c, l).unwrap().to_vec(),
                                    );
                                }
                            }
                        }
                        let phi: Vec<u64> = (0..classes).map(|_| rng.gen_range(1u64..50)).collect();
                        (u, boxed, phi)
                    })
                    .collect();
                let merge_cells: usize = uploads.iter().map(|(u, _, _)| u.len()).sum();

                // Steady-state merge cost: repeated merging into the live
                // table (Φ grows, per-cell work is constant).
                let mut scratch = MergeScratch::new();
                let fused_merge_ns = measure_ns_min3(|| {
                    for (u, _, phi) in &uploads {
                        columnar.merge_update(u, phi, 0.99, &mut scratch);
                    }
                }) / merge_cells as f64;
                let batch: Vec<(&UpdateTable, &[u64])> = uploads
                    .iter()
                    .map(|(u, _, phi)| (u, phi.as_slice()))
                    .collect();
                let batched_merge_ns = measure_ns_min3(|| {
                    columnar.merge_batch(&batch, 0.99, &mut scratch);
                }) / merge_cells as f64;
                // The rayon layer-sharded pass at a fixed 2-worker width
                // (deterministic across hosts; bit-identical to the
                // serial pass at any width). On a single-core runner
                // this mostly prices the spawn overhead — the gate below
                // is a regression guard, not a speedup claim.
                let shard_pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(2)
                    .build()
                    .expect("shim pool build is infallible");
                let sharded_merge_ns = measure_ns_min3(|| {
                    shard_pool.install(|| columnar.merge_batch_sharded(&batch, 0.99, &mut scratch));
                }) / merge_cells as f64;
                let seed_merge_ns = measure_ns_min3(|| {
                    for (_, boxed, phi) in &uploads {
                        seed.merge_update(boxed, phi, 0.99);
                    }
                }) / merge_cells as f64;

                // Extraction: one ACA-shaped personalized sub-table per
                // fleet member — half the classes (the hot set) at a
                // spread of the layers, the allocation-phase read path.
                let sel_layers: Vec<usize> = (0..layers).step_by(3).collect();
                let sel_classes: Vec<usize> = (0..classes).step_by(2).collect();
                let extract_cells = (sel_classes.len() * sel_layers.len() * fleet) as f64;
                let fused_extract_ns = measure_ns_min3(|| {
                    for _ in 0..fleet {
                        black_box(columnar.extract(&sel_layers, &sel_classes));
                    }
                }) / extract_cells;
                let seed_extract_ns = measure_ns_min3(|| {
                    for _ in 0..fleet {
                        black_box(seed.extract(&sel_layers, &sel_classes));
                    }
                }) / extract_cells;

                let merge_speedup = seed_merge_ns / fused_merge_ns.max(1e-9);
                let extract_speedup = seed_extract_ns / fused_extract_ns.max(1e-9);
                let combined = (seed_merge_ns + seed_extract_ns)
                    / (fused_merge_ns + fused_extract_ns).max(1e-9);
                fused_merge_all.push(fused_merge_ns);
                fused_extract_all.push(fused_extract_ns);
                sharded_merge_all.push(sharded_merge_ns);
                combined_speedups.push(combined);
                // Fleet-scale subset: the table no longer fits in cache
                // (≥ 2 MB of entries), the regime the batched per-layer
                // pass exists for.
                if classes * layers * DIM * 4 >= 2 << 20 {
                    batched_speedups_at_scale.push(seed_merge_ns / batched_merge_ns.max(1e-9));
                }
                println!(
                    "bench server c={classes:<3} l={layers:<3} fleet={fleet:<4} \
                     merge {seed_merge_ns:>7.1} -> {fused_merge_ns:>6.1} ns/cell \
                     ({merge_speedup:.1}x, batched {batched_merge_ns:.1}, \
                     sharded@2 {sharded_merge_ns:.1})  \
                     extract {seed_extract_ns:>6.1} -> {fused_extract_ns:>5.1} ns/cell \
                     ({extract_speedup:.1}x)"
                );
                points_json.push(format!(
                    "    {{\"classes\": {classes}, \"layers\": {layers}, \"fleet\": {fleet}, \
                     \"seed_merge_ns_per_cell\": {seed_merge_ns:.2}, \
                     \"fused_merge_ns_per_cell\": {fused_merge_ns:.2}, \
                     \"batched_merge_ns_per_cell\": {batched_merge_ns:.2}, \
                     \"sharded_merge_ns_per_cell\": {sharded_merge_ns:.2}, \
                     \"merge_speedup\": {merge_speedup:.2}, \
                     \"seed_extract_ns_per_cell\": {seed_extract_ns:.2}, \
                     \"fused_extract_ns_per_cell\": {fused_extract_ns:.2}, \
                     \"extract_speedup\": {extract_speedup:.2}}}"
                ));
            }
        }
    }

    // Grid-level gates: individual points are allocator-noise sensitive
    // in quick mode, so both the regression gates and the speedup floor
    // act on grid aggregates (arithmetic-mean ns, geometric-mean ratio).
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let geomean = |xs: &[f64]| (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp();
    let mean_merge = mean(&fused_merge_all);
    let mean_extract = mean(&fused_extract_all);
    let mean_sharded = mean(&sharded_merge_all);
    let mean_speedup = geomean(&combined_speedups);
    enforce_no_regression(
        "server_merge_grid_mean",
        mean_merge,
        committed_summary("mean_fused_merge_ns_per_cell"),
    );
    enforce_no_regression(
        "server_extract_grid_mean",
        mean_extract,
        committed_summary("mean_fused_extract_ns_per_cell"),
    );
    // The sharded pass at the fixed 2-worker width: a pure regression
    // guard (its absolute cost is spawn-overhead-dominated on single-core
    // runners; the determinism contract is what the proptests pin).
    enforce_no_regression(
        "server_sharded_merge_grid_mean",
        mean_sharded,
        committed_summary("mean_sharded_merge_ns_per_cell"),
    );
    // Headline: the fleet-scale hot path. At 200 classes the table
    // outgrows cache, and the whole-round batched per-layer merge — the
    // production form of `merge_update` at fleet scale, bit-identical to
    // the sequential order — beats the seed per-upload hash-order merge
    // by ≥2× per cell (committed baseline); enforcement uses a 1.6×
    // guard band because the seed side of the ratio is cache/allocator
    // noise dominated across runners. (The per-cell sequential grid mean
    // is reported alongside: the bit-identical arithmetic pins its
    // memory-op ratio near 8:5, so the batched locality win is where the
    // columnar layout pays at scale.)
    let batched_at_scale = geomean(&batched_speedups_at_scale);
    println!(
        "gate  server fleet-scale batched-merge speedup (table >= 2 MB): \
         {batched_at_scale:.2}x (floor 1.6x); sequential merge+extract grid-mean \
         {mean_speedup:.2}x; grid-mean fused merge {mean_merge:.1} ns/cell, \
         extract {mean_extract:.1} ns/cell"
    );
    if enforce_mode() && batched_at_scale < 1.6 {
        panic!(
            "columnar server fleet-scale batched-merge speedup {batched_at_scale:.2}x is \
             below the 1.6x enforcement floor over the seed boxed-row path (the committed \
             baseline shows >=2x)"
        );
    }

    // -- durability: snapshot + WAL throughput -----------------------------
    // Priced on a mid-grid state (50 classes × 12 layers × dim 256, a
    // 32-client registry, an 8-upload pending queue): frame encode of the
    // full checksummed snapshot, decode+validate of the same bytes, WAL
    // record append through a Durability over MemStorage, and the replay
    // decode (frame scan + CRC + JSON→record). These price the recovery
    // subsystem's hot paths; `tests/proptest_recovery.rs` pins their
    // semantics.
    let (snapshot_bytes, snap_encode_ns, snap_decode_ns, wal_append_ns, wal_replay_ns) = {
        use coca_core::persist::{decode_frames, Durability, MemStorage, Snapshot, WalRecord};
        use coca_core::proto::UpdateUpload;
        use coca_core::ClientStatus;
        use coca_model::ModelId;

        const P_CLASSES: usize = 50;
        const P_LAYERS: usize = 12;
        let mut rng = SeedTree::new(9007).child("persist").rng();
        let mut global = coca_core::GlobalCacheTable::new(P_CLASSES, P_LAYERS);
        for c in 0..P_CLASSES {
            for l in 0..P_LAYERS {
                global.set(c, l, random_unit(&mut rng, DIM));
            }
        }
        global.seed_frequency(&vec![6; P_CLASSES]);
        let clients: Vec<(u64, ClientStatus)> = (0..32u64)
            .map(|id| {
                let mut st = ClientStatus::new(P_CLASSES);
                let tau: Vec<u32> = (0..P_CLASSES).map(|_| rng.gen_range(0..500)).collect();
                let phi: Vec<u64> = (0..P_CLASSES).map(|_| rng.gen_range(0..80)).collect();
                st.record_timestamps(&tau);
                st.record_frequency(&phi);
                (id, st)
            })
            .collect();
        let mk_upload = |rng: &mut rand::rngs::SmallRng, id: u64| {
            let mut table = UpdateTable::new();
            for c in 0..P_CLASSES {
                if (c as u64 + id) % 5 < 2 {
                    for l in 0..P_LAYERS {
                        let v = random_unit(rng, DIM);
                        table.absorb(c, l, &v, 0.95);
                    }
                }
            }
            UpdateUpload {
                client_id: id,
                round: 0,
                table,
                frequency: (0..P_CLASSES).map(|_| rng.gen_range(1u64..50)).collect(),
                precision: coca_math::Precision::F32,
            }
        };
        let pending: Vec<UpdateUpload> = (0..8).map(|id| mk_upload(&mut rng, id)).collect();
        let snapshot = Snapshot {
            config: CocaConfig::for_model(ModelId::ResNet101),
            global,
            clients,
            pending,
            flush_watermark: 32,
            static_alloc: None,
        };

        let bytes = snapshot.to_bytes();
        let encode_ns = measure_ns_min3(|| black_box(snapshot.to_bytes()));
        let decode_ns = measure_ns_min3(|| black_box(Snapshot::from_bytes(&bytes).unwrap()));

        let records: Vec<WalRecord> = (0..64u64)
            .map(|id| WalRecord::Upload(mk_upload(&mut rng, id)))
            .collect();
        let append_ns = measure_ns_min3(|| {
            let mut d = Durability::new(Box::new(MemStorage::new()), usize::MAX);
            for r in &records {
                d.append_frame(&r.to_frame());
            }
            black_box(d.events_logged())
        }) / records.len() as f64;
        let mut segment = Vec::new();
        for r in &records {
            segment.extend_from_slice(&r.to_frame());
        }
        let replay_ns = measure_ns_min3(|| {
            let (payloads, _, _) = decode_frames(&segment, true).unwrap();
            for p in &payloads {
                black_box(
                    serde_json::from_str::<WalRecord>(std::str::from_utf8(p).unwrap()).unwrap(),
                );
            }
        }) / records.len() as f64;
        (bytes.len(), encode_ns, decode_ns, append_ns, replay_ns)
    };
    println!(
        "bench persist snapshot {snapshot_bytes} B: encode {:.2} ms ({:.0} MB/s), \
         decode+validate {:.2} ms; WAL append {:.1} us/record, replay decode {:.1} us/record",
        snap_encode_ns / 1e6,
        snapshot_bytes as f64 / (snap_encode_ns / 1e9) / 1e6,
        snap_decode_ns / 1e6,
        wal_append_ns / 1e3,
        wal_replay_ns / 1e3,
    );
    enforce_no_regression(
        "persist_snapshot_encode_ns",
        snap_encode_ns,
        committed_summary("persist_snapshot_encode_ns"),
    );
    enforce_no_regression(
        "persist_snapshot_decode_ns",
        snap_decode_ns,
        committed_summary("persist_snapshot_decode_ns"),
    );
    enforce_no_regression(
        "persist_wal_append_ns_per_record",
        wal_append_ns,
        committed_summary("persist_wal_append_ns_per_record"),
    );
    enforce_no_regression(
        "persist_wal_replay_ns_per_record",
        wal_replay_ns,
        committed_summary("persist_wal_replay_ns_per_record"),
    );

    let json = format!(
        "{{\n  \"bench\": \"server_tables\",\n  \"description\": \"per-cell global-table cost: \
         seed boxed-row path (Vec<Option<Vec<f32>>> cells, HashMap-shaped uploads, per-cell \
         scale/axpy/normalize and to_vec+insert extraction) vs the columnar per-layer \
         VectorStore + occupancy bitmap with fused batch merge and gather extract; dim 256, \
         one round of uploads per fleet, ACA-shaped sub-table extraction\",\n  \
         \"unit\": \"ns_per_cell\",\n  \"dim\": {DIM},\n  \"summary\": {{\n    \
         \"mean_fused_merge_ns_per_cell\": {mean_merge:.2},\n    \
         \"mean_fused_extract_ns_per_cell\": {mean_extract:.2},\n    \
         \"mean_sharded_merge_ns_per_cell\": {mean_sharded:.2},\n    \
         \"geomean_merge_extract_speedup\": {mean_speedup:.2},\n    \
         \"fleet_scale_batched_merge_speedup\": {batched_at_scale:.2},\n    \
         \"persist_snapshot_bytes\": {snapshot_bytes},\n    \
         \"persist_snapshot_encode_ns\": {snap_encode_ns:.0},\n    \
         \"persist_snapshot_decode_ns\": {snap_decode_ns:.0},\n    \
         \"persist_wal_append_ns_per_record\": {wal_append_ns:.0},\n    \
         \"persist_wal_replay_ns_per_record\": {wal_replay_ns:.0}\n  }},\n  \
         \"points\": [\n{}\n  ],\n  \
         \"regenerate\": \"cargo bench -p coca-bench\"\n}}\n",
        points_json.join(",\n")
    );
    match std::fs::write(baseline_path("BENCH_server.json"), json) {
        Ok(()) => println!(
            "[baseline written to {}]",
            baseline_path("BENCH_server.json").display()
        ),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

fn bench_codec(c: &mut Criterion) {
    #[derive(serde::Serialize, serde::Deserialize)]
    struct Payload {
        id: u64,
        xs: Vec<f32>,
    }
    let msg = Payload {
        id: 42,
        xs: vec![0.5; 4096],
    };
    let bytes = encode_frame(&msg).unwrap();
    c.bench_function("codec_encode_16kB", |b| {
        b.iter(|| encode_frame(&msg).unwrap())
    });
    c.bench_function("codec_decode_16kB", |b| {
        b.iter(|| decode_frame::<Payload>(&bytes).unwrap().unwrap())
    });
}

fn bench_frame_throughput(c: &mut Criterion) {
    // End-to-end CoCa client frame processing (lookup + status + collect).
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let server_seeds = scenario.seeds();
    let server = coca_core::CocaServer::new(rt, cfg, server_seeds);
    let mut client = coca_core::CocaClient::new(
        0,
        cfg,
        rt,
        scenario.profiles[0].clone(),
        server.base_hit_profile().to_vec(),
    );
    let layers: Vec<usize> = vec![2, 6, 12, 20];
    let classes: Vec<usize> = (0..50).collect();
    client.install_cache(server.cache_for(&layers, &classes));
    let mut stream = scenario.stream(0);
    let mut scratch = LookupScratch::new();
    c.bench_function("client_frame_end_to_end", |b| {
        b.iter(|| {
            let f = stream.next_frame();
            client.process_frame(rt, &f, &mut scratch)
        })
    });
}

/// A fully degenerate method: constant compute, no server traffic. What
/// remains when it runs through `drive()` is pure engine overhead —
/// stream generation, digest folding, event scheduling, recorders.
struct NullDriver;

impl MethodDriver for NullDriver {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "Null"
    }

    fn process_frame(&mut self, _k: usize, _frame: &Frame) -> FrameStep<NoMsg> {
        FrameStep::Done(FrameOutcome {
            compute: SimDuration::from_micros(10),
            correct: true,
            hit_point: None,
        })
    }
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
    sc.seed = 9004;
    sc.num_clients = 4;
    let scenario = Scenario::build(sc);
    let cfg = DriveConfig::new(2, 250); // 4 × 2 × 250 = 2000 frames per run
    let frames: u64 = 4 * 2 * 250;
    let clients = 4usize;
    let per_client = 2 * 250usize;
    c.bench_function("engine_drive_null_2k_frames", |b| {
        b.iter(|| drive(&scenario, &mut NullDriver, &cfg))
    });

    // Explicit measurements for the committed baseline (the shim's
    // Criterion does not expose its mean), split into the engine's three
    // per-frame components so a future regression localizes immediately:
    //
    // * stream-gen — producing the same frames the drive consumes,
    // * digest    — folding every (client, frame) into the fairness digest,
    // * scheduling — everything else `drive()` does (events, recorders),
    //   obtained by subtraction from the total.
    let warmup = drive(&scenario, &mut NullDriver, &cfg);
    assert_eq!(warmup.frames, frames);
    let per_frame_ns = measure_ns(|| drive(&scenario, &mut NullDriver, &cfg)) / frames as f64;

    let stream_gen_ns = measure_ns(|| {
        let mut last = 0u64;
        for k in 0..clients {
            let mut s = scenario.stream(k);
            for _ in 0..per_client {
                last = s.next_frame().frame_seed;
            }
        }
        last
    }) / frames as f64;

    let pregen: Vec<(usize, Frame)> = (0..clients)
        .flat_map(|k| {
            let mut s = scenario.stream(k);
            (0..per_client)
                .map(move |_| (k, s.next_frame()))
                .collect::<Vec<_>>()
        })
        .collect();
    let digest_ns = measure_ns(|| {
        let mut d = 0u64;
        for (k, f) in &pregen {
            d ^= frame_digest(*k, f);
        }
        d
    }) / frames as f64;

    let scheduling_ns = (per_frame_ns - stream_gen_ns - digest_ns).max(0.0);
    println!(
        "bench {:<40} {per_frame_ns:>10.1} ns/frame (engine overhead: \
         stream-gen {stream_gen_ns:.1} + digest {digest_ns:.1} + scheduling {scheduling_ns:.1})",
        "engine_overhead_per_frame"
    );
    let committed_total = read_baseline("BENCH_engine.json")
        .as_ref()
        .and_then(|v| v.as_object()?.get("per_frame_ns")?.as_f64());
    enforce_no_regression("engine_overhead_per_frame", per_frame_ns, committed_total);

    // Fleet-scale: the full protocol cadence (request → deliver → frames
    // → upload) at 2000 members through `drive_plan` with the fleet
    // metrics mode (one aggregate summary + the mergeable histogram).
    // This is the timer wheel's load profile — thousands of pending boot
    // and delivery events — where a heap scheduler's log(n) pops show up.
    let fleet_clients = 2000usize;
    let fleet_rounds = 2usize;
    let fleet_frames = 10usize;
    let mut fsc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(10));
    fsc.seed = 9005;
    fsc.num_clients = fleet_clients;
    let fleet_scenario = Scenario::build(fsc);
    let mut fleet_plan =
        DrivePlan::from_config(&DriveConfig::new(fleet_rounds, fleet_frames), fleet_clients);
    fleet_plan.metrics = MetricsConfig {
        per_client: false,
        per_client_windowed: false,
        latency_histogram: true,
    };
    let fleet_events = (fleet_clients * fleet_rounds * (fleet_frames + 3)) as u64;
    let warm = drive_plan(&fleet_scenario, &mut FleetNullDriver, &fleet_plan);
    assert_eq!(
        warm.frames,
        (fleet_clients * fleet_rounds * fleet_frames) as u64
    );
    let fleet_per_event_ns =
        measure_ns_min3(|| drive_plan(&fleet_scenario, &mut FleetNullDriver, &fleet_plan).frames)
            / fleet_events as f64;
    println!(
        "bench {:<40} {fleet_per_event_ns:>10.1} ns/event ({fleet_clients} members, \
         {fleet_events} events per run)",
        "engine_fleet_per_event"
    );
    let committed_fleet = read_baseline("BENCH_engine.json").as_ref().and_then(|v| {
        v.as_object()?
            .get("fleet")?
            .as_object()?
            .get("per_event_ns")?
            .as_f64()
    });
    enforce_no_regression(
        "engine_fleet_per_event",
        fleet_per_event_ns,
        committed_fleet,
    );

    // Refresh the committed baseline at the repo root.
    let json = format!(
        "{{\n  \"bench\": \"engine_drive_null\",\n  \"description\": \"drive() event-loop \
         overhead per frame with a degenerate driver, split into stream generation, digest \
         folding and scheduling (events + recorders, by subtraction); the fleet section is \
         the same degenerate protocol at 2000 members through drive_plan with fleet \
         metrics (aggregate summary + histogram), in ns per event (frames + scheduled \
         request/deliver/upload events)\",\n  \
         \"clients\": 4,\n  \"rounds\": 2,\n  \"frames_per_round\": 250,\n  \
         \"per_frame_ns\": {per_frame_ns:.1},\n  \"components\": {{\n    \
         \"stream_gen_ns\": {stream_gen_ns:.1},\n    \"digest_ns\": {digest_ns:.1},\n    \
         \"scheduling_ns\": {scheduling_ns:.1}\n  }},\n  \"fleet\": {{\n    \
         \"clients\": {fleet_clients},\n    \"rounds\": {fleet_rounds},\n    \
         \"frames_per_round\": {fleet_frames},\n    \
         \"per_event_ns\": {fleet_per_event_ns:.1}\n  }},\n  \
         \"regenerate\": \"cargo bench -p coca-bench\"\n}}\n"
    );
    let path = baseline_path("BENCH_engine.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

/// Tiny fixed-size message for the fleet-scale engine bench.
#[derive(Debug, Clone, Copy)]
struct Blip;

impl WireSize for Blip {
    fn wire_bytes(&self) -> usize {
        96
    }
}

/// The degenerate driver with the full request/upload protocol cadence —
/// what `exp_fleet`'s engine sweep runs, sized down for a bench burst.
struct FleetNullDriver;

impl MethodDriver for FleetNullDriver {
    type Request = Blip;
    type Alloc = Blip;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = Blip;

    fn name(&self) -> &str {
        "FleetNull"
    }

    fn cache_request(&mut self, _k: usize) -> Option<Blip> {
        Some(Blip)
    }

    fn serve_request(&mut self, _k: usize, _req: Blip) -> (Blip, SimDuration) {
        (Blip, SimDuration::from_micros(2))
    }

    fn install(&mut self, _k: usize, _alloc: Blip) {}

    fn process_frame(&mut self, _k: usize, _frame: &Frame) -> FrameStep<NoMsg> {
        FrameStep::Done(FrameOutcome {
            compute: SimDuration::from_micros(10),
            correct: true,
            hit_point: None,
        })
    }

    fn end_round(&mut self, _k: usize) -> Option<Blip> {
        Some(Blip)
    }

    fn serve_upload(&mut self, _k: usize, _upload: Blip) -> SimDuration {
        SimDuration::from_micros(2)
    }
}

criterion_group!(
    benches,
    bench_lookup,
    bench_lookup_kernels,
    bench_aca,
    bench_global_merge,
    bench_server_tables,
    bench_codec,
    bench_frame_throughput,
    bench_engine_overhead
);
criterion_main!(benches);
