//! Criterion micro-benchmarks over the hot paths of the reproduction:
//! semantic lookup, ACA allocation, global-table merge, wire codec, A-LSH
//! query, end-to-end frame throughput, and the generic engine's per-frame
//! overhead (a degenerate driver through `drive()` — the event-loop tax
//! every method pays). The engine bench also refreshes the committed
//! `BENCH_engine.json` baseline at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coca_core::collect::UpdateTable;
use coca_core::driver::{drive, DriveConfig, FrameOutcome, FrameStep, MethodDriver, NoMsg};
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::{aca, infer_with_cache, CocaConfig};
use coca_data::{DatasetSpec, Frame};
use coca_model::{ClientFeatureView, ModelId};
use coca_net::{decode_frame, encode_frame};
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

fn scenario() -> Scenario {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.seed = 9001;
    sc.num_clients = 1;
    Scenario::build(sc)
}

fn bench_lookup(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let client = scenario.profiles[0].clone();
    let mut group = c.benchmark_group("semantic_lookup");
    for layers in [2usize, 6, 12] {
        let pts: Vec<usize> = (0..layers)
            .map(|i| i * rt.num_cache_points() / layers)
            .collect();
        let classes: Vec<usize> = (0..50).collect();
        let cache = table.extract(&pts, &classes);
        let mut stream = scenario.stream(0);
        let mut view = ClientFeatureView::new();
        group.bench_with_input(BenchmarkId::new("layers", layers), &layers, |b, _| {
            b.iter(|| {
                let f = stream.next_frame();
                infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view)
            })
        });
    }
    group.finish();
}

fn bench_aca(c: &mut Criterion) {
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let mut rng = SeedTree::new(9002).rng_for("aca");
    let n = 100usize;
    let l = 34usize;
    let freq: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5000)).collect();
    let tau: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3000)).collect();
    let r: Vec<f64> = (0..l).map(|_| rng.gen_range(0.0..1.0)).collect();
    let saved: Vec<f64> = (0..l).map(|j| 40.0 * (1.0 - j as f64 / l as f64)).collect();
    let bytes: Vec<usize> = (0..l).map(|_| 512usize).collect();
    c.bench_function("aca_allocate_100c_34l", |b| {
        b.iter(|| {
            aca::allocate(
                &cfg,
                &aca::AcaInputs {
                    global_freq: &freq,
                    timestamps: &tau,
                    hit_ratio: &r,
                    saved_ms: &saved,
                    entry_bytes: &bytes,
                    budget_bytes: 96 * 1024,
                },
            )
        })
    });
}

fn bench_global_merge(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let mut table = seed_global_table(rt, scenario.seeds());
    let mut rng = SeedTree::new(9003).rng_for("merge");
    let mut upload = UpdateTable::new();
    for class in 0..50usize {
        for layer in (0..34usize).step_by(3) {
            let dim = rt.feature_dim(layer);
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            upload.absorb(class, layer, &v, 0.95);
        }
    }
    let phi: Vec<u32> = (0..50).map(|_| rng.gen_range(1u32..50)).collect();
    c.bench_function("global_merge_50c_12l", |b| {
        b.iter(|| table.merge_update(&upload, &phi, 0.99))
    });
}

fn bench_codec(c: &mut Criterion) {
    #[derive(serde::Serialize, serde::Deserialize)]
    struct Payload {
        id: u64,
        xs: Vec<f32>,
    }
    let msg = Payload {
        id: 42,
        xs: vec![0.5; 4096],
    };
    let bytes = encode_frame(&msg).unwrap();
    c.bench_function("codec_encode_16kB", |b| {
        b.iter(|| encode_frame(&msg).unwrap())
    });
    c.bench_function("codec_decode_16kB", |b| {
        b.iter(|| decode_frame::<Payload>(&bytes).unwrap().unwrap())
    });
}

fn bench_frame_throughput(c: &mut Criterion) {
    // End-to-end CoCa client frame processing (lookup + status + collect).
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let server_seeds = scenario.seeds();
    let server = coca_core::CocaServer::new(rt, cfg, server_seeds);
    let mut client = coca_core::CocaClient::new(
        0,
        cfg,
        rt,
        scenario.profiles[0].clone(),
        server.base_hit_profile().to_vec(),
    );
    let layers: Vec<usize> = vec![2, 6, 12, 20];
    let classes: Vec<usize> = (0..50).collect();
    client.install_cache(server.cache_for(&layers, &classes));
    let mut stream = scenario.stream(0);
    c.bench_function("client_frame_end_to_end", |b| {
        b.iter(|| {
            let f = stream.next_frame();
            client.process_frame(rt, &f)
        })
    });
}

/// A fully degenerate method: constant compute, no server traffic. What
/// remains when it runs through `drive()` is pure engine overhead —
/// stream generation, digest folding, event scheduling, recorders.
struct NullDriver;

impl MethodDriver for NullDriver {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "Null"
    }

    fn process_frame(&mut self, _k: usize, _frame: &Frame) -> FrameStep<NoMsg> {
        FrameStep::Done(FrameOutcome {
            compute: SimDuration::from_micros(10),
            correct: true,
            hit_point: None,
        })
    }
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
    sc.seed = 9004;
    sc.num_clients = 4;
    let scenario = Scenario::build(sc);
    let cfg = DriveConfig::new(2, 250); // 4 × 2 × 250 = 2000 frames per run
    let frames: u64 = 4 * 2 * 250;
    c.bench_function("engine_drive_null_2k_frames", |b| {
        b.iter(|| drive(&scenario, &mut NullDriver, &cfg))
    });

    // Explicit measurement for the committed baseline (the shim's
    // Criterion does not expose its mean).
    let warmup = drive(&scenario, &mut NullDriver, &cfg);
    assert_eq!(warmup.frames, frames);
    let iters = 20u32;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(drive(&scenario, &mut NullDriver, &cfg));
    }
    let per_frame_ns = start.elapsed().as_secs_f64() * 1e9 / (iters as u64 * frames) as f64;
    println!(
        "bench {:<40} {per_frame_ns:>10.1} ns/frame (engine overhead)",
        "engine_overhead_per_frame"
    );

    // Refresh the committed baseline at the repo root.
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_engine.json");
    let json = format!(
        "{{\n  \"bench\": \"engine_drive_null\",\n  \"description\": \"drive() event-loop overhead per frame with a degenerate driver (stream gen + digest + scheduling + recorders)\",\n  \"clients\": 4,\n  \"rounds\": 2,\n  \"frames_per_round\": 250,\n  \"per_frame_ns\": {per_frame_ns:.1},\n  \"regenerate\": \"cargo bench -p coca-bench\"\n}}\n"
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

criterion_group!(
    benches,
    bench_lookup,
    bench_aca,
    bench_global_merge,
    bench_codec,
    bench_frame_throughput,
    bench_engine_overhead
);
criterion_main!(benches);
