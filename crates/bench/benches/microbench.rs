//! Criterion micro-benchmarks over the hot paths of the reproduction:
//! semantic lookup, the fused scoring kernels vs the seed scalar cosine
//! path, ACA allocation, global-table merge, wire codec, A-LSH query,
//! end-to-end frame throughput, and the generic engine's per-frame
//! overhead (a degenerate driver through `drive()` — the event-loop tax
//! every method pays, split into stream-gen / digest / scheduling
//! components). The kernel and engine benches also refresh the committed
//! `BENCH_lookup.json` / `BENCH_engine.json` baselines at the repo root.
//!
//! Environment knobs (both used by CI):
//!
//! * `COCA_BENCH_QUICK=1` — short measurement bursts (quick mode).
//! * `COCA_BENCH_ENFORCE=1` — fail on a >25 % per-frame regression vs the
//!   committed baselines, or a fused-kernel speedup below the 2.5×
//!   enforcement floor (a guard band under the committed ≥3×). The
//!   absolute-ns gates are host-relative: baselines are regenerated on
//!   the machine that commits them.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coca_core::collect::UpdateTable;
use coca_core::driver::{
    drive, frame_digest, DriveConfig, FrameOutcome, FrameStep, MethodDriver, NoMsg,
};
use coca_core::engine::{Scenario, ScenarioConfig};
use coca_core::server::seed_global_table;
use coca_core::{aca, infer_with_cache, CocaConfig, LookupScratch};
use coca_data::{DatasetSpec, Frame};
use coca_math::{cosine, random_unit, ScoreScratch, VectorStore};
use coca_model::{ClientFeatureView, ModelId};
use coca_net::{decode_frame, encode_frame};
use coca_sim::{SeedTree, SimDuration};
use rand::Rng;

/// True when CI asked for short measurement bursts.
fn quick_mode() -> bool {
    std::env::var_os("COCA_BENCH_QUICK").is_some()
}

/// True when regressions vs the committed baselines must fail the run.
fn enforce_mode() -> bool {
    std::env::var_os("COCA_BENCH_ENFORCE").is_some()
}

/// Maximum tolerated per-frame regression vs a committed baseline.
const MAX_REGRESSION: f64 = 1.25;

/// Mean ns per call of `f`, with a calibration warmup (quick mode shrinks
/// the measurement burst ~7×).
fn measure_ns<R>(mut f: impl FnMut() -> R) -> f64 {
    let target = if quick_mode() {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    };
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < target / 10 || calls < 5 {
        black_box(f());
        calls += 1;
    }
    let per_call = start.elapsed().as_secs_f64() / calls as f64;
    let n = ((target.as_secs_f64() / per_call.max(1e-9)) as u64).clamp(5, 2_000_000);
    let start = Instant::now();
    for _ in 0..n {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e9 / n as f64
}

/// Path of a committed baseline at the repo root.
fn baseline_path(name: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push(name);
    path
}

/// Parses a committed baseline file, if present.
fn read_baseline(name: &str) -> Option<serde_json::Value> {
    let text = std::fs::read_to_string(baseline_path(name)).ok()?;
    serde_json::from_str(&text).ok()
}

/// Fails the bench run (under `COCA_BENCH_ENFORCE=1`) when `current_ns`
/// regressed more than [`MAX_REGRESSION`] over `committed_ns`.
fn enforce_no_regression(label: &str, current_ns: f64, committed_ns: Option<f64>) {
    let Some(committed) = committed_ns else {
        return;
    };
    let ratio = current_ns / committed.max(1e-9);
    let verdict = if ratio > MAX_REGRESSION {
        "REGRESSED"
    } else {
        "ok"
    };
    println!(
        "gate  {label:<40} {current_ns:>10.1} ns vs committed {committed:.1} ns \
         ({ratio:.2}x, {verdict})"
    );
    if enforce_mode() && ratio > MAX_REGRESSION {
        panic!(
            "{label}: {current_ns:.1} ns regressed {ratio:.2}x over the committed \
             {committed:.1} ns baseline (limit {MAX_REGRESSION}x) — \
             investigate or regenerate with `cargo bench -p coca-bench`"
        );
    }
}

fn scenario() -> Scenario {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(50));
    sc.seed = 9001;
    sc.num_clients = 1;
    Scenario::build(sc)
}

fn bench_lookup(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let table = seed_global_table(rt, scenario.seeds());
    let client = scenario.profiles[0].clone();
    let mut group = c.benchmark_group("semantic_lookup");
    for layers in [2usize, 6, 12] {
        let pts: Vec<usize> = (0..layers)
            .map(|i| i * rt.num_cache_points() / layers)
            .collect();
        let classes: Vec<usize> = (0..50).collect();
        let cache = table.extract(&pts, &classes);
        let mut stream = scenario.stream(0);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        group.bench_with_input(BenchmarkId::new("layers", layers), &layers, |b, _| {
            b.iter(|| {
                let f = stream.next_frame();
                infer_with_cache(rt, &client, &f, &cache, &cfg, &mut view, &mut scratch)
            })
        });
    }
    group.finish();
}

/// Per-entry cost of the fused `score_top2` kernel over a contiguous
/// [`VectorStore`] vs the seed scalar path (`cosine` over `Vec<Vec<f32>>`
/// rows with per-frame `acc`/`acc_set` allocations), across the layer
/// shapes the paper's models produce. Refreshes `BENCH_lookup.json` and
/// gates both the absolute per-entry cost and the ≥3× speedup floor at
/// the headline point (d = 256, 64 entries).
fn bench_lookup_kernels(_c: &mut Criterion) {
    let committed = read_baseline("BENCH_lookup.json");
    let committed_fused = |dim: usize, entries: usize| -> Option<f64> {
        committed
            .as_ref()?
            .as_object()?
            .get("points")?
            .as_array()?
            .iter()
            .find(|p| {
                let o = p.as_object();
                o.and_then(|o| o.get("dim")?.as_u64()) == Some(dim as u64)
                    && o.and_then(|o| o.get("entries")?.as_u64()) == Some(entries as u64)
            })?
            .as_object()?
            .get("fused_ns_per_entry")?
            .as_f64()
    };

    let alpha = 0.85f32;
    const QUERIES: usize = 32;
    let mut points_json = Vec::new();
    let mut headline_speedup = 0.0f64;
    for &dim in &[64usize, 256] {
        for &entries in &[8usize, 64, 512] {
            let mut rng = SeedTree::new(9005)
                .child_idx("kernel", (dim * 1000 + entries) as u64)
                .rng();
            let rows: Vec<Vec<f32>> = (0..entries).map(|_| random_unit(&mut rng, dim)).collect();
            let store = VectorStore::from_rows(&rows);
            let classes: Vec<usize> = (0..entries).collect();
            let queries: Vec<Vec<f32>> = (0..QUERIES).map(|_| random_unit(&mut rng, dim)).collect();

            // The seed scalar path, shape-for-shape: per-entry cosine
            // (recomputing both norms), fresh accumulator vectors per
            // frame, best/second tracking.
            let mut qi = 0usize;
            let scalar_ns = measure_ns(|| {
                let q = &queries[qi % QUERIES];
                qi += 1;
                let mut acc = vec![0.0f32; entries];
                let mut acc_set = vec![false; entries];
                let mut best: Option<(usize, f32)> = None;
                let mut second: Option<(usize, f32)> = None;
                for (class, row) in rows.iter().enumerate() {
                    let c = cosine(q, row);
                    let prev = if acc_set[class] { acc[class] } else { 0.0 };
                    let a = c + alpha * prev;
                    acc[class] = a;
                    acc_set[class] = true;
                    match best {
                        Some((_, bv)) if a <= bv => match second {
                            Some((_, sv)) if a <= sv => {}
                            _ => second = Some((class, a)),
                        },
                        _ => {
                            second = best;
                            best = Some((class, a));
                        }
                    }
                }
                (best, second)
            });

            // The fused path: one `score_top2` pass, reusable scratch.
            let mut scratch = ScoreScratch::new();
            let mut qi = 0usize;
            let fused_ns = measure_ns(|| {
                let q = &queries[qi % QUERIES];
                qi += 1;
                scratch.begin(entries);
                store.score_top2(q, &classes, alpha, &mut scratch)
            });

            let scalar_per_entry = scalar_ns / entries as f64;
            let fused_per_entry = fused_ns / entries as f64;
            let speedup = scalar_per_entry / fused_per_entry.max(1e-9);
            if dim == 256 && entries == 64 {
                headline_speedup = speedup;
            }
            println!(
                "bench score_top2 d={dim:<4} entries={entries:<4} scalar {scalar_per_entry:>7.2} \
                 ns/entry  fused {fused_per_entry:>6.2} ns/entry  ({speedup:.1}x)"
            );
            enforce_no_regression(
                &format!("score_top2_fused_d{dim}_n{entries}"),
                fused_per_entry,
                committed_fused(dim, entries),
            );
            points_json.push(format!(
                "    {{\"dim\": {dim}, \"entries\": {entries}, \
                 \"scalar_ns_per_entry\": {scalar_per_entry:.2}, \
                 \"fused_ns_per_entry\": {fused_per_entry:.2}, \
                 \"speedup\": {speedup:.2}}}"
            ));
        }
    }

    // Speedup floor at the headline point. The committed baseline shows
    // ≥3×; enforcement uses a 2.5× guard band because the *scalar* side
    // of the ratio is the noisy one across runners (3.1–4.0× observed),
    // and a flaky gate is worse than a slightly loose one.
    println!("gate  score_top2 speedup at d=256/entries=64: {headline_speedup:.1}x (floor 2.5x)");
    if enforce_mode() && headline_speedup < 2.5 {
        panic!(
            "fused score_top2 speedup {headline_speedup:.2}x at d=256/entries=64 is below \
             the 2.5x enforcement floor over the seed scalar cosine path \
             (the committed baseline shows >=3x)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"lookup_kernels\",\n  \"description\": \"per-entry Eq. 1/2 scoring \
         cost: seed scalar path (cosine over Vec<Vec<f32>> rows, per-frame acc allocations) vs \
         fused score_top2 over a contiguous VectorStore with reusable scratch\",\n  \
         \"unit\": \"ns_per_entry\",\n  \"points\": [\n{}\n  ],\n  \
         \"regenerate\": \"cargo bench -p coca-bench\"\n}}\n",
        points_json.join(",\n")
    );
    match std::fs::write(baseline_path("BENCH_lookup.json"), json) {
        Ok(()) => println!(
            "[baseline written to {}]",
            baseline_path("BENCH_lookup.json").display()
        ),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

fn bench_aca(c: &mut Criterion) {
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let mut rng = SeedTree::new(9002).rng_for("aca");
    let n = 100usize;
    let l = 34usize;
    let freq: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5000)).collect();
    let tau: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3000)).collect();
    let r: Vec<f64> = (0..l).map(|_| rng.gen_range(0.0..1.0)).collect();
    let saved: Vec<f64> = (0..l).map(|j| 40.0 * (1.0 - j as f64 / l as f64)).collect();
    let bytes: Vec<usize> = (0..l).map(|_| 512usize).collect();
    c.bench_function("aca_allocate_100c_34l", |b| {
        b.iter(|| {
            aca::allocate(
                &cfg,
                &aca::AcaInputs {
                    global_freq: &freq,
                    timestamps: &tau,
                    hit_ratio: &r,
                    saved_ms: &saved,
                    entry_bytes: &bytes,
                    budget_bytes: 96 * 1024,
                },
            )
        })
    });
}

fn bench_global_merge(c: &mut Criterion) {
    let scenario = scenario();
    let rt = &scenario.rt;
    let mut table = seed_global_table(rt, scenario.seeds());
    let mut rng = SeedTree::new(9003).rng_for("merge");
    let mut upload = UpdateTable::new();
    for class in 0..50usize {
        for layer in (0..34usize).step_by(3) {
            let dim = rt.feature_dim(layer);
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            upload.absorb(class, layer, &v, 0.95);
        }
    }
    let phi: Vec<u32> = (0..50).map(|_| rng.gen_range(1u32..50)).collect();
    c.bench_function("global_merge_50c_12l", |b| {
        b.iter(|| table.merge_update(&upload, &phi, 0.99))
    });
}

fn bench_codec(c: &mut Criterion) {
    #[derive(serde::Serialize, serde::Deserialize)]
    struct Payload {
        id: u64,
        xs: Vec<f32>,
    }
    let msg = Payload {
        id: 42,
        xs: vec![0.5; 4096],
    };
    let bytes = encode_frame(&msg).unwrap();
    c.bench_function("codec_encode_16kB", |b| {
        b.iter(|| encode_frame(&msg).unwrap())
    });
    c.bench_function("codec_decode_16kB", |b| {
        b.iter(|| decode_frame::<Payload>(&bytes).unwrap().unwrap())
    });
}

fn bench_frame_throughput(c: &mut Criterion) {
    // End-to-end CoCa client frame processing (lookup + status + collect).
    let scenario = scenario();
    let rt = &scenario.rt;
    let cfg = CocaConfig::for_model(ModelId::ResNet101);
    let server_seeds = scenario.seeds();
    let server = coca_core::CocaServer::new(rt, cfg, server_seeds);
    let mut client = coca_core::CocaClient::new(
        0,
        cfg,
        rt,
        scenario.profiles[0].clone(),
        server.base_hit_profile().to_vec(),
    );
    let layers: Vec<usize> = vec![2, 6, 12, 20];
    let classes: Vec<usize> = (0..50).collect();
    client.install_cache(server.cache_for(&layers, &classes));
    let mut stream = scenario.stream(0);
    c.bench_function("client_frame_end_to_end", |b| {
        b.iter(|| {
            let f = stream.next_frame();
            client.process_frame(rt, &f)
        })
    });
}

/// A fully degenerate method: constant compute, no server traffic. What
/// remains when it runs through `drive()` is pure engine overhead —
/// stream generation, digest folding, event scheduling, recorders.
struct NullDriver;

impl MethodDriver for NullDriver {
    type Request = NoMsg;
    type Alloc = NoMsg;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = NoMsg;

    fn name(&self) -> &str {
        "Null"
    }

    fn process_frame(&mut self, _k: usize, _frame: &Frame) -> FrameStep<NoMsg> {
        FrameStep::Done(FrameOutcome {
            compute: SimDuration::from_micros(10),
            correct: true,
            hit_point: None,
        })
    }
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut sc = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
    sc.seed = 9004;
    sc.num_clients = 4;
    let scenario = Scenario::build(sc);
    let cfg = DriveConfig::new(2, 250); // 4 × 2 × 250 = 2000 frames per run
    let frames: u64 = 4 * 2 * 250;
    let clients = 4usize;
    let per_client = 2 * 250usize;
    c.bench_function("engine_drive_null_2k_frames", |b| {
        b.iter(|| drive(&scenario, &mut NullDriver, &cfg))
    });

    // Explicit measurements for the committed baseline (the shim's
    // Criterion does not expose its mean), split into the engine's three
    // per-frame components so a future regression localizes immediately:
    //
    // * stream-gen — producing the same frames the drive consumes,
    // * digest    — folding every (client, frame) into the fairness digest,
    // * scheduling — everything else `drive()` does (events, recorders),
    //   obtained by subtraction from the total.
    let warmup = drive(&scenario, &mut NullDriver, &cfg);
    assert_eq!(warmup.frames, frames);
    let per_frame_ns = measure_ns(|| drive(&scenario, &mut NullDriver, &cfg)) / frames as f64;

    let stream_gen_ns = measure_ns(|| {
        let mut last = 0u64;
        for k in 0..clients {
            let mut s = scenario.stream(k);
            for _ in 0..per_client {
                last = s.next_frame().frame_seed;
            }
        }
        last
    }) / frames as f64;

    let pregen: Vec<(usize, Frame)> = (0..clients)
        .flat_map(|k| {
            let mut s = scenario.stream(k);
            (0..per_client)
                .map(move |_| (k, s.next_frame()))
                .collect::<Vec<_>>()
        })
        .collect();
    let digest_ns = measure_ns(|| {
        let mut d = 0u64;
        for (k, f) in &pregen {
            d ^= frame_digest(*k, f);
        }
        d
    }) / frames as f64;

    let scheduling_ns = (per_frame_ns - stream_gen_ns - digest_ns).max(0.0);
    println!(
        "bench {:<40} {per_frame_ns:>10.1} ns/frame (engine overhead: \
         stream-gen {stream_gen_ns:.1} + digest {digest_ns:.1} + scheduling {scheduling_ns:.1})",
        "engine_overhead_per_frame"
    );
    let committed_total = read_baseline("BENCH_engine.json")
        .as_ref()
        .and_then(|v| v.as_object()?.get("per_frame_ns")?.as_f64());
    enforce_no_regression("engine_overhead_per_frame", per_frame_ns, committed_total);

    // Refresh the committed baseline at the repo root.
    let json = format!(
        "{{\n  \"bench\": \"engine_drive_null\",\n  \"description\": \"drive() event-loop \
         overhead per frame with a degenerate driver, split into stream generation, digest \
         folding and scheduling (events + recorders, by subtraction)\",\n  \
         \"clients\": 4,\n  \"rounds\": 2,\n  \"frames_per_round\": 250,\n  \
         \"per_frame_ns\": {per_frame_ns:.1},\n  \"components\": {{\n    \
         \"stream_gen_ns\": {stream_gen_ns:.1},\n    \"digest_ns\": {digest_ns:.1},\n    \
         \"scheduling_ns\": {scheduling_ns:.1}\n  }},\n  \
         \"regenerate\": \"cargo bench -p coca-bench\"\n}}\n"
    );
    let path = baseline_path("BENCH_engine.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("[baseline written to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write baseline: {e}"),
    }
}

criterion_group!(
    benches,
    bench_lookup,
    bench_lookup_kernels,
    bench_aca,
    bench_global_merge,
    bench_codec,
    bench_frame_throughput,
    bench_engine_overhead
);
criterion_main!(benches);
