//! Client↔server protocol messages (§IV.A workflow).
//!
//! Serializable (serde) for the real TCP deployment; each message also
//! reports its *logical* wire size — dense binary bytes — which is what the
//! virtual-time link model charges.

use coca_math::Precision;
use serde::{Deserialize, Serialize};

use coca_net::WireSize;

use crate::collect::UpdateTable;
use crate::semantic::LocalCache;

/// Step 1: the client asks for a personalized cache, attaching its status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheRequest {
    /// Requesting client.
    pub client_id: u64,
    /// Round counter (0-based).
    pub round: u64,
    /// τ — class timestamps (steps since last appearance).
    pub timestamps: Vec<u32>,
    /// R — the client's standalone per-layer hit-ratio estimates.
    pub hit_ratio: Vec<f64>,
    /// Π — the client's cache budget in bytes.
    pub budget_bytes: u64,
}

impl WireSize for CacheRequest {
    fn wire_bytes(&self) -> usize {
        8 + 8 + 4 * self.timestamps.len() + 8 * self.hit_ratio.len() + 8
    }
}

/// Step 2: the server's personalized allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheAllocation {
    /// Round this allocation answers.
    pub round: u64,
    /// The extracted sub-table of the global cache.
    pub cache: LocalCache,
    /// Precision the entry payload ships at. The `cache` values are
    /// always f32 in memory (dequantized/renormalized on extraction when
    /// the global table is quantized); this field is what the link model
    /// prices.
    pub precision: Precision,
}

impl WireSize for CacheAllocation {
    fn wire_bytes(&self) -> usize {
        // Entries dominate; plus a small header per layer (point id + class
        // ids).
        let headers: usize = self
            .cache
            .layers()
            .iter()
            .map(|l| 8 + 4 * l.classes.len())
            .sum();
        8 + headers + self.cache.total_bytes_at(self.precision)
    }
}

/// Step 3: end-of-round upload for global updates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateUpload {
    /// Uploading client.
    pub client_id: u64,
    /// Round the collection happened in.
    pub round: u64,
    /// U — the collected cache-update table (Eq. 3).
    pub table: UpdateTable,
    /// φ — per-round class frequencies (Eq. 5 input). In-memory `u64`
    /// like the rest of the Φ pipeline; a round's counts are bounded by
    /// `frames_per_round`, so the wire codec packs each as 4 bytes.
    pub frequency: Vec<u64>,
    /// Precision the table payload ships at. Under a quantized config
    /// the sender *snapped* every vector onto this precision's grid
    /// before upload (`UpdateTable::quantize_in_place`), so the f32
    /// values carried in `table` are exactly the dequantized codes.
    pub precision: Precision,
}

impl WireSize for UpdateUpload {
    fn wire_bytes(&self) -> usize {
        // φ entries ship as u32 on the wire (counts ≤ frames per round).
        8 + 8 + self.table.wire_bytes_at(self.precision) + 4 * self.frequency.len()
    }
}

/// One origin's share of a peer-sync delta: the sender's current merged
/// centroids for the classes whose Φ mass (attributed to `origin`) grew
/// since the last sync with the receiving peer, plus exactly that Φ
/// growth. Keeping deltas origin-attributed lets the receiver extend its
/// own provenance counts and lets cursor-based dedup guarantee each
/// origin's mass reaches each cell exactly once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerDeltaEntry {
    /// Cell whose clients originally uploaded this Φ mass.
    pub origin: u32,
    /// The sender's current merged view of the affected classes.
    pub table: UpdateTable,
    /// Per-class Φ growth since the last delta sent to this peer.
    pub frequency: Vec<u64>,
}

/// A cell→cell table delta ([`crate::server::CocaServer::export_delta`] →
/// [`crate::server::CocaServer::absorb_peer`]). Priced by the same wire
/// encoding as client uploads, so the topology's peer link charges sync
/// traffic and upload traffic with one cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerDelta {
    /// Sending cell.
    pub from_cell: u32,
    /// Precision the tables ship at (the sender's configured precision;
    /// vectors are snapped onto its grid before export).
    pub precision: Precision,
    /// Per-origin shares, ascending by origin cell id.
    pub entries: Vec<PeerDeltaEntry>,
}

impl PeerDelta {
    /// True iff the delta carries no mass (nothing new since last sync).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl WireSize for PeerDelta {
    fn wire_bytes(&self) -> usize {
        // 8 header (from_cell + precision tag); per entry: 8 (origin +
        // lengths) + the upload wire encoding of table and φ.
        8 + self
            .entries
            .iter()
            .map(|e| 8 + e.table.wire_bytes_at(self.precision) + 4 * e.frequency.len())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::CacheLayer;

    #[test]
    fn request_wire_size_scales_with_classes() {
        let small = CacheRequest {
            client_id: 1,
            round: 0,
            timestamps: vec![0; 10],
            hit_ratio: vec![0.1; 5],
            budget_bytes: 1,
        };
        let large = CacheRequest {
            client_id: 1,
            round: 0,
            timestamps: vec![0; 100],
            hit_ratio: vec![0.1; 34],
            budget_bytes: 1,
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        assert_eq!(small.wire_bytes(), 8 + 8 + 40 + 40 + 8);
    }

    #[test]
    fn allocation_wire_size_tracks_entries() {
        let mut layer = CacheLayer::new(3);
        layer.insert(0, vec![1.0, 0.0, 0.0, 0.0]);
        layer.insert(1, vec![0.0, 1.0, 0.0, 0.0]);
        let alloc = CacheAllocation {
            round: 2,
            cache: LocalCache::from_layers(vec![layer]),
            precision: Precision::F32,
        };
        // 8 (round) + 8 (layer header) + 2 class ids + 2 entries × 16 B.
        assert_eq!(alloc.wire_bytes(), 8 + 8 + 8 + 32);
        // Quantized pricing shrinks the payload, not the headers.
        let half = CacheAllocation {
            precision: Precision::F16,
            ..alloc.clone()
        };
        assert_eq!(half.wire_bytes(), 8 + 8 + 8 + 16);
        let tiny = CacheAllocation {
            precision: Precision::I8,
            ..alloc
        };
        assert_eq!(tiny.wire_bytes(), 8 + 8 + 8 + 2 * (4 + 4));
    }

    #[test]
    fn messages_serialize_round_trip() {
        let up = UpdateUpload {
            client_id: 3,
            round: 1,
            table: UpdateTable::new(),
            frequency: vec![1, 2, 3],
            precision: Precision::F32,
        };
        let json = serde_json::to_string(&up).unwrap();
        let back: UpdateUpload = serde_json::from_str(&json).unwrap();
        assert_eq!(back.client_id, 3);
        assert_eq!(back.frequency, vec![1, 2, 3]);
        assert_eq!(back.precision, Precision::F32);
        assert_eq!(up.wire_bytes(), (8 + 8) + 12);
    }

    #[test]
    fn quantized_upload_prices_the_smaller_payload() {
        let mut table = UpdateTable::new();
        for c in 0..4 {
            table.absorb(c, 2, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0.95);
        }
        let f32_bytes = UpdateUpload {
            client_id: 1,
            round: 0,
            table: table.clone(),
            frequency: vec![0; 8],
            precision: Precision::F32,
        }
        .wire_bytes();
        let i8_bytes = UpdateUpload {
            client_id: 1,
            round: 0,
            table,
            frequency: vec![0; 8],
            precision: Precision::I8,
        }
        .wire_bytes();
        // Payload: 4 cells × (8 key + 32 f32) vs 4 × (8 key + 8 + 4).
        assert_eq!(f32_bytes, 16 + 4 * 40 + 32);
        assert_eq!(i8_bytes, 16 + 4 * 20 + 32);
    }
}
