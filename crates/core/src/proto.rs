//! Client↔server protocol messages (§IV.A workflow).
//!
//! Serializable (serde) for the real TCP deployment; each message also
//! reports its *logical* wire size — dense binary bytes — which is what the
//! virtual-time link model charges.

use serde::{Deserialize, Serialize};

use coca_net::WireSize;

use crate::collect::UpdateTable;
use crate::semantic::LocalCache;

/// Step 1: the client asks for a personalized cache, attaching its status.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheRequest {
    /// Requesting client.
    pub client_id: u64,
    /// Round counter (0-based).
    pub round: u64,
    /// τ — class timestamps (steps since last appearance).
    pub timestamps: Vec<u32>,
    /// R — the client's standalone per-layer hit-ratio estimates.
    pub hit_ratio: Vec<f64>,
    /// Π — the client's cache budget in bytes.
    pub budget_bytes: u64,
}

impl WireSize for CacheRequest {
    fn wire_bytes(&self) -> usize {
        8 + 8 + 4 * self.timestamps.len() + 8 * self.hit_ratio.len() + 8
    }
}

/// Step 2: the server's personalized allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheAllocation {
    /// Round this allocation answers.
    pub round: u64,
    /// The extracted sub-table of the global cache.
    pub cache: LocalCache,
}

impl WireSize for CacheAllocation {
    fn wire_bytes(&self) -> usize {
        // Entries dominate; plus a small header per layer (point id + class
        // ids).
        let headers: usize = self
            .cache
            .layers()
            .iter()
            .map(|l| 8 + 4 * l.classes.len())
            .sum();
        8 + headers + self.cache.total_bytes()
    }
}

/// Step 3: end-of-round upload for global updates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateUpload {
    /// Uploading client.
    pub client_id: u64,
    /// Round the collection happened in.
    pub round: u64,
    /// U — the collected cache-update table (Eq. 3).
    pub table: UpdateTable,
    /// φ — per-round class frequencies (Eq. 5 input). In-memory `u64`
    /// like the rest of the Φ pipeline; a round's counts are bounded by
    /// `frames_per_round`, so the wire codec packs each as 4 bytes.
    pub frequency: Vec<u64>,
}

impl WireSize for UpdateUpload {
    fn wire_bytes(&self) -> usize {
        // φ entries ship as u32 on the wire (counts ≤ frames per round).
        8 + 8 + self.table.wire_bytes() + 4 * self.frequency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::CacheLayer;

    #[test]
    fn request_wire_size_scales_with_classes() {
        let small = CacheRequest {
            client_id: 1,
            round: 0,
            timestamps: vec![0; 10],
            hit_ratio: vec![0.1; 5],
            budget_bytes: 1,
        };
        let large = CacheRequest {
            client_id: 1,
            round: 0,
            timestamps: vec![0; 100],
            hit_ratio: vec![0.1; 34],
            budget_bytes: 1,
        };
        assert!(large.wire_bytes() > small.wire_bytes());
        assert_eq!(small.wire_bytes(), 8 + 8 + 40 + 40 + 8);
    }

    #[test]
    fn allocation_wire_size_tracks_entries() {
        let mut layer = CacheLayer::new(3);
        layer.insert(0, vec![1.0, 0.0, 0.0, 0.0]);
        layer.insert(1, vec![0.0, 1.0, 0.0, 0.0]);
        let alloc = CacheAllocation {
            round: 2,
            cache: LocalCache::from_layers(vec![layer]),
        };
        // 8 (round) + 8 (layer header) + 2 class ids + 2 entries × 16 B.
        assert_eq!(alloc.wire_bytes(), 8 + 8 + 8 + 32);
    }

    #[test]
    fn messages_serialize_round_trip() {
        let up = UpdateUpload {
            client_id: 3,
            round: 1,
            table: UpdateTable::new(),
            frequency: vec![1, 2, 3],
        };
        let json = serde_json::to_string(&up).unwrap();
        let back: UpdateUpload = serde_json::from_str(&json).unwrap();
        assert_eq!(back.client_id, 3);
        assert_eq!(back.frequency, vec![1, 2, 3]);
        assert_eq!(up.wire_bytes(), (8 + 8) + 12);
    }
}
