//! Sharded-lock server state for the networked daemon (`cocad`).
//!
//! [`CocaServer`](crate::CocaServer) is `&mut self` through and through —
//! correct for the simulator's single event loop, but a networked daemon
//! wants concurrent readers. [`ShardedServer`] is the same CoCa method
//! re-plumbed for shared access:
//!
//! * the global cache table is split into per-layer
//!   [`LayerShard`]s, each behind its own `RwLock` — a cache request
//!   read-locks only the layers its allocation extracts, so concurrent
//!   requests on disjoint layers never serialize;
//! * Φ (the global class-frequency vector) lives behind a separate
//!   mutex — allocations snapshot it without touching any layer;
//! * uploads enqueue into a mutex-guarded FIFO pending queue (the
//!   queue-and-flush ingest path; the push holds the queue lock for an
//!   `O(1)` append — the vendored crossbeam channel is itself a
//!   mutex-backed deque, so this is as lock-free-ish as this toolchain
//!   gets) and a **single-flusher gate** drains it through the per-layer
//!   batched pass, write-locking one shard at a time.
//!
//! ## Determinism contract
//!
//! Every merge delegates to the exact private Eq. 4 primitive the
//! unsharded table uses, with the same prefix-Φ weighting
//! ([`GlobalCacheTable::merge_batch`]'s schedule). Driven with one
//! operation in flight at a time, a `ShardedServer` finishes with the
//! **same table digest** as a [`CocaServer`](crate::CocaServer) fed the
//! identical sequence (pinned in the tests below and in the daemon's
//! loopback tests). Under real concurrency the *interleaving* of
//! operations is scheduling-dependent — what arrives is merged exactly,
//! in the order the flusher drains it.
//!
//! Cross-operation atomicity is relaxed to layer granularity: a request
//! that extracts layers `{2, 5}` may observe layer 2 pre-flush and
//! layer 5 post-flush if a flush runs between its two read-locks. That
//! is the documented relaxed-observation contract of
//! [`FlushPolicy::RoundAligned`] extended to the wall-clock world; Φ
//! itself is always read atomically (one mutex).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use coca_model::ModelRuntime;
use coca_sim::SeedTree;

use crate::aca::{allocate, AcaInputs};
use crate::config::{CocaConfig, FlushPolicy, MergeMode};
use crate::global::{GlobalCacheTable, LayerShard};
use crate::proto::{CacheAllocation, CacheRequest, UpdateUpload};
use crate::server::{profile_hit_ratios, seed_global_table};
use crate::status::ClientStatus;

/// The CoCa edge server behind sharded locks — `&self` handlers, safe to
/// call from any number of daemon worker threads. See the module docs
/// for the locking discipline and the determinism contract.
#[derive(Debug)]
pub struct ShardedServer {
    cfg: CocaConfig,
    /// Υ per layer, in ms (ACA inputs, immutable after construction).
    saved_ms: Vec<f64>,
    /// m_j — bytes per entry per layer (immutable after construction).
    entry_bytes: Vec<usize>,
    /// Shared-dataset standalone hit-ratio profile (initial R).
    base_hit_profile: Vec<f64>,
    classes: usize,
    /// One lock per layer; a request read-locks only the layers it
    /// extracts, the flusher write-locks one layer at a time.
    shards: Vec<RwLock<LayerShard>>,
    /// Φ — guarded separately so allocations never touch a layer lock.
    freq: Mutex<Vec<u64>>,
    /// FIFO pending-upload queue ([`MergeMode::QueueAndFlush`] ingest).
    pending: Mutex<Vec<UpdateUpload>>,
    /// Round-aligned fleet watermark (see
    /// [`CocaServer::set_flush_watermark`](crate::CocaServer::set_flush_watermark)).
    flush_watermark: AtomicUsize,
    /// Single-flusher gate: every merge (flush drain or per-upload)
    /// serializes here, so prefix-Φ snapshots are consistent and batch
    /// order is exactly FIFO arrival order.
    flush_gate: Mutex<()>,
    /// Server-side mirror of the last τ/φ each client reported.
    clients: Mutex<BTreeMap<u64, ClientStatus>>,
}

impl ShardedServer {
    /// Builds the sharded server from the same `(rt, cfg, seeds)` triple
    /// as [`CocaServer::new`](crate::CocaServer::new) — identical
    /// seeding, precision conversion, and hit-ratio profiling, so both
    /// start from the same table digest. Requires the full method (DCA +
    /// GCU on): the ablation arms stay on the single-lock server.
    pub fn new(rt: &ModelRuntime, cfg: CocaConfig, seeds: &SeedTree) -> Self {
        cfg.validate().expect("invalid CoCa configuration");
        assert!(
            cfg.enable_dca && cfg.enable_gcu,
            "ShardedServer serves the full method; run ablation arms on CocaServer"
        );
        let l = rt.num_cache_points();
        let mut global = seed_global_table(rt, seeds);
        global.convert_precision(cfg.precision);
        let saved_ms: Vec<f64> = (0..l)
            .map(|j| rt.saved_if_hit_at(j).as_millis_f64())
            .collect();
        let entry_bytes: Vec<usize> = (0..l).map(|j| rt.entry_bytes(j)).collect();
        let base_hit_profile = profile_hit_ratios(rt, &cfg, &global, seeds);
        let classes = global.num_classes();
        let (shards, frequency) = global.into_shards();
        Self {
            cfg,
            saved_ms,
            entry_bytes,
            base_hit_profile,
            classes,
            shards: shards.into_iter().map(RwLock::new).collect(),
            freq: Mutex::new(frequency),
            pending: Mutex::new(Vec::new()),
            flush_watermark: AtomicUsize::new(0),
            flush_gate: Mutex::new(()),
            clients: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configuration the server runs under.
    pub fn config(&self) -> &CocaConfig {
        &self.cfg
    }

    /// The shared-dataset standalone hit-ratio profile — handed to newly
    /// booted clients as their initial R.
    pub fn base_hit_profile(&self) -> &[f64] {
        &self.base_hit_profile
    }

    /// Sets the round-aligned flush watermark (live-fleet size). Like
    /// the single-lock server, a queue already at the new watermark
    /// drains immediately.
    pub fn set_flush_watermark(&self, live_members: usize) {
        self.flush_watermark.store(live_members, Ordering::Relaxed);
        self.drain_if_at_watermark();
    }

    /// Number of uploads queued and not yet merged.
    pub fn pending_uploads(&self) -> usize {
        self.pending.lock().expect("pending queue poisoned").len()
    }

    /// Handles a cache request — the sharded mirror of
    /// [`CocaServer::handle_request`](crate::CocaServer::handle_request):
    /// flush at the boundary (unless round-aligned), ACA over the
    /// effective Φ, then a per-layer read-locked extraction.
    pub fn handle_request(&self, req: &CacheRequest) -> CacheAllocation {
        self.clients
            .lock()
            .expect("client registry poisoned")
            .entry(req.client_id)
            .or_insert_with(|| ClientStatus::new(self.classes))
            .record_timestamps(&req.timestamps);
        let round_aligned = self.cfg.merge_mode == MergeMode::QueueAndFlush
            && self.cfg.flush_policy == FlushPolicy::RoundAligned;
        if !round_aligned {
            self.flush_pending();
        }
        // Effective Φ: merged frequencies plus every queued φ — Eq. 5 is
        // a commutative u64 sum, so this equals the flushed Φ exactly.
        let global_freq = {
            let queued: Option<Vec<u64>> = if round_aligned {
                let pending = self.pending.lock().expect("pending queue poisoned");
                (!pending.is_empty()).then(|| {
                    let mut extra = vec![0u64; self.classes];
                    for up in pending.iter() {
                        for (e, &p) in extra.iter_mut().zip(&up.frequency) {
                            *e += p;
                        }
                    }
                    extra
                })
            } else {
                None
            };
            let mut freq = self.freq.lock().expect("Φ poisoned").clone();
            if let Some(extra) = queued {
                for (f, e) in freq.iter_mut().zip(extra) {
                    *f += e;
                }
            }
            freq
        };
        let decision = allocate(
            &self.cfg,
            &AcaInputs {
                global_freq: &global_freq,
                timestamps: &req.timestamps,
                hit_ratio: &req.hit_ratio,
                saved_ms: &self.saved_ms,
                entry_bytes: &self.entry_bytes,
                budget_bytes: req.budget_bytes as usize,
            },
        );
        let mut layers = decision.layers.clone();
        layers.sort_unstable();
        let cache_layers: Vec<_> = layers
            .iter()
            .filter(|&&l| l < self.shards.len())
            .filter_map(|&l| {
                self.shards[l]
                    .read()
                    .expect("layer shard poisoned")
                    .extract_layer(l, &decision.hot_classes)
            })
            .collect();
        CacheAllocation {
            round: req.round,
            cache: crate::semantic::LocalCache::from_layers(cache_layers),
            precision: self.cfg.precision,
        }
    }

    /// The daemon's upload entry point — the sharded mirror of
    /// [`CocaServer::handle_upload`](crate::CocaServer::handle_upload):
    /// per-upload merges now (gate-serialized), queue-and-flush appends
    /// to the pending FIFO and drains at the round-aligned watermark.
    pub fn handle_upload(&self, up: UpdateUpload) {
        self.note_upload(&up);
        match self.cfg.merge_mode {
            MergeMode::PerUpload => self.merge_now(&up),
            MergeMode::QueueAndFlush => {
                self.pending
                    .lock()
                    .expect("pending queue poisoned")
                    .push(up);
                self.drain_if_at_watermark();
            }
        }
    }

    /// Drains the pending queue through the per-layer batched pass, in
    /// FIFO arrival order, under the single-flusher gate. No-op when
    /// nothing is pending.
    pub fn flush_pending(&self) {
        let _gate = self.flush_gate.lock().expect("flush gate poisoned");
        let batch = std::mem::take(&mut *self.pending.lock().expect("pending queue poisoned"));
        if batch.is_empty() {
            return;
        }
        // Prefix-Φ snapshots: client c's Eq. 4 weights read the Φ a
        // sequential merge in this order would have seen — exactly
        // `GlobalCacheTable::merge_batch`'s schedule. Φ cannot advance
        // between this snapshot and the final Eq. 5 because every
        // advance happens under the flush gate we hold.
        let n = self.classes;
        let mut phi_prefix = Vec::with_capacity(batch.len() * n);
        phi_prefix.extend_from_slice(&self.freq.lock().expect("Φ poisoned"));
        for c in 1..batch.len() {
            for i in 0..n {
                let v = phi_prefix[(c - 1) * n + i] + batch[c - 1].frequency[i];
                phi_prefix.push(v);
            }
        }
        // Layer-outer, clients-inner — one write-lock per layer for the
        // whole batch, each layer's store streaming through cache once.
        for (layer, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.write().expect("layer shard poisoned");
            for (c, up) in batch.iter().enumerate() {
                if let Some(g) = up.table.layer_group(layer as u32) {
                    shard.merge_group(
                        g,
                        &phi_prefix[c * n..(c + 1) * n],
                        &up.frequency,
                        self.cfg.gamma_global,
                    );
                }
            }
        }
        let mut freq = self.freq.lock().expect("Φ poisoned");
        for up in &batch {
            for (f, &p) in freq.iter_mut().zip(&up.frequency) {
                *f += p;
            }
        }
    }

    /// Immediate per-upload merge (gate-serialized): every layer group
    /// reads the same pre-merge Φ, then Eq. 5 — the
    /// [`GlobalCacheTable::merge_update`] schedule.
    fn merge_now(&self, up: &UpdateUpload) {
        let _gate = self.flush_gate.lock().expect("flush gate poisoned");
        let cap_phi = self.freq.lock().expect("Φ poisoned").clone();
        for g in up.table.layer_groups() {
            let layer = g.layer as usize;
            if layer >= self.shards.len() {
                continue;
            }
            self.shards[layer]
                .write()
                .expect("layer shard poisoned")
                .merge_group(g, &cap_phi, &up.frequency, self.cfg.gamma_global);
        }
        let mut freq = self.freq.lock().expect("Φ poisoned");
        for (f, &p) in freq.iter_mut().zip(&up.frequency) {
            *f += p;
        }
    }

    fn note_upload(&self, up: &UpdateUpload) {
        self.clients
            .lock()
            .expect("client registry poisoned")
            .entry(up.client_id)
            .or_insert_with(|| ClientStatus::new(self.classes))
            .record_frequency(&up.frequency);
    }

    fn drain_if_at_watermark(&self) {
        let watermark = self.flush_watermark.load(Ordering::Relaxed);
        if self.cfg.merge_mode == MergeMode::QueueAndFlush
            && self.cfg.flush_policy == FlushPolicy::RoundAligned
            && watermark > 0
            && self.pending.lock().expect("pending queue poisoned").len() >= watermark
        {
            self.flush_pending();
        }
    }

    /// Reassembles the full [`GlobalCacheTable`] from the shards — a
    /// consistent snapshot (taken under the flush gate, so no merge is
    /// mid-flight across layers). Clones every store; diagnostics and
    /// digests, not a hot path.
    pub fn table_snapshot(&self) -> GlobalCacheTable {
        let _gate = self.flush_gate.lock().expect("flush gate poisoned");
        let shards: Vec<LayerShard> = self
            .shards
            .iter()
            .map(|s| s.read().expect("layer shard poisoned").clone())
            .collect();
        let freq = self.freq.lock().expect("Φ poisoned").clone();
        GlobalCacheTable::from_shards(shards, freq)
    }

    /// The table digest ([`GlobalCacheTable::digest`]) of a consistent
    /// snapshot — what the daemon's `Digest` protocol message returns.
    /// Note: pending (queued, unmerged) uploads are *not* part of the
    /// table; compare digests after a flush.
    pub fn digest(&self) -> u64 {
        self.table_snapshot().digest()
    }

    /// Number of clients the registry has seen.
    pub fn known_clients(&self) -> usize {
        self.clients.lock().expect("client registry poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CocaServer;
    use coca_data::DatasetSpec;
    use coca_model::{ModelId, ModelRuntime};

    fn fixtures(cfg: CocaConfig) -> (ModelRuntime, CocaServer, ShardedServer) {
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let single = CocaServer::new(&rt, cfg, &seeds);
        let sharded = ShardedServer::new(&rt, cfg, &seeds);
        (rt, single, sharded)
    }

    fn upload_for(rt: &ModelRuntime, client_id: u64, class: usize, layer: usize) -> UpdateUpload {
        let mut table = crate::collect::UpdateTable::new();
        let dim = rt.feature_dim(layer);
        let mut v = vec![0.0f32; dim];
        v[(client_id as usize + 1) % dim] = 1.0;
        table.absorb(class, layer, &v, 0.0);
        let mut phi = vec![0u64; rt.num_classes()];
        phi[class] = 50 + client_id;
        UpdateUpload {
            client_id,
            round: 0,
            table,
            frequency: phi,
            precision: coca_math::Precision::F32,
        }
    }

    fn request_for(rt: &ModelRuntime, profile: &[f64], id: u64) -> CacheRequest {
        CacheRequest {
            client_id: id,
            round: 0,
            timestamps: vec![id as u32; rt.num_classes()],
            hit_ratio: profile.to_vec(),
            budget_bytes: 48 * 1024,
        }
    }

    #[test]
    fn genesis_digests_match_the_single_lock_server() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        let (_, single, sharded) = fixtures(cfg);
        assert_eq!(single.global().digest(), sharded.digest());
        assert_eq!(single.base_hit_profile(), sharded.base_hit_profile());
    }

    #[test]
    fn sequential_op_stream_lands_the_same_digest() {
        for cfg in [
            CocaConfig::for_model(ModelId::ResNet101),
            CocaConfig::for_model(ModelId::ResNet101).with_merge_mode(MergeMode::QueueAndFlush),
        ] {
            let (rt, mut single, sharded) = fixtures(cfg);
            let profile = single.base_hit_profile().to_vec();
            for id in 0..3u64 {
                let req = request_for(&rt, &profile, id);
                let (a, _) = single.handle_request(&req);
                let b = sharded.handle_request(&req);
                assert_eq!(a.cache.total_bytes(), b.cache.total_bytes());
                let up = upload_for(&rt, id, 3 + id as usize, 10 + id as usize);
                single.handle_upload(up.clone());
                sharded.handle_upload(up);
            }
            single.flush_pending();
            sharded.flush_pending();
            assert_eq!(
                single.global().digest(),
                sharded.digest(),
                "mode {:?}",
                cfg.merge_mode
            );
            assert_eq!(single.client_registry().len(), sharded.known_clients());
        }
    }

    #[test]
    fn round_aligned_watermark_drains_the_sharded_queue() {
        let cfg = CocaConfig::for_model(ModelId::ResNet101)
            .with_merge_mode(MergeMode::QueueAndFlush)
            .with_flush_policy(FlushPolicy::RoundAligned);
        let (rt, mut single, sharded) = fixtures(cfg);
        single.set_flush_watermark(3);
        sharded.set_flush_watermark(3);
        for id in 0..2u64 {
            let up = upload_for(&rt, id, 3 + id as usize, 10);
            single.handle_upload(up.clone());
            sharded.handle_upload(up);
        }
        assert_eq!(sharded.pending_uploads(), 2);
        // A request is not a flush boundary under this policy, but its
        // allocation reads the exact effective Φ.
        let profile = sharded.base_hit_profile().to_vec();
        let req = request_for(&rt, &profile, 9);
        let (a, _) = single.handle_request(&req);
        let b = sharded.handle_request(&req);
        assert_eq!(a.cache.total_bytes(), b.cache.total_bytes());
        assert_eq!(sharded.pending_uploads(), 2);
        // The watermark upload drains the fleet-sized batch.
        let up = upload_for(&rt, 2, 5, 12);
        single.handle_upload(up.clone());
        sharded.handle_upload(up);
        assert_eq!(sharded.pending_uploads(), 0);
        assert_eq!(single.global().digest(), sharded.digest());
    }

    #[test]
    fn concurrent_uploads_merge_exactly_once() {
        // Interleaving is scheduling-dependent; totals are not. 8 threads
        // × 4 uploads each, then one flush: Φ must hold every φ exactly
        // once (Eq. 5 is commutative, so the sum is order-independent).
        let cfg =
            CocaConfig::for_model(ModelId::ResNet101).with_merge_mode(MergeMode::QueueAndFlush);
        let dataset = DatasetSpec::ucf101().subset(20);
        let seeds = SeedTree::new(60);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let sharded = std::sync::Arc::new(ShardedServer::new(&rt, cfg, &seeds));
        let before: u64 = {
            let t = sharded.table_snapshot();
            t.frequency().iter().sum()
        };
        let mut handles = Vec::new();
        let mut expected = 0u64;
        for t in 0..8u64 {
            expected += 4 * (50 + t);
            let s = std::sync::Arc::clone(&sharded);
            let up = upload_for(&rt, t, (t as usize) % rt.num_classes(), 10);
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    s.handle_upload(up.clone());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        sharded.flush_pending();
        let after: u64 = {
            let t = sharded.table_snapshot();
            t.frequency().iter().sum()
        };
        assert_eq!(after - before, expected, "φ lost or double-merged");
    }
}
