//! Inference with sequential cache lookups (paper §II.3).
//!
//! At each activated cache layer `j` the model's pooled semantic vector is
//! compared against every cached class center: `C_{i,j} = cos(v_j, e_{i,j})`.
//! Scores accumulate across activated layers with decay α (Eq. 1):
//!
//! ```text
//! A_{i,j} = C_{i,j} + α · A_{i,j-1}
//! ```
//!
//! and the layer's discriminative score over the two leading classes a, b
//! (Eq. 2):
//!
//! ```text
//! D_j = (A_{a,j} − A_{b,j}) / A_{b,j}
//! ```
//!
//! triggers an early exit when `D_j > Θ`. A frame that survives every
//! activated layer pays full model compute plus all lookup costs.

use coca_data::Frame;
use coca_math::ScoreScratch;
use coca_sim::SimDuration;

use coca_model::{ClientFeatureView, ClientProfile, ModelRuntime, Prediction};

use crate::config::CocaConfig;
use crate::semantic::LocalCache;

/// Per-client reusable lookup state: the Eq. 1 accumulator scratch that
/// the seed implementation allocated fresh on every frame (`acc`/
/// `acc_set`, two O(classes) vectors per frame). One lives next to each
/// [`ClientFeatureView`]; `infer_with_cache` epochs it per frame.
#[derive(Debug, Default)]
pub struct LookupScratch {
    score: ScoreScratch,
}

impl LookupScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Floor on the runner-up score when evaluating Eq. 2 — a vanishing or
/// negative `A_b` means the layer cannot discriminate, not that it is
/// infinitely confident.
const MIN_RUNNER_UP: f32 = 1e-3;

/// Outcome of one cached inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// The class reported to the application (hit class or full-model
    /// prediction).
    pub predicted: usize,
    /// Whether `predicted` matches the frame's ground truth.
    pub correct: bool,
    /// End-to-end virtual latency of this frame.
    pub latency: SimDuration,
    /// Model cache point where the hit occurred (`None` = miss).
    pub hit_point: Option<usize>,
    /// Index of the hit layer *within the activated sequence*.
    pub hit_seq_idx: Option<usize>,
    /// Discriminative score at the hit layer (0 when missed).
    pub hit_score: f32,
    /// Full-model prediction (present only on a miss).
    pub full_prediction: Option<Prediction>,
    /// Semantic vectors observed at activated layers up to and including
    /// the exit layer (reused by the collection rules — the paper collects
    /// vectors "limited to the point of the cache hit").
    pub observed: Vec<(usize, Vec<f32>)>,
}

impl InferenceResult {
    /// True iff the cache served this frame.
    pub fn is_hit(&self) -> bool {
        self.hit_point.is_some()
    }
}

/// Runs one frame through the model with the given local cache.
///
/// Pure with respect to the cache — recording, collection and status
/// updates are the caller's job (see [`crate::client`]).
pub fn infer_with_cache(
    rt: &ModelRuntime,
    client: &ClientProfile,
    frame: &Frame,
    cache: &LocalCache,
    cfg: &CocaConfig,
    view: &mut ClientFeatureView,
    scratch: &mut LookupScratch,
) -> InferenceResult {
    let mut lookup_time = SimDuration::ZERO;
    scratch.score.begin(rt.num_classes());
    let mut observed: Vec<(usize, Vec<f32>)> = Vec::with_capacity(cache.num_layers());

    for (seq_idx, layer) in cache.layers().iter().enumerate() {
        let point = layer.point;
        let v = rt.semantic_vector(frame, client, point, view);
        lookup_time += rt.lookup_cost(point, layer.len());

        // Eq. 1 in one fused pass: per entry, a norm-free unit dot (the
        // unit contract was asserted at insertion), decayed accumulation
        // into the per-client scratch, and best/second tracking.
        let top2 = layer
            .vectors
            .score_top2(&v, &layer.classes, cfg.alpha, &mut scratch.score);
        observed.push((point, v));

        // Eq. 2: discriminative score over the two leading classes.
        if let (Some((a_class, a_val)), Some((_, b_val))) = (top2.best, top2.second) {
            if b_val > MIN_RUNNER_UP {
                let d = (a_val - b_val) / b_val;
                if d > cfg.theta {
                    let latency = rt.compute_to_point(point) + lookup_time;
                    return InferenceResult {
                        predicted: a_class,
                        correct: a_class == frame.class,
                        latency,
                        hit_point: Some(point),
                        hit_seq_idx: Some(seq_idx),
                        hit_score: d,
                        full_prediction: None,
                        observed,
                    };
                }
            }
        }
    }

    // Cache miss: run to completion.
    let prediction = rt.classify(frame, client, view);
    let latency = rt.full_compute() + lookup_time;
    InferenceResult {
        predicted: prediction.class,
        correct: prediction.correct,
        latency,
        hit_point: None,
        hit_seq_idx: None,
        hit_score: 0.0,
        full_prediction: Some(prediction),
        observed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::CacheLayer;
    use coca_data::distribution::uniform_weights;
    use coca_data::{DatasetSpec, StreamConfig, StreamGenerator};
    use coca_model::ModelId;
    use coca_sim::SeedTree;

    fn setup(classes: usize) -> (ModelRuntime, ClientProfile, CocaConfig) {
        let dataset = DatasetSpec::ucf101().subset(classes);
        let seeds = SeedTree::new(40);
        let rt = ModelRuntime::new(ModelId::ResNet101, &dataset, &seeds);
        let client = ClientProfile::new(0, 0.0, 0.7, &seeds);
        let cfg = CocaConfig::for_model(ModelId::ResNet101);
        (rt, client, cfg)
    }

    /// A cache with entries = exact global centers at the given points.
    fn center_cache(rt: &ModelRuntime, points: &[usize], classes: usize) -> LocalCache {
        let layers = points
            .iter()
            .map(|&p| {
                let mut l = CacheLayer::new(p);
                for c in 0..classes {
                    l.insert(c, rt.universe().global_center(p, c).to_vec());
                }
                l
            })
            .collect();
        LocalCache::from_layers(layers)
    }

    fn frames(classes: usize, n: usize, seed: u64) -> Vec<Frame> {
        StreamGenerator::new(
            StreamConfig::new(uniform_weights(classes), 20.0),
            &SeedTree::new(seed),
        )
        .take(n)
    }

    #[test]
    fn empty_cache_behaves_like_edge_only() {
        let (rt, client, cfg) = setup(20);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let f = frames(20, 1, 41)[0];
        let r = infer_with_cache(
            &rt,
            &client,
            &f,
            &LocalCache::empty(),
            &cfg,
            &mut view,
            &mut scratch,
        );
        assert!(!r.is_hit());
        assert_eq!(r.latency, rt.full_compute());
        assert!(r.full_prediction.is_some());
        assert!(r.observed.is_empty());
    }

    #[test]
    fn deep_center_cache_hits_most_frames_and_cuts_latency() {
        let (rt, client, cfg) = setup(20);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        // Activate a handful of spread-out layers.
        let cache = center_cache(&rt, &[5, 12, 19, 26, 33], 20);
        let fs = frames(20, 500, 42);
        let mut hits = 0usize;
        let mut total_ms = 0.0;
        for f in &fs {
            let r = infer_with_cache(&rt, &client, f, &cache, &cfg, &mut view, &mut scratch);
            if r.is_hit() {
                hits += 1;
                assert!(r.hit_score > cfg.theta);
                // Hits at shallow/middle layers must be cheaper than full
                // compute; the deepest layer may not be (that is exactly
                // the paper's lookup-overhead trade-off).
                if r.hit_point.unwrap() < 30 {
                    assert!(r.latency < rt.full_compute());
                }
            }
            total_ms += r.latency.as_millis_f64();
        }
        let hit_ratio = hits as f64 / fs.len() as f64;
        assert!(hit_ratio > 0.5, "hit ratio {hit_ratio}");
        let mean = total_ms / fs.len() as f64;
        assert!(
            mean < rt.full_compute().as_millis_f64(),
            "mean {mean} vs full {}",
            rt.full_compute().as_millis_f64()
        );
    }

    #[test]
    fn higher_theta_means_fewer_hits() {
        let (rt, client, cfg) = setup(20);
        let cache = center_cache(&rt, &[10, 20, 30], 20);
        let fs = frames(20, 400, 43);
        let count_hits = |theta: f32| -> usize {
            let mut view = ClientFeatureView::new();
            let mut scratch = LookupScratch::new();
            let cfg = cfg.with_theta(theta);
            fs.iter()
                .filter(|f| {
                    infer_with_cache(&rt, &client, f, &cache, &cfg, &mut view, &mut scratch)
                        .is_hit()
                })
                .count()
        };
        let low = count_hits(0.004);
        let high = count_hits(0.08);
        assert!(low > high, "low-Θ hits {low} vs high-Θ hits {high}");
    }

    #[test]
    fn observed_vectors_stop_at_hit_layer() {
        let (rt, client, cfg) = setup(20);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let cache = center_cache(&rt, &[5, 15, 25], 20);
        for f in frames(20, 100, 44) {
            let r = infer_with_cache(&rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
            match r.hit_seq_idx {
                Some(i) => {
                    assert_eq!(r.observed.len(), i + 1);
                    assert_eq!(r.observed.last().unwrap().0, r.hit_point.unwrap());
                }
                None => assert_eq!(r.observed.len(), 3),
            }
        }
    }

    #[test]
    fn lookup_costs_are_charged_even_on_miss() {
        let (rt, client, mut cfg) = setup(20);
        cfg.theta = 10.0; // impossible threshold: everything misses
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let cache = center_cache(&rt, &[0, 17, 33], 20);
        let f = frames(20, 1, 45)[0];
        let r = infer_with_cache(&rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
        assert!(!r.is_hit());
        let expected = rt.full_compute()
            + rt.lookup_cost(0, 20)
            + rt.lookup_cost(17, 20)
            + rt.lookup_cost(33, 20);
        assert_eq!(r.latency, expected);
    }

    #[test]
    fn single_class_cache_never_hits() {
        let (rt, client, cfg) = setup(20);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let mut layer = CacheLayer::new(20);
        layer.insert(0, rt.universe().global_center(20, 0).to_vec());
        let cache = LocalCache::from_layers(vec![layer]);
        for f in frames(20, 50, 46) {
            let r = infer_with_cache(&rt, &client, &f, &cache, &cfg, &mut view, &mut scratch);
            assert!(!r.is_hit(), "one cached class cannot discriminate");
        }
    }

    #[test]
    fn accumulation_rewards_consistent_classes() {
        // A frame whose class is cached at two consecutive layers should
        // accumulate a larger score at the second layer than a fresh
        // single-layer lookup would give.
        let (rt, client, cfg) = setup(10);
        let mut view = ClientFeatureView::new();
        let mut scratch = LookupScratch::new();
        let one = center_cache(&rt, &[30], 10);
        let two = center_cache(&rt, &[25, 30], 10);
        let fs = frames(10, 300, 47);
        let mut hits_one = 0;
        let mut hits_two = 0;
        for f in &fs {
            if infer_with_cache(&rt, &client, f, &one, &cfg, &mut view, &mut scratch).is_hit() {
                hits_one += 1;
            }
            if infer_with_cache(&rt, &client, f, &two, &cfg, &mut view, &mut scratch).is_hit() {
                hits_two += 1;
            }
        }
        assert!(
            hits_two >= hits_one,
            "two layers {hits_two} vs one {hits_one}"
        );
    }
}
