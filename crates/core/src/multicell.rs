//! Multi-edge CoCa: a topology of collaborating server cells.
//!
//! [`MultiCellEngine`] runs the same client protocol as
//! [`Engine`](crate::engine::Engine) against N [`CocaServer`] cells:
//! every client is homed to one cell (its requests, allocations and
//! uploads price that cell's link and queue on that cell's FIFO), each
//! cell allocates from its *own* merged view (partition-aware
//! allocation), and a periodic peer-sync tick exchanges
//! [`PeerDelta`]s between cells over the topology's peer link —
//! priced by the same wire encoding and cost model as client uploads.
//!
//! Two sync modes ([`SyncMode`]):
//!
//! - **Gossip** — a ring: on each tick, cell *i* exports its delta to
//!   cell *(i+1) mod N*. Mass originated anywhere reaches everywhere in
//!   at most N−1 ticks (the staleness story `exp_multiedge` sweeps).
//! - **Hub-and-spoke** — a star around cell 0: every spoke exports to
//!   the hub; once the hub has absorbed the last outstanding spoke
//!   delta it broadcasts its (now fleet-wide) delta back to every
//!   spoke. Two link hops end-to-end, at 2(N−1) deltas per tick.
//!
//! Both modes ride the cursor-based provenance in
//! [`CocaServer::export_delta`], so each origin cell's Φ mass reaches
//! each other cell exactly once — fleet-wide Φ is conserved, and the
//! whole exchange is a deterministic function of the event schedule:
//! per-cell digests are bit-identical at any rayon width.
//!
//! A **one-cell topology executes the exact legacy event sequence** —
//! same floats, same digests, same serialized records — which is the
//! refactor's compatibility contract (property-tested in
//! `tests/proptest_multiedge.rs`).

use std::collections::BTreeMap;

use coca_model::ModelRuntime;
use coca_net::WireSize;
use coca_sim::SimDuration;

use crate::client::{AbsorbStats, CocaClient};
use crate::driver::{
    drive_plan, DrivePlan, FrameOutcome, FrameStep, MethodDriver, NoMsg, SyncEmit,
};
use crate::engine::{EngineConfig, EngineReport, Scenario};
use crate::proto::{CacheAllocation, CacheRequest, PeerDelta, UpdateUpload};
use crate::server::CocaServer;
use crate::spec::SyncMode;

/// The CoCa protocol against a topology of cells: the cell-aware
/// [`MethodDriver`] hooks route every interaction to the client's home
/// cell, and the sync hooks implement both exchange modes.
struct MultiCellDriver<'a> {
    rt: &'a ModelRuntime,
    servers: &'a mut [CocaServer],
    clients: &'a mut [CocaClient],
    /// One pooled lookup buffer for the whole fleet (frames execute
    /// sequentially in virtual time).
    scratch: crate::lookup::LookupScratch,
    /// Per-cell live member counts, mirrored into each cell's
    /// round-aligned flush watermark at every join/leave/migration.
    live: Vec<usize>,
    /// Current home cell of each client — the driver's mirror of the
    /// event loop's routing state, needed because join/leave hooks are
    /// not cell-qualified.
    cell: Vec<usize>,
    sync_mode: SyncMode,
    /// In-flight sync payloads, keyed by the id carried in
    /// [`SyncEmit::payload`].
    payloads: BTreeMap<u64, PeerDelta>,
    next_payload: u64,
    /// Hub-and-spoke: spoke deltas exported but not yet absorbed by the
    /// hub. The broadcast back fires when this returns to zero.
    hub_outstanding: usize,
}

impl MultiCellDriver<'_> {
    /// Registers `delta` as an in-flight payload and returns the wire
    /// event the driver schedules over the peer link.
    fn emit(&mut self, to_cell: usize, delta: PeerDelta) -> SyncEmit {
        let id = self.next_payload;
        self.next_payload += 1;
        let bytes = delta.wire_bytes();
        let from_cell = delta.from_cell as usize;
        self.payloads.insert(id, delta);
        SyncEmit {
            from_cell,
            to_cell,
            bytes,
            payload: id,
        }
    }

    /// The hub's broadcast leg: one delta per spoke, ascending spoke id.
    fn hub_broadcast(&mut self) -> Vec<SyncEmit> {
        let n = self.servers.len();
        let mut out = Vec::new();
        for spoke in 1..n {
            let delta = self.servers[0].export_delta(spoke as u32);
            if !delta.is_empty() {
                out.push(self.emit(spoke, delta));
            }
        }
        out
    }
}

impl MethodDriver for MultiCellDriver<'_> {
    type Request = CacheRequest;
    type Alloc = CacheAllocation;
    type Query = NoMsg;
    type Reply = NoMsg;
    type Upload = UpdateUpload;

    fn name(&self) -> &str {
        "CoCa"
    }

    fn cache_request(&mut self, k: usize) -> Option<CacheRequest> {
        Some(self.clients[k].cache_request())
    }

    fn serve_request(&mut self, k: usize, req: CacheRequest) -> (CacheAllocation, SimDuration) {
        let cell = self.cell[k];
        self.serve_request_at(cell, k, req)
    }

    fn serve_request_at(
        &mut self,
        cell: usize,
        _k: usize,
        req: CacheRequest,
    ) -> (CacheAllocation, SimDuration) {
        self.servers[cell].handle_request(&req)
    }

    fn install(&mut self, k: usize, alloc: CacheAllocation) {
        self.clients[k].install_cache(alloc.cache);
    }

    fn process_frame(&mut self, k: usize, frame: &coca_data::Frame) -> FrameStep<NoMsg> {
        let res = self.clients[k].process_frame(self.rt, frame, &mut self.scratch);
        FrameStep::Done(FrameOutcome {
            compute: res.latency,
            correct: res.correct,
            hit_point: res.hit_point,
        })
    }

    fn end_round(&mut self, k: usize) -> Option<UpdateUpload> {
        Some(self.clients[k].end_round())
    }

    fn serve_upload(&mut self, k: usize, upload: UpdateUpload) -> SimDuration {
        let cell = self.cell[k];
        self.serve_upload_at(cell, k, upload)
    }

    fn serve_upload_at(&mut self, cell: usize, _k: usize, upload: UpdateUpload) -> SimDuration {
        self.servers[cell].handle_upload(upload)
    }

    fn on_join(&mut self, k: usize) {
        let c = self.cell[k];
        self.live[c] += 1;
        self.servers[c].set_flush_watermark(self.live[c]);
    }

    fn on_leave(&mut self, k: usize) {
        // Same semantics as the single-server driver, scoped to the
        // leaver's home cell: its collected knowledge stays in that
        // cell's table (and propagates onward at the next sync tick).
        let c = self.cell[k];
        self.servers[c].on_client_leave();
        self.clients[k].install_cache(crate::semantic::LocalCache::empty());
        self.live[c] = self.live[c].saturating_sub(1);
        self.servers[c].set_flush_watermark(self.live[c]);
    }

    fn on_migrate(&mut self, k: usize, from_cell: usize, to_cell: usize) {
        // Handover: drain the old cell's queued uploads first — the
        // migrant's in-flight contribution must merge where it was
        // uploaded — then re-home. The client keeps serving from its
        // current allocation until its next request, which lands at the
        // new cell and re-allocates from that cell's merged view.
        self.servers[from_cell].flush_pending();
        self.live[from_cell] = self.live[from_cell].saturating_sub(1);
        self.servers[from_cell].set_flush_watermark(self.live[from_cell]);
        self.live[to_cell] += 1;
        self.servers[to_cell].set_flush_watermark(self.live[to_cell]);
        self.cell[k] = to_cell;
    }

    fn on_run_end(&mut self) {
        for s in self.servers.iter_mut() {
            s.flush_pending();
        }
    }

    fn sync_export(&mut self, _seq: u64) -> Vec<SyncEmit> {
        let n = self.servers.len();
        let mut out = Vec::new();
        match self.sync_mode {
            SyncMode::Gossip => {
                // Ring: cell i → cell (i+1) mod n, ascending sender id.
                for i in 0..n {
                    let to = (i + 1) % n;
                    let delta = self.servers[i].export_delta(to as u32);
                    if !delta.is_empty() {
                        out.push(self.emit(to, delta));
                    }
                }
            }
            SyncMode::HubAndSpoke => {
                // Collect leg: every spoke → hub (cell 0), own-origin
                // mass only — third-party mass a spoke holds came from
                // the hub's own broadcasts and would double-count
                // there. The hub's broadcast back is emitted from
                // `sync_absorb` once the last outstanding spoke delta
                // lands.
                for spoke in 1..n {
                    let delta = self.servers[spoke].export_own_delta(0);
                    if !delta.is_empty() {
                        self.hub_outstanding += 1;
                        out.push(self.emit(0, delta));
                    }
                }
                if self.hub_outstanding == 0 {
                    // Nothing inbound this tick (quiet fleet): the hub
                    // may still hold mass the spokes lack — broadcast.
                    out.extend(self.hub_broadcast());
                }
            }
        }
        out
    }

    fn sync_absorb(&mut self, emit: &SyncEmit) -> (SimDuration, Vec<SyncEmit>) {
        let delta = self
            .payloads
            .remove(&emit.payload)
            .expect("sync payload delivered twice");
        let service = self.servers[emit.to_cell].absorb_peer(&delta);
        let mut follow = Vec::new();
        if self.sync_mode == SyncMode::HubAndSpoke && emit.to_cell == 0 {
            self.hub_outstanding -= 1;
            if self.hub_outstanding == 0 {
                follow = self.hub_broadcast();
            }
        }
        (service, follow)
    }
}

/// The multi-cell CoCa engine: N [`CocaServer`] cells over one shared
/// [`Scenario`]. With one cell this is exactly
/// [`Engine`](crate::engine::Engine) — same event sequence, same
/// floats, same digests.
pub struct MultiCellEngine {
    scenario: Scenario,
    cfg: EngineConfig,
    servers: Vec<CocaServer>,
    clients: Vec<CocaClient>,
}

impl MultiCellEngine {
    /// Builds `cells` identical server cells over the scenario: every
    /// cell seeds from the same `(rt, cfg, seeds)`, so all start from
    /// the same genesis table (identical digests) and diverge only
    /// through the uploads their own clients contribute.
    ///
    /// # Panics
    /// Panics if `cells` is zero.
    pub fn new(scenario: Scenario, mut cfg: EngineConfig, cells: usize) -> Self {
        assert!(cells > 0, "a topology needs at least one cell");
        if cfg.coca.cache_budget_bytes == 0 {
            // Same auto budget as the single-server engine: 1/8 of the
            // full cache.
            cfg.coca.cache_budget_bytes = scenario
                .rt
                .arch()
                .full_cache_bytes(scenario.rt.num_classes())
                / 8;
        }
        let servers: Vec<CocaServer> = (0..cells)
            .map(|i| {
                let mut s = CocaServer::new(&scenario.rt, cfg.coca, scenario.seeds());
                s.set_costs(cfg.costs);
                s.set_cell_id(i as u32);
                s
            })
            .collect();
        let clients: Vec<CocaClient> = scenario
            .profiles
            .iter()
            .enumerate()
            .map(|(k, p)| {
                CocaClient::new(
                    k as u64,
                    cfg.coca,
                    &scenario.rt,
                    p.clone(),
                    servers[0].base_hit_profile().to_vec(),
                )
            })
            .collect();
        Self {
            scenario,
            cfg,
            servers,
            clients,
        }
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The engine configuration (budget auto-fill applied).
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The cells (post-run inspection: per-cell digests, provenance).
    pub fn servers(&self) -> &[CocaServer] {
        &self.servers
    }

    /// One cell by id.
    pub fn server(&self, cell: usize) -> &CocaServer {
        &self.servers[cell]
    }

    /// Runs the fleet under an explicit [`DrivePlan`] (which carries the
    /// topology: assignment, links, sync schedule, migrations) and
    /// returns the aggregated report.
    ///
    /// # Panics
    /// Panics if the plan's topology names a different cell count than
    /// this engine was built with.
    pub fn run_plan(&mut self, plan: &DrivePlan) -> EngineReport {
        assert_eq!(
            plan.topology.cells,
            self.servers.len(),
            "plan topology names {} cells, engine has {}",
            plan.topology.cells,
            self.servers.len()
        );
        // Per-cell base-fleet live counts seed the round-aligned flush
        // watermarks, exactly like the single-server engine does for its
        // one watermark.
        let mut live = vec![0usize; self.servers.len()];
        for (k, m) in plan.members.iter().enumerate() {
            if m.join_at_ms.is_none() && m.rounds > 0 {
                live[plan.topology.cell_of(k)] += 1;
            }
        }
        for (c, server) in self.servers.iter_mut().enumerate() {
            server.set_flush_watermark(live[c]);
        }
        let cell: Vec<usize> = (0..plan.members.len())
            .map(|k| plan.topology.cell_of(k))
            .collect();
        let mut driver = MultiCellDriver {
            rt: &self.scenario.rt,
            servers: &mut self.servers,
            clients: &mut self.clients,
            scratch: crate::lookup::LookupScratch::new(),
            live,
            cell,
            sync_mode: plan.topology.sync_mode,
            payloads: BTreeMap::new(),
            next_payload: 0,
            hub_outstanding: 0,
        };
        let mut report = drive_plan(&self.scenario, &mut driver, plan);
        let mut absorb = AbsorbStats::default();
        for c in &self.clients {
            absorb.merge(c.absorb_stats());
        }
        report.absorb = absorb;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CocaConfig;
    use crate::engine::{Engine, ScenarioConfig};
    use crate::spec::{ScenarioSpec, SyncMode, TopologySpec};
    use coca_data::DatasetSpec;
    use coca_model::ModelId;

    fn spec(seed: u64) -> ScenarioSpec {
        let mut cfg = ScenarioConfig::new(ModelId::ResNet101, DatasetSpec::ucf101().subset(20));
        cfg.num_clients = 4;
        cfg.seed = seed;
        ScenarioSpec::new(cfg, 3, 120)
    }

    fn engine_cfg() -> EngineConfig {
        let mut coca = CocaConfig::for_model(ModelId::ResNet101);
        coca.round_frames = 120;
        EngineConfig::new(coca)
    }

    fn report_key(r: &EngineReport) -> (f64, f64, f64, u64, coca_sim::SimTime) {
        (
            r.mean_latency_ms,
            r.accuracy_pct,
            r.hit_ratio,
            r.frame_digest,
            r.end_time,
        )
    }

    #[test]
    fn one_cell_topology_matches_legacy_engine() {
        let (scenario_a, plan_a) = spec(81).materialize();
        let legacy = Engine::new(scenario_a, engine_cfg()).run_plan(&plan_a);

        let (scenario_b, plan_b) = spec(81).topology(TopologySpec::uniform(1, 4)).materialize();
        let mut multi = MultiCellEngine::new(scenario_b, engine_cfg(), 1);
        let report = multi.run_plan(&plan_b);

        assert_eq!(report_key(&legacy), report_key(&report));
    }

    #[test]
    fn two_cells_sync_and_converge() {
        for mode in [SyncMode::Gossip, SyncMode::HubAndSpoke] {
            let s = spec(82).topology(TopologySpec::uniform(2, 4).with_sync(500.0, mode));
            let (scenario, plan) = s.materialize();
            let mut multi = MultiCellEngine::new(scenario, engine_cfg(), 2);
            let report = multi.run_plan(&plan);
            assert!(report.frames > 0);
            // Every cell saw the other's mass: provenance rows exist for
            // both origins on both cells.
            for cell in multi.servers() {
                assert_eq!(cell.merge_provenance().len(), 2, "mode {mode:?}");
            }
            // Φ conservation: summing each origin's mass over the fleet
            // counts it exactly (number of cells) times — each cell holds
            // the full per-origin history exactly once after the final
            // flush-and-sync... but syncs stop at run end, so assert the
            // weaker, exact invariant: no cell holds MORE of an origin's
            // mass than the origin cell itself recorded.
            for origin in 0..2u32 {
                let own: u64 = multi.server(origin as usize).merge_provenance()[&origin]
                    .iter()
                    .sum();
                for cell in multi.servers() {
                    if let Some(row) = cell.merge_provenance().get(&origin) {
                        assert!(row.iter().sum::<u64>() <= own, "echoed mass for {origin}");
                    }
                }
            }
        }
    }

    #[test]
    fn migration_rehomes_a_client() {
        let s = spec(83)
            .topology(TopologySpec::uniform(2, 4).with_sync(500.0, SyncMode::Gossip))
            .migrate(0, 1, 1);
        let (scenario, plan) = s.materialize();
        assert_eq!(plan.topology.migrations.len(), 1);
        let mut multi = MultiCellEngine::new(scenario, engine_cfg(), 2);
        let report = multi.run_plan(&plan);
        assert!(report.frames > 0);
        // Client 0 (homed to cell 0 by round-robin) moved to cell 1 after
        // its first round; its later uploads landed there, so cell 1 has
        // own-origin Φ mass beyond what its two round-robin residents and
        // the sync stream explain — at minimum the row exists.
        assert!(multi.server(1).merge_provenance().contains_key(&1));
    }
}
